"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``train``     train any registered model on a dataset profile or TSV file
``evaluate``  load a saved checkpoint and re-evaluate it
``models``    list the registry
``datasets``  print Table-I style statistics for the synthetic profiles

Examples::

    python -m repro.cli models
    python -m repro.cli train --model graphaug --dataset gowalla \
        --epochs 60 --checkpoint best.npz --history history.csv
    python -m repro.cli evaluate --model graphaug --dataset gowalla \
        --checkpoint best.npz
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .data import PROFILES, load_profile, load_tsv
from .eval import DEFAULT_CHUNK_SIZE, evaluate_model
from .models import available_models, build_model
from .train import ModelConfig, TrainConfig, fit_model
from .train.callbacks import (BestCheckpoint, history_to_csv, load_state)


def _load_dataset(args):
    if args.dataset in PROFILES:
        return load_profile(args.dataset, seed=args.seed)
    return load_tsv(args.dataset, test_fraction=0.2, seed=args.seed)


def _model_config(args) -> ModelConfig:
    return ModelConfig(embedding_dim=args.dim, num_layers=args.layers,
                       ssl_weight=args.ssl_weight,
                       temperature=args.temperature,
                       edge_threshold=args.edge_threshold)


def cmd_models(args) -> int:
    """List every registered model name."""
    for name in available_models():
        print(name)
    return 0


def cmd_datasets(args) -> int:
    """Print Table-I style statistics for the synthetic profiles."""
    print(f"{'name':>14s} {'users':>6s} {'items':>6s} "
          f"{'interactions':>12s} {'density':>9s}")
    for name in PROFILES:
        stats = load_profile(name, seed=args.seed).statistics()
        print(f"{name:>14s} {stats['users']:6d} {stats['items']:6d} "
              f"{stats['interactions']:12d} {stats['density']:9.2e}")
    return 0


def cmd_train(args) -> int:
    """Train a model and optionally persist checkpoint/history."""
    dataset = _load_dataset(args)
    print(f"dataset: {dataset}")
    model = build_model(args.model, dataset, _model_config(args),
                        seed=args.seed)
    print(f"model:   {args.model} ({model.num_parameters():,} parameters)")
    train_config = TrainConfig(
        epochs=args.epochs, batch_size=args.batch_size,
        eval_every=args.eval_every, learning_rate=args.lr,
        verbose=not args.quiet)
    result = fit_model(model, dataset, train_config, seed=args.seed)
    print(f"\nbest epoch {result.best_epoch} "
          f"(train {result.train_seconds:.1f}s, "
          f"eval {result.eval_seconds:.1f}s):")
    for key, value in sorted(result.best_metrics.items()):
        print(f"  {key:12s} {value:.4f}")
    if args.checkpoint:
        ckpt = BestCheckpoint(path=args.checkpoint)
        ckpt.update(model, result.best_metrics or {"recall@20": 0.0})
        print(f"checkpoint -> {args.checkpoint}")
    if args.history:
        history_to_csv(result, args.history)
        print(f"history    -> {args.history}")
    return 0


def cmd_evaluate(args) -> int:
    """Evaluate a (possibly checkpointed) model on a dataset."""
    dataset = _load_dataset(args)
    model = build_model(args.model, dataset, _model_config(args),
                        seed=args.seed)
    if args.checkpoint:
        model.load_state_dict(load_state(args.checkpoint))
        print(f"loaded checkpoint {args.checkpoint}")
    # chunked ranking: never materializes the dense all-pairs matrix
    metrics = evaluate_model(model, dataset, ks=(20, 40),
                             chunk_size=args.eval_chunk)
    for key, value in sorted(metrics.items()):
        print(f"  {key:12s} {value:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="GraphAug reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list registered models")
    p_data = sub.add_parser("datasets", help="print dataset statistics")
    p_data.add_argument("--seed", type=int, default=0)

    for name, help_text in (("train", "train a model"),
                            ("evaluate", "evaluate a checkpoint")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--model", required=True,
                       choices=available_models())
        p.add_argument("--dataset", required=True,
                       help="profile name (gowalla/retail_rocket/amazon) "
                            "or path to a TSV edge list")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--dim", type=int, default=32)
        p.add_argument("--layers", type=int, default=3)
        p.add_argument("--ssl-weight", type=float, default=1.0,
                       dest="ssl_weight")
        p.add_argument("--temperature", type=float, default=0.5)
        p.add_argument("--edge-threshold", type=float, default=0.2,
                       dest="edge_threshold")
        p.add_argument("--checkpoint", default=None)
        if name == "evaluate":
            p.add_argument("--eval-chunk", type=int,
                           default=DEFAULT_CHUNK_SIZE, dest="eval_chunk",
                           help="users ranked per evaluation block")
        if name == "train":
            p.add_argument("--epochs", type=int, default=60)
            p.add_argument("--batch-size", type=int, default=512,
                           dest="batch_size")
            p.add_argument("--eval-every", type=int, default=10,
                           dest="eval_every")
            p.add_argument("--lr", type=float, default=1e-3)
            p.add_argument("--history", default=None,
                           help="write per-epoch history CSV here")
            p.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"models": cmd_models, "datasets": cmd_datasets,
                "train": cmd_train, "evaluate": cmd_evaluate}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
