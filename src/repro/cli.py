"""Command-line interface: ``repro <command>`` / ``python -m repro``.

The CLI is a thin shell over the declarative experiment facade
(:mod:`repro.api`): every subcommand builds an
:class:`~repro.api.ExperimentSpec` (or loads one from a file) and hands
it to :class:`~repro.api.Experiment` — no training or evaluation logic
lives here.

Commands
--------
``run``        run a spec file (one spec or a list; optional sweep axes,
               ``--workers N`` process-parallel execution, ``--resume``
               for partially-run sweeps)
``train``      train any registered model on a dataset profile or TSV file
``evaluate``   load a saved checkpoint and re-evaluate it
``recommend``  serve top-k recommendations from a serving snapshot
               (training one first when the snapshot doesn't exist yet)
``models``     list the registry
``datasets``   list registered datasets with Table-I style statistics
``trace``      summarize a ``trace.json`` emitted by a traced run
               (per-span aggregates, processes, counter tracks)
``worker``     run a dispatch worker daemon against a sweep directory's
               queue (``repro.dispatch``): claim cells under crash-safe
               leases, run them, repeat — on any machine sharing the dir
``sweep-status`` inspect a dispatched sweep's queue: depth per state,
               live leases with owner and age, attempts, dead letters,
               DAG readiness

Examples::

    python -m repro models
    python -m repro run spec.json --run-dir runs/exp1
    python -m repro run spec.json --sweep-models lightgcn,sgl \
        --sweep-seeds 0,1 --run-dir runs/sweep --workers 4
    python -m repro run --resume runs/sweep
    python -m repro train --model graphaug --dataset gowalla \
        --epochs 60 --checkpoint best.npz --history history.csv
    python -m repro evaluate --model graphaug --dataset gowalla \
        --checkpoint best.npz
    python -m repro recommend --snapshot serve.npz --model lightgcn \
        --dataset gowalla --users 0,1,2 --k 20 --workers 4 \
        --backend ann --mmap
    python -m repro worker runs/sweep --drain-when-empty
    python -m repro sweep-status runs/sweep
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys
import warnings
from typing import Optional

from .api import (Experiment, ExperimentSpec, expand_grid, recommend_topk)
from .data import available_datasets, resolve_dataset
from .models import available_models


# --------------------------------------------------------------------- #
# spec construction from flags
# --------------------------------------------------------------------- #

def _spec_from_args(args, fit: bool = True) -> ExperimentSpec:
    """The spec the legacy flag set describes (flag defaults included,
    matching the historical CLI behaviour exactly)."""
    train_config = {}
    if fit:
        train_config = {"epochs": args.epochs,
                        "batch_size": args.batch_size,
                        "learning_rate": args.lr,
                        "verbose": not args.quiet}
        if getattr(args, "eval_every", None) is not None:
            train_config["eval_every"] = args.eval_every
    eval_spec = {}
    if getattr(args, "eval_chunk", None) is not None:
        eval_spec = {"chunk_size": args.eval_chunk}
    artifacts = {"checkpoint": getattr(args, "checkpoint", None),
                 "history": getattr(args, "history", None),
                 "snapshot": getattr(args, "snapshot", None)}
    return ExperimentSpec(
        model=args.model,
        dataset=args.dataset,
        seed=args.seed,
        model_config={"embedding_dim": args.dim,
                      "num_layers": args.layers,
                      "ssl_weight": args.ssl_weight,
                      "temperature": args.temperature,
                      "edge_threshold": args.edge_threshold},
        train_config=train_config,
        eval=eval_spec or {},
        artifacts=artifacts,
    )


def _print_metrics(metrics) -> None:
    for key, value in sorted(metrics.items()):
        print(f"  {key:12s} {value:.4f}")


# --------------------------------------------------------------------- #
# subcommand handlers (thin wrappers over repro.api)
# --------------------------------------------------------------------- #

def _cmd_models(args) -> int:
    """List every registered model name."""
    for name in available_models():
        print(name)
    return 0


def _cmd_datasets(args) -> int:
    """Print Table-I style statistics for the registered datasets."""
    print(f"{'name':>14s} {'users':>6s} {'items':>6s} "
          f"{'interactions':>12s} {'density':>9s}")
    for name in available_datasets():
        stats = resolve_dataset(name, seed=args.seed).statistics()
        print(f"{name:>14s} {stats['users']:6d} {stats['items']:6d} "
              f"{stats['interactions']:12d} {stats['density']:9.2e}")
    return 0


def _cmd_train(args) -> int:
    """Train via the facade; optionally persist artifacts / a run dir."""
    spec = _spec_from_args(args)
    experiment = Experiment(spec)
    print(f"dataset: {experiment.dataset()}")
    result = experiment.run(run_dir=args.run_dir)
    print(f"model:   {spec.model} "
          f"({experiment.model.num_parameters():,} parameters)")
    print(f"\nbest epoch {result.best_epoch} "
          f"(train {result.train_seconds:.1f}s, "
          f"eval {result.eval_seconds:.1f}s):")
    _print_metrics(result.metrics)
    for role, path in sorted(result.artifacts.items()):
        print(f"{role:10s} -> {path}")
    return 0


def _cmd_evaluate(args) -> int:
    """Evaluate a (possibly checkpointed) model via the facade."""
    spec = _spec_from_args(args, fit=False)
    if args.checkpoint:
        print(f"loaded checkpoint {args.checkpoint}")
    metrics = Experiment(spec).evaluate(checkpoint=args.checkpoint)
    _print_metrics(metrics)
    return 0


def _cmd_recommend(args) -> int:
    """Serve top-k lists from a snapshot (training one when missing)."""
    from .serve import resolve_snapshot_path

    train_spec = None
    if args.model and args.dataset:
        train_spec = _spec_from_args(args)
    if train_spec is None and \
            not os.path.exists(resolve_snapshot_path(args.snapshot)):
        print("snapshot does not exist; --model and --dataset are "
              "required to train one", file=sys.stderr)
        return 2
    users = None
    if args.users:
        users = [int(u) for u in args.users.split(",")]
    payload = recommend_topk(args.snapshot, users=users, k=args.k,
                             num_workers=args.workers,
                             exclude_seen=not args.include_seen,
                             train_spec=train_spec,
                             backend=args.backend, mmap=args.mmap)
    print(f"serving:  {payload['model']} ({payload['backend']} backend, "
          f"{payload['num_workers']} worker(s))")
    text = json.dumps({"model": payload["model"], "k": payload["k"],
                       "exclude_seen": payload["exclude_seen"],
                       "recommendations": payload["recommendations"]},
                      indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"top-{args.k} lists for {payload['num_users']} users "
              f"-> {args.output}")
    else:
        print(text)
    return 0


def _cmd_trace(args) -> int:
    """Summarize a Chrome-format ``trace.json`` (see repro.obs).

    Prints one aggregate row per span name (count, total/mean/max
    milliseconds), the distinct processes that contributed events, and
    the counter tracks present.  Exits 1 when the payload fails
    :func:`repro.obs.validate_chrome_trace`.
    """
    from .obs import validate_chrome_trace

    with open(args.trace) as handle:
        payload = json.load(handle)
    problems = validate_chrome_trace(payload)
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1

    events = payload["traceEvents"]
    spans = {}
    counters = set()
    pids = set()
    labels = {}
    for event in events:
        pids.add(event["pid"])
        ph = event["ph"]
        if ph == "X":
            entry = spans.setdefault(event["name"],
                                     {"count": 0, "total": 0.0, "max": 0.0})
            dur_ms = event["dur"] / 1e3
            entry["count"] += 1
            entry["total"] += dur_ms
            entry["max"] = max(entry["max"], dur_ms)
        elif ph == "C":
            counters.add(event["name"])
        elif ph == "M" and event["name"] == "process_name":
            labels[event["pid"]] = event.get("args", {}).get("name", "")

    print(f"{args.trace}: {len(events)} events from "
          f"{len(pids)} process(es)")
    for pid in sorted(pids):
        label = labels.get(pid, "")
        print(f"  pid {pid}" + (f"  {label}" if label else ""))
    if spans:
        print(f"\n{'span':<24s} {'count':>7s} {'total ms':>10s} "
              f"{'mean ms':>10s} {'max ms':>10s}")
        for name in sorted(spans, key=lambda n: -spans[n]["total"]):
            entry = spans[name]
            mean = entry["total"] / entry["count"]
            print(f"{name:<24s} {entry['count']:7d} "
                  f"{entry['total']:10.2f} {mean:10.3f} "
                  f"{entry['max']:10.2f}")
    if counters:
        print("\ncounter tracks: " + ", ".join(sorted(counters)))
    dropped = payload.get("otherData", {}).get("dropped_events")
    if dropped:
        print(f"\nwarning: {dropped} event(s) were dropped by the ring "
              "buffer (raise repro.obs.reset_tracing(capacity=...))",
              file=sys.stderr)
    return 0


def _print_sweep_results(results) -> int:
    """Per-cell summary lines + leaderboard pointer; exit 1 on failures."""
    failed = 0
    for result in results:
        where = f" -> {result.run_dir}" if result.run_dir else ""
        if result.failed:
            failed += 1
            print(f"{result.spec.run_name}: FAILED ({result.error}){where}")
            continue
        best = " ".join(f"{k}={v:.4f}"
                        for k, v in sorted(result.metrics.items()))
        print(f"{result.spec.run_name}: {best}{where}")
    if failed:
        print(f"{failed} of {len(results)} cells failed "
              "(see each cell's status.json; re-run them with "
              "`repro run --resume <sweep dir>`)", file=sys.stderr)
    return 1 if failed else 0


def _cmd_run(args) -> int:
    """Run a spec file (single spec or list; optional sweep axes), or
    resume a partially-run sweep directory (``--resume``)."""
    from .api import SweepRunner
    from .api.sweep import LEADERBOARD_FILE

    verbose = False if args.quiet else None
    if args.resume:
        if args.spec:
            print("--resume takes no spec file (the sweep manifest "
                  "already records every cell)", file=sys.stderr)
            return 2
        results = SweepRunner.resume(args.resume, workers=args.workers,
                                     verbose=verbose)
        code = _print_sweep_results(results)
        # resume already re-aggregated; just point at the artifact
        print(f"leaderboard -> {os.path.join(args.resume, LEADERBOARD_FILE)}")
        return code
    if not args.spec:
        print("a spec file is required (or --resume <sweep dir>)",
              file=sys.stderr)
        return 2

    with open(args.spec) as handle:
        payload = json.load(handle)
    specs = payload if isinstance(payload, list) else [payload]
    if not specs:
        print(f"{args.spec} holds an empty spec list; nothing to run",
              file=sys.stderr)
        return 2
    specs = [ExperimentSpec.from_dict(entry) for entry in specs]

    axes = {key: getattr(args, f"sweep_{key}") or None
            for key in ("models", "datasets", "seeds")}
    if any(axes.values()):
        expanded = []
        for spec in specs:
            expanded.extend(expand_grid(
                spec,
                models=axes["models"].split(",") if axes["models"] else None,
                datasets=(axes["datasets"].split(",")
                          if axes["datasets"] else None),
                seeds=([int(s) for s in axes["seeds"].split(",")]
                       if axes["seeds"] else None)))
        specs = expanded

    # --quiet forces silence; otherwise each spec's own verbose setting
    # stands (None = no override)
    if len(specs) == 1 and not args.run_dir and not args.workers:
        result = Experiment(specs[0]).run(verbose=verbose)
        print(f"{specs[0].run_name}: best epoch {result.best_epoch}")
        _print_metrics(result.metrics)
        return 0

    runner = SweepRunner(specs, base_dir=args.run_dir, verbose=verbose,
                         workers=args.workers)
    results = runner.run()
    code = _print_sweep_results(results)
    if runner.report is not None:
        print(f"leaderboard -> {runner.report.artifacts['leaderboard']}")
    return code


def _cmd_worker(args) -> int:
    """Run a dispatch worker daemon (see :mod:`repro.dispatch`).

    Claims cells from ``<sweep_dir>/queue/`` under a lease, runs them
    (writing ordinary run directories), and repeats until the drain
    sentinel appears — or, with ``--drain-when-empty``, until the queue
    settles.  Exit code is 0; task failures are queue records, not
    worker crashes.
    """
    from .dispatch import DispatchWorker

    worker = DispatchWorker(args.sweep_dir, worker_id=args.worker_id,
                            lease_ttl=args.lease_ttl,
                            drain_when_empty=args.drain_when_empty,
                            poll_interval=args.poll_interval,
                            max_tasks=args.max_tasks)
    ran = worker.run()
    print(f"worker {worker.worker_id}: {ran} task(s) executed")
    return 0


def _cmd_sweep_status(args) -> int:
    """Print one snapshot of a dispatched sweep's queue.

    Shows queue depth per state, every live lease (owner, host, age,
    seconds since last renewal), pending cells' DAG readiness and
    attempt counts, and dead-lettered cells with their final errors.
    ``--json`` emits the raw :meth:`QueueBroker.status` payload instead.
    Exit code: 0 when nothing is dead-lettered, 1 otherwise — usable
    as a cheap health probe from cron or CI.
    """
    from .dispatch import QueueBroker

    broker = QueueBroker(args.sweep_dir)
    status = broker.status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 1 if status["counts"]["dead"] else 0

    counts = status["counts"]
    drained = "  [draining]" if status["drain_requested"] else ""
    print(f"{args.sweep_dir}: {counts['pending']} pending, "
          f"{counts['leased']} leased, {counts['done']} done, "
          f"{counts['dead']} dead{drained}")
    if status["leases"]:
        print(f"\n{'cell':<28s} {'worker':<20s} {'age s':>7s} "
              f"{'renewed s':>10s} {'attempt':>8s}")
        for lease in status["leases"]:
            print(f"{lease['name']:<28.28s} "
                  f"{str(lease['worker']):<20.20s} "
                  f"{lease['age_seconds']:7.1f} "
                  f"{lease['renewed_seconds_ago']:10.1f} "
                  f"{lease['attempts'] + 1:8d}")
    blocked = [cell for cell in status["pending"] if not cell["ready"]]
    if blocked:
        print("\nwaiting:")
        for cell in blocked:
            why = (f"after {', '.join(cell['blocked_on'])}"
                   if cell["blocked_on"] else "retry backoff")
            print(f"  {cell['name']}: {why} "
                  f"(attempt {cell['attempts'] + 1})")
    if status["dead"]:
        print("\ndead letters:")
        for cell in status["dead"]:
            print(f"  {cell['name']} (after {cell['attempts']} "
                  f"attempt(s)): {cell['error']}")
    return 1 if counts["dead"] else 0


# --------------------------------------------------------------------- #
# deprecated function-level entry points (one release of grace)
# --------------------------------------------------------------------- #

def _deprecated(replacement: str):
    """Mark an old entry point; each call emits one DeprecationWarning."""
    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            warnings.warn(
                f"repro.cli.{func.__name__.lstrip('_')} is deprecated; "
                f"use {replacement} instead",
                DeprecationWarning, stacklevel=2)
            return func(*args, **kwargs)
        wrapper.__name__ = func.__name__.lstrip("_")
        return wrapper
    return decorate


cmd_models = _deprecated("main(['models'])")(_cmd_models)
cmd_datasets = _deprecated("main(['datasets'])")(_cmd_datasets)
cmd_train = _deprecated(
    "repro.api.Experiment(spec).run()")(_cmd_train)
cmd_evaluate = _deprecated(
    "repro.api.Experiment(spec).evaluate(checkpoint=...)")(_cmd_evaluate)
cmd_recommend = _deprecated(
    "repro.api.recommend_topk(...)")(_cmd_recommend)


# --------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------- #

def _add_model_args(p: argparse.ArgumentParser) -> None:
    """Model hyperparameters shared by train / evaluate / recommend."""
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--layers", type=int, default=3)
    p.add_argument("--ssl-weight", type=float, default=1.0,
                   dest="ssl_weight")
    p.add_argument("--temperature", type=float, default=0.5)
    p.add_argument("--edge-threshold", type=float, default=0.2,
                   dest="edge_threshold")


def _add_fit_args(p: argparse.ArgumentParser) -> None:
    """Optimization-budget flags for commands that may train."""
    p.add_argument("--epochs", type=int, default=60)
    p.add_argument("--batch-size", type=int, default=512,
                   dest="batch_size")
    p.add_argument("--lr", type=float, default=1e-3)
    p.add_argument("--quiet", action="store_true")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="GraphAug reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list registered models")
    p_data = sub.add_parser("datasets", help="print dataset statistics")
    p_data.add_argument("--seed", type=int, default=0)

    p_run = sub.add_parser(
        "run", help="run an experiment spec file (JSON; one spec or a "
                    "list of specs), or resume a sweep directory")
    p_run.add_argument("spec", nargs="?", default=None,
                       help="path to the spec JSON "
                            "(see repro.api.ExperimentSpec); omit with "
                            "--resume")
    p_run.add_argument("--run-dir", default=None, dest="run_dir",
                       help="write replayable run directories here (one "
                            "per spec), plus sweep.json / leaderboard.md")
    p_run.add_argument("--sweep-models", default=None, dest="sweep_models",
                       help="comma-separated model axis to grid over")
    p_run.add_argument("--sweep-datasets", default=None,
                       dest="sweep_datasets",
                       help="comma-separated dataset axis to grid over")
    p_run.add_argument("--sweep-seeds", default=None, dest="sweep_seeds",
                       help="comma-separated seed axis to grid over")
    p_run.add_argument("--workers", type=int, default=None,
                       help="run sweep cells on an N-worker process pool "
                            "(default: sequential in-process; output is "
                            "bit-identical either way)")
    p_run.add_argument("--resume", default=None, metavar="SWEEP_DIR",
                       help="finish a partially-run sweep: skip cells "
                            "whose run dirs validate, re-run "
                            "failed/missing ones")
    p_run.add_argument("--quiet", action="store_true")

    for name, help_text in (("train", "train a model"),
                            ("evaluate", "evaluate a checkpoint")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--model", required=True,
                       choices=available_models())
        p.add_argument("--dataset", required=True,
                       help="registered dataset (gowalla/retail_rocket/"
                            "amazon/tiny) or path to a TSV edge list")
        _add_model_args(p)
        p.add_argument("--checkpoint", default=None)
        if name == "evaluate":
            p.add_argument("--eval-chunk", type=int,
                           default=None, dest="eval_chunk",
                           help="users ranked per evaluation block "
                                "(default: auto-sized from the memory "
                                "budget)")
        if name == "train":
            _add_fit_args(p)
            p.add_argument("--eval-every", type=int, default=10,
                           dest="eval_every")
            p.add_argument("--history", default=None,
                           help="write per-epoch history CSV here")
            p.add_argument("--snapshot", default=None,
                           help="write an end-of-fit serving snapshot "
                                "(repro.serve) here")
            p.add_argument("--run-dir", default=None, dest="run_dir",
                           help="write a replayable run directory here")

    p_trace = sub.add_parser(
        "trace", help="summarize a trace.json emitted by a traced run")
    p_trace.add_argument("trace",
                         help="path to a Chrome-format trace.json "
                              "(TrainConfig.trace=True writes one per "
                              "run dir; sweeps write a merged one)")

    p_worker = sub.add_parser(
        "worker",
        help="run a dispatch worker against a sweep directory's queue")
    p_worker.add_argument("sweep_dir",
                          help="sweep directory holding the dispatch "
                               "queue (repro.dispatch.enqueue_sweep)")
    p_worker.add_argument("--worker-id", default=None, dest="worker_id",
                          help="lease identity (default: <host>:<pid>)")
    p_worker.add_argument("--lease-ttl", type=float, default=60.0,
                          dest="lease_ttl",
                          help="seconds a lease survives without a "
                               "heartbeat renewal (must exceed the "
                               "slowest training epoch)")
    p_worker.add_argument("--poll-interval", type=float, default=0.5,
                          dest="poll_interval",
                          help="seconds between queue scans when idle")
    p_worker.add_argument("--drain-when-empty", action="store_true",
                          dest="drain_when_empty",
                          help="exit once the queue settles instead of "
                               "polling forever")
    p_worker.add_argument("--max-tasks", type=int, default=None,
                          dest="max_tasks",
                          help="exit after running this many tasks")

    p_status = sub.add_parser(
        "sweep-status",
        help="inspect a dispatched sweep's queue (leases, attempts, "
             "dead letters, DAG readiness)")
    p_status.add_argument("sweep_dir",
                          help="sweep directory holding the dispatch queue")
    p_status.add_argument("--json", action="store_true",
                          help="emit the raw status payload as JSON")

    p_rec = sub.add_parser(
        "recommend",
        help="serve top-k recommendations from a serving snapshot")
    p_rec.add_argument("--snapshot", required=True,
                       help="serving snapshot path; trained and written "
                            "first when it does not exist yet")
    p_rec.add_argument("--model", default=None,
                       choices=available_models(),
                       help="model to train when the snapshot is missing")
    p_rec.add_argument("--dataset", default=None,
                       help="registered dataset or TSV path (only needed "
                            "when training)")
    p_rec.add_argument("--users", default=None,
                       help="comma-separated user ids (default: all users)")
    p_rec.add_argument("--k", type=int, default=20)
    p_rec.add_argument("--workers", type=int, default=1,
                       help="shard executor thread-pool width")
    p_rec.add_argument("--backend", default="exact",
                       choices=["exact", "ann"],
                       help="retrieval path: exact GEMM (reference) or "
                            "the IVF ANN index (embedding snapshots)")
    p_rec.add_argument("--mmap", action="store_true",
                       help="memory-map the snapshot's embedding tables "
                            "(uncompressed format-v3 artifacts) so "
                            "concurrent serving processes share one copy")
    p_rec.add_argument("--include-seen", action="store_true",
                       dest="include_seen",
                       help="do not mask items the user already interacted "
                            "with")
    p_rec.add_argument("--output", default=None,
                       help="write the top-k JSON here instead of stdout")
    _add_model_args(p_rec)
    _add_fit_args(p_rec)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"models": _cmd_models, "datasets": _cmd_datasets,
                "train": _cmd_train, "evaluate": _cmd_evaluate,
                "recommend": _cmd_recommend, "run": _cmd_run,
                "trace": _cmd_trace, "worker": _cmd_worker,
                "sweep-status": _cmd_sweep_status}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
