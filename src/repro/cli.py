"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``train``      train any registered model on a dataset profile or TSV file
``evaluate``   load a saved checkpoint and re-evaluate it
``recommend``  serve top-k recommendations from a serving snapshot
               (training one first when the snapshot doesn't exist yet)
``models``     list the registry
``datasets``   print Table-I style statistics for the synthetic profiles

Examples::

    python -m repro.cli models
    python -m repro.cli train --model graphaug --dataset gowalla \
        --epochs 60 --checkpoint best.npz --history history.csv
    python -m repro.cli evaluate --model graphaug --dataset gowalla \
        --checkpoint best.npz
    python -m repro.cli recommend --snapshot serve.npz --model lightgcn \
        --dataset gowalla --users 0,1,2 --k 20 --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from .data import PROFILES, load_profile, load_tsv
from .eval import evaluate_model
from .models import available_models, build_model
from .train import ModelConfig, TrainConfig, fit_model
from .train.callbacks import (BestCheckpoint, history_to_csv, load_state)


def _load_dataset(args):
    if args.dataset in PROFILES:
        return load_profile(args.dataset, seed=args.seed)
    return load_tsv(args.dataset, test_fraction=0.2, seed=args.seed)


def _model_config(args) -> ModelConfig:
    return ModelConfig(embedding_dim=args.dim, num_layers=args.layers,
                       ssl_weight=args.ssl_weight,
                       temperature=args.temperature,
                       edge_threshold=args.edge_threshold)


def cmd_models(args) -> int:
    """List every registered model name."""
    for name in available_models():
        print(name)
    return 0


def cmd_datasets(args) -> int:
    """Print Table-I style statistics for the synthetic profiles."""
    print(f"{'name':>14s} {'users':>6s} {'items':>6s} "
          f"{'interactions':>12s} {'density':>9s}")
    for name in PROFILES:
        stats = load_profile(name, seed=args.seed).statistics()
        print(f"{name:>14s} {stats['users']:6d} {stats['items']:6d} "
              f"{stats['interactions']:12d} {stats['density']:9.2e}")
    return 0


def cmd_train(args) -> int:
    """Train a model and optionally persist checkpoint/history."""
    dataset = _load_dataset(args)
    print(f"dataset: {dataset}")
    model = build_model(args.model, dataset, _model_config(args),
                        seed=args.seed)
    print(f"model:   {args.model} ({model.num_parameters():,} parameters)")
    if args.snapshot:
        from .serve import resolve_snapshot_path
        args.snapshot = resolve_snapshot_path(args.snapshot)
    train_config = TrainConfig(
        epochs=args.epochs, batch_size=args.batch_size,
        eval_every=args.eval_every, learning_rate=args.lr,
        snapshot_path=args.snapshot, verbose=not args.quiet)
    result = fit_model(model, dataset, train_config, seed=args.seed)
    print(f"\nbest epoch {result.best_epoch} "
          f"(train {result.train_seconds:.1f}s, "
          f"eval {result.eval_seconds:.1f}s):")
    for key, value in sorted(result.best_metrics.items()):
        print(f"  {key:12s} {value:.4f}")
    if args.checkpoint:
        ckpt = BestCheckpoint(path=args.checkpoint)
        ckpt.update(model, result.best_metrics or {"recall@20": 0.0})
        print(f"checkpoint -> {args.checkpoint}")
    if args.history:
        history_to_csv(result, args.history)
        print(f"history    -> {args.history}")
    if args.snapshot:
        print(f"snapshot   -> {args.snapshot}")
    return 0


def cmd_recommend(args) -> int:
    """Serve top-k recommendations from a snapshot (training if absent).

    When ``--snapshot`` names an existing artifact it is served as-is —
    no dataset load, no model training.  Otherwise a model is trained on
    the dataset, snapshotted to that path, and served from the artifact
    just written (so the emitted lists always come from the snapshot
    path, proving the round trip).
    """
    from .serve import RecommenderService, resolve_snapshot_path

    # save_snapshot always writes under .npz; resolve once so the
    # existence check, the training write and the reload agree
    args.snapshot = resolve_snapshot_path(args.snapshot)
    if not os.path.exists(args.snapshot):
        if not args.model or not args.dataset:
            print("snapshot does not exist; --model and --dataset are "
                  "required to train one", file=sys.stderr)
            return 2
        dataset = _load_dataset(args)
        print(f"dataset:  {dataset}")
        model = build_model(args.model, dataset, _model_config(args),
                            seed=args.seed)
        train_config = TrainConfig(
            epochs=args.epochs, batch_size=args.batch_size,
            learning_rate=args.lr, snapshot_path=args.snapshot,
            verbose=not args.quiet)
        result = fit_model(model, dataset, train_config, seed=args.seed)
        print(f"trained {args.model} for {len(result.history)} epochs "
              f"({result.train_seconds:.1f}s)")
    service = RecommenderService.from_snapshot(args.snapshot,
                                               num_workers=args.workers)
    stats = service.stats()
    print(f"serving:  {stats['model']} ({stats['backend']} backend, "
          f"{stats['num_workers']} worker(s))")
    if args.users:
        import numpy as np
        users = np.array([int(u) for u in args.users.split(",")],
                         dtype=np.int64)
    else:
        users = None
    lists = service.recommend(users, k=args.k,
                              exclude_seen=not args.include_seen)
    if users is None:
        import numpy as np
        users = np.arange(service.num_users, dtype=np.int64)
    payload = {
        "model": stats["model"],
        "k": args.k,
        "exclude_seen": not args.include_seen,
        "recommendations": {str(int(u)): [int(i) for i in row]
                            for u, row in zip(users, lists)},
    }
    text = json.dumps(payload, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"top-{args.k} lists for {len(users)} users -> {args.output}")
    else:
        print(text)
    service.close()
    return 0


def cmd_evaluate(args) -> int:
    """Evaluate a (possibly checkpointed) model on a dataset."""
    dataset = _load_dataset(args)
    model = build_model(args.model, dataset, _model_config(args),
                        seed=args.seed)
    if args.checkpoint:
        model.load_state_dict(load_state(args.checkpoint))
        print(f"loaded checkpoint {args.checkpoint}")
    # chunked ranking: never materializes the dense all-pairs matrix
    metrics = evaluate_model(model, dataset, ks=(20, 40),
                             chunk_size=args.eval_chunk)
    for key, value in sorted(metrics.items()):
        print(f"  {key:12s} {value:.4f}")
    return 0


def _add_model_args(p: argparse.ArgumentParser) -> None:
    """Model hyperparameters shared by train / evaluate / recommend."""
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--layers", type=int, default=3)
    p.add_argument("--ssl-weight", type=float, default=1.0,
                   dest="ssl_weight")
    p.add_argument("--temperature", type=float, default=0.5)
    p.add_argument("--edge-threshold", type=float, default=0.2,
                   dest="edge_threshold")


def _add_fit_args(p: argparse.ArgumentParser) -> None:
    """Optimization-budget flags for commands that may train."""
    p.add_argument("--epochs", type=int, default=60)
    p.add_argument("--batch-size", type=int, default=512,
                   dest="batch_size")
    p.add_argument("--lr", type=float, default=1e-3)
    p.add_argument("--quiet", action="store_true")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="GraphAug reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list registered models")
    p_data = sub.add_parser("datasets", help="print dataset statistics")
    p_data.add_argument("--seed", type=int, default=0)

    for name, help_text in (("train", "train a model"),
                            ("evaluate", "evaluate a checkpoint")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--model", required=True,
                       choices=available_models())
        p.add_argument("--dataset", required=True,
                       help="profile name (gowalla/retail_rocket/amazon) "
                            "or path to a TSV edge list")
        _add_model_args(p)
        p.add_argument("--checkpoint", default=None)
        if name == "evaluate":
            p.add_argument("--eval-chunk", type=int,
                           default=None, dest="eval_chunk",
                           help="users ranked per evaluation block "
                                "(default: auto-sized from the memory "
                                "budget)")
        if name == "train":
            _add_fit_args(p)
            p.add_argument("--eval-every", type=int, default=10,
                           dest="eval_every")
            p.add_argument("--history", default=None,
                           help="write per-epoch history CSV here")
            p.add_argument("--snapshot", default=None,
                           help="write an end-of-fit serving snapshot "
                                "(repro.serve) here")

    p_rec = sub.add_parser(
        "recommend",
        help="serve top-k recommendations from a serving snapshot")
    p_rec.add_argument("--snapshot", required=True,
                       help="serving snapshot path; trained and written "
                            "first when it does not exist yet")
    p_rec.add_argument("--model", default=None,
                       choices=available_models(),
                       help="model to train when the snapshot is missing")
    p_rec.add_argument("--dataset", default=None,
                       help="profile name or TSV path (only needed when "
                            "training)")
    p_rec.add_argument("--users", default=None,
                       help="comma-separated user ids (default: all users)")
    p_rec.add_argument("--k", type=int, default=20)
    p_rec.add_argument("--workers", type=int, default=1,
                       help="shard executor thread-pool width")
    p_rec.add_argument("--include-seen", action="store_true",
                       dest="include_seen",
                       help="do not mask items the user already interacted "
                            "with")
    p_rec.add_argument("--output", default=None,
                       help="write the top-k JSON here instead of stdout")
    _add_model_args(p_rec)
    _add_fit_args(p_rec)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"models": cmd_models, "datasets": cmd_datasets,
                "train": cmd_train, "evaluate": cmd_evaluate,
                "recommend": cmd_recommend}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
