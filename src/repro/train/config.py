"""Hyperparameter configuration shared by every model in the zoo.

One flat dataclass keeps the registry simple: each model reads the fields it
needs and ignores the rest.  Defaults follow the paper's parameter settings
(Sec IV-A.3) scaled to this reproduction's dataset sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional, Sequence, Tuple

from ..eval.protocol import DEFAULT_CHUNK_SIZE  # noqa: F401 (re-export;
                                                # kept for callers that
                                                # pin the legacy block)


@dataclass
class ModelConfig:
    """Model hyperparameters (paper Sec IV-A.3 names in comments)."""

    embedding_dim: int = 32          # d; paper reports final results at 32
    num_layers: int = 2              # message-passing iterations L in [1,2,3]
    leaky_slope: float = 0.5         # LeakyReLU slope (fixed at 0.5)
    reg_weight: float = 1e-4         # beta3 * ||Theta||^2 (batch-wise L2)
    temperature: float = 0.5         # tau for InfoNCE, in [0.1 .. 0.9]
    ssl_weight: float = 0.3          # beta2-style weight on L_CL
    negative_weight: float = 0.0     # r, the negative-sample ratio of
                                     # Sec III-D.1; 1.0 = plain InfoNCE.
                                     # 0 (alignment-only) is required at
                                     # miniature scale — see DESIGN.md
    dropout: float = 0.1             # structure/feature corruption rate
    # --- GraphAug specific -------------------------------------------- #
    gib_weight: float = 1e-5         # beta1; the paper's best (Fig 5a)
    edge_threshold: float = 0.2      # xi, graph-sampling threshold (Table IV)
    gumbel_temperature: float = 0.5  # tau1 in Eq 5
    mixhop_hops: Tuple[int, ...] = (0, 1, 2)  # M, the hop set
    mixhop_mode: str = "light"       # "light" (mixing gates) or "dense" (Eq 11)
    # --- model-family knobs ------------------------------------------- #
    num_factors: int = 4             # disentangled latent intents (DGCF/DGCL)
    num_hyperedges: int = 16         # HCCF / MHCN hypergraph width
    num_clusters: int = 8            # NCL EM prototype count
    hidden_dim: int = 64             # NCF / AutoRec hidden width

    def with_overrides(self, **kwargs) -> "ModelConfig":
        return replace(self, **kwargs)


@dataclass
class TrainConfig:
    """Optimization loop settings."""

    epochs: int = 40
    batch_size: int = 512
    batches_per_epoch: Optional[int] = None   # default: ceil(|E| / batch)
    learning_rate: float = 1e-3               # iota
    lr_decay: float = 0.96                    # per-epoch exponential decay
    eval_every: int = 5                       # epochs between evaluations
    eval_ks: Sequence[int] = (20, 40)
    eval_metrics: Sequence[str] = ("recall", "ndcg")
    eval_chunk_size: Optional[int] = None     # users ranked per eval
                                              # block; bounds eval memory
                                              # at chunk x num_items scores.
                                              # None auto-sizes from the
                                              # memory budget (see
                                              # eval.auto_chunk_size)
    snapshot_path: Optional[str] = None       # write a serving snapshot
                                              # (repro.serve) of the final
                                              # parameters here after fit
    autograd_backend: Optional[str] = None    # primitive-implementation
                                              # backend selected for the
                                              # whole fit (e.g. "fused"
                                              # routes BPR loss + LightGCN
                                              # propagation through the
                                              # one-node fused kernels).
                                              # None = the bit-reproducible
                                              # reference tape.  Spec-
                                              # visible on purpose: fused
                                              # gradients differ from the
                                              # composed graph by float
                                              # accumulation order
    propagate_every: int = 1                  # K, the amortized-propagation
                                              # period (repro.train.parallel):
                                              # 1 (default) = today's exact
                                              # loop, bit-identical; K>1
                                              # re-propagates on every K-th
                                              # batch and trains the K-1
                                              # batches in between against
                                              # the frozen propagated tables
                                              # (stale-embedding schedule).
                                              # Spec-visible on purpose: the
                                              # staleness changes gradients;
                                              # its quality delta is measured
                                              # per model in BENCH_hotpath
                                              # (staleness_quality extras).
                                              # Requires the inherited
                                              # embedding-dot score_users
                                              # (GNN zoo); custom-scorer
                                              # models raise
    train_workers: Optional[int] = None       # N shared-memory batch workers
                                              # computing the stale-window
                                              # gradients (requires
                                              # propagate_every > 1).  None/0
                                              # = in-process.  The parent
                                              # samples every batch and
                                              # applies gradients in batch
                                              # order, so any N is bit-
                                              # identical to sequential
                                              # (run_dir_fingerprint-
                                              # certified) unless
                                              # async_updates opts out
    async_updates: bool = False               # opt-in lock-free mode: apply
                                              # window gradients in worker
                                              # completion order instead of
                                              # batch order (hogwild-style).
                                              # Breaks bit-reproducibility —
                                              # which is why it is a spec-
                                              # visible knob and never a
                                              # default; requires
                                              # train_workers
    early_stop_patience: Optional[int] = None  # evals w/o improvement
    early_stop_metric: str = "recall@20"
    verbose: bool = False
    trace: bool = False                       # record repro.obs spans for
                                              # this fit (epochs, batches,
                                              # refreshes, worker batches)
                                              # and, via the experiment
                                              # layer, export a Chrome-
                                              # trace trace.json into the
                                              # run dir.  Observability
                                              # only: never changes the
                                              # math, and run_dir
                                              # fingerprints normalize it
                                              # out like train_workers.
                                              # Off by default; the
                                              # disabled path is a no-op
                                              # fast path asserted by the
                                              # hot-path bench
    heartbeat_seconds: Optional[float] = None  # minimum seconds between
                                              # status.json heartbeat
                                              # stamps (repro.api.rundir.
                                              # write_heartbeat).  None =
                                              # the REPRO_HEARTBEAT_SECONDS
                                              # env var, else 0 = stamp on
                                              # every epoch (the classic
                                              # behaviour).  Throttling is
                                              # measured on the monotonic
                                              # clock.  Schedule-only: the
                                              # run_dir fingerprint
                                              # normalizes it out like
                                              # train_workers/trace
    fail_after_epoch: Optional[int] = None    # fault-injection hook: raise
                                              # RuntimeError once this many
                                              # epochs completed.  Exists so
                                              # the sweep engine's failure-
                                              # isolation / resume paths are
                                              # testable with a real mid-fit
                                              # crash (spec-addressable even
                                              # in spawned workers); never
                                              # set in production configs

    def with_overrides(self, **kwargs) -> "TrainConfig":
        return replace(self, **kwargs)


def config_to_dict(config) -> Dict:
    """Plain-JSON dict of a config dataclass (tuples become lists)."""
    return {f.name: (list(v) if isinstance(v := getattr(config, f.name),
                                           tuple) else v)
            for f in fields(config)}


def config_from_dict(cls, payload: Dict, context: str = ""):
    """Strict inverse of :func:`config_to_dict`.

    Unknown keys are an error naming the bad field (and, when given,
    the ``context`` it appeared under) — a typo in a spec file must not
    silently fall back to a default.  Lists are converted back to tuples
    for fields whose defaults are tuples (``eval_ks``, ``mixhop_hops``,
    ...), so a JSON round trip is lossless.
    """
    spec_fields = {f.name: f for f in fields(cls)}
    kwargs = {}
    for key, value in payload.items():
        if key not in spec_fields:
            where = f" in {context}" if context else ""
            raise ValueError(
                f"unknown {cls.__name__} field {key!r}{where}; "
                f"known fields: {sorted(spec_fields)}")
        default = spec_fields[key].default
        if isinstance(value, list) and isinstance(default, tuple):
            value = tuple(value)
        kwargs[key] = value
    return cls(**kwargs)


def fast_test_configs() -> Tuple[ModelConfig, TrainConfig]:
    """Small budgets for unit tests (seconds, not minutes)."""
    model = ModelConfig(embedding_dim=16, num_layers=2)
    train = TrainConfig(epochs=6, batch_size=256, eval_every=3)
    return model, train
