"""The shared training loop.

All 18 models train through this one loop so comparisons are apples-to-
apples: same sampler, same optimizer family, same evaluation cadence, same
early stopping.  The loop also records per-epoch history (loss, metrics,
cumulative wall-clock), which directly feeds the paper's convergence figure
(Fig 4) and cost table (Table VI).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .config import TrainConfig
from .parallel import (StaleGradientPool, apply_stale_gradients,
                       iter_window_updates)
from ..autograd import (Adam, ExponentialLR, SPMM_PRIMITIVES, no_grad,
                        primitive_profile, primitive_profiling_enabled,
                        spmm_profile, use_backend)
from ..data import BPRSampler, InteractionDataset
from ..eval import evaluate_model
from ..obs import (console, counter, counter_event, gauge, histogram, span,
                   trace_scope, tracing_enabled)
from ..utils import Timer


@dataclass
class EpochRecord:
    """One row of training history."""

    epoch: int
    loss: float
    wall_time: float                      # cumulative seconds of training
    metrics: Dict[str, float] = field(default_factory=dict)


@dataclass
class FitResult:
    """Everything a benchmark needs after training finishes."""

    history: List[EpochRecord]
    best_metrics: Dict[str, float]
    best_epoch: int
    train_seconds: float
    sampler_seconds: float = 0.0          # wall-clock inside BPR sampling
    spmm_seconds: float = 0.0             # wall-clock inside the spmm
                                          # primitive family, derived from
                                          # primitive_seconds (0 unless
                                          # profiling is on); kept as its
                                          # own field for bench-schema
                                          # compatibility
    eval_seconds: float = 0.0             # wall-clock inside chunked
                                          # ranking evaluation
    primitive_seconds: Dict[str, float] = field(default_factory=dict)
                                          # per-primitive fwd+bwd wall-
                                          # clock during this fit (empty
                                          # unless profiling is on)

    def metric_curve(self, key: str) -> List[float]:
        """Per-evaluation series of one metric (for convergence plots)."""
        return [rec.metrics[key] for rec in self.history if rec.metrics]

    def final_metrics(self) -> Dict[str, float]:
        for rec in reversed(self.history):
            if rec.metrics:
                return rec.metrics
        return {}


class Trainer:
    """Mini-batch BPR-style training driver around a model.

    The model contract (see :class:`repro.models.base.Recommender`):

    * ``model.loss(users, pos_items, neg_items) -> Tensor`` — scalar batch
      loss including the model's own regularizers / SSL terms;
    * ``model.parameters()`` — trainable tensors;
    * ``model.score_users(user_ids) -> ndarray`` — chunked preference
      scores (objects exposing only the legacy ``score_all_users()`` still
      work: evaluation falls back to one dense materialization);
    * optional ``model.inference_cache()`` — context manager sharing one
      propagation across the evaluation's score chunks;
    * optional ``model.on_epoch_start(epoch, rng)`` — hook used by models
      that resample augmented structures each epoch (SGL, GraphAug, NCL's
      EM step, ...).

    Evaluation runs through the chunked ranking engine
    (:func:`repro.eval.evaluate_model`), so the trainer never allocates
    the dense ``(num_users, num_items)`` score matrix; its wall-clock is
    recorded in ``FitResult.eval_seconds``.

    When ``TrainConfig.snapshot_path`` is set, the final parameters are
    persisted as a serving snapshot (:mod:`repro.serve`) after the last
    epoch, ready for ``RecommenderService.from_snapshot``.

    ``TrainConfig.propagate_every`` > 1 switches each epoch onto the
    amortized stale-window schedule, and ``TrainConfig.train_workers``
    fans the stale batches out over a shared-memory worker pool — see
    :mod:`repro.train.parallel`.  Both require the model's inherited
    embedding-dot ``score_users`` (``supports_amortized_propagation``);
    the default ``propagate_every=1`` runs the classic loop unchanged.
    """

    def __init__(self, model, dataset: InteractionDataset,
                 config: Optional[TrainConfig] = None,
                 seed: int = 0, epoch_hook=None):
        self.model = model
        self.dataset = dataset
        self.config = config or TrainConfig()
        # called with each EpochRecord right after it lands in history;
        # the experiment layer uses it to stream crash-safe metrics.jsonl
        # rows and status.json heartbeats.  A plain constructor argument
        # (not a TrainConfig field) so configs stay JSON-round-trippable
        self.epoch_hook = epoch_hook
        self._validate_schedule(model, self.config)
        self.rng = np.random.default_rng(seed)
        self.sampler = BPRSampler(dataset.train, self.rng)
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate)
        self.scheduler = ExponentialLR(self.optimizer,
                                       gamma=self.config.lr_decay)

    @staticmethod
    def _validate_schedule(model, cfg: TrainConfig) -> None:
        """Reject inconsistent scheduler knobs up front, loudly."""
        if cfg.propagate_every < 1:
            raise ValueError(
                f"propagate_every must be >= 1, got {cfg.propagate_every}")
        workers = cfg.train_workers or 0
        if workers < 0:
            raise ValueError(
                f"train_workers must be >= 0, got {cfg.train_workers}")
        if workers and cfg.propagate_every <= 1:
            raise ValueError(
                "train_workers requires propagate_every > 1: the worker "
                "pool parallelizes the stale batches of the amortized "
                "schedule, and with propagate_every=1 every batch "
                "re-propagates in the parent")
        if cfg.async_updates and not workers:
            raise ValueError(
                "async_updates is the worker pool's completion-order "
                "mode; set train_workers as well")
        if cfg.propagate_every > 1:
            supports = getattr(model, "supports_amortized_propagation",
                               None)
            if not (supports and supports()):
                raise ValueError(
                    f"model {getattr(model, 'name', type(model).__name__)!r}"
                    " does not support amortized propagation "
                    "(custom score_users): train it with "
                    "propagate_every=1")

    # ------------------------------------------------------------------ #
    def fit(self) -> FitResult:
        """Train to completion under the configured autograd backend.

        ``TrainConfig.autograd_backend`` (when set) scopes the primitive
        backend selection — e.g. the fused hot-path kernels — to this
        fit and is restored afterwards.  ``TrainConfig.trace`` likewise
        scopes ``repro.obs`` tracing to this fit (and never force-
        disables tracing a caller already enabled).
        """
        with trace_scope(self.config.trace):
            if self.config.autograd_backend:
                with use_backend(self.config.autograd_backend):
                    return self._fit()
            return self._fit()

    def _fit(self) -> FitResult:
        cfg = self.config
        num_batches = cfg.batches_per_epoch
        if num_batches is None:
            num_batches = max(
                1, math.ceil(self.dataset.num_train_interactions
                             / cfg.batch_size))
        history: List[EpochRecord] = []
        timer = Timer()
        sampler_timer = Timer()
        eval_timer = Timer()
        spmm_seconds_at_start = spmm_profile()["seconds"]
        profile_at_start = primitive_profile()
        best_value = -np.inf
        best_metrics: Dict[str, float] = {}
        best_epoch = -1
        stale_evals = 0
        propagate_every = max(1, cfg.propagate_every)
        self._ego_columns = slice(None)
        self._table_shapes = None
        if propagate_every > 1:
            # probe the propagated-table geometry once: width may exceed
            # the ego width (layer-concat models), and the model then
            # names the identity-rooted block the stale scatter may use
            with no_grad():
                users_t, items_t = self.model.propagate()
            self._table_shapes = (users_t.data.shape, items_t.data.shape,
                                  users_t.data.dtype)
            self._ego_columns = self.model.amortized_ego_columns(
                users_t.data.shape[1])
        pool = self._make_pool(num_batches)
        try:
            return self._fit_epochs(
                cfg, num_batches, propagate_every, pool, history, timer,
                sampler_timer, eval_timer, spmm_seconds_at_start,
                profile_at_start, best_value, best_metrics, best_epoch,
                stale_evals)
        finally:
            if pool is not None:
                pool.close()  # idempotent; the success path already did

    def _make_pool(self, num_batches: int) -> Optional[StaleGradientPool]:
        """Spawn the stale-batch worker pool when the config asks for one."""
        cfg = self.config
        workers = cfg.train_workers or 0
        max_window = min(max(1, cfg.propagate_every) - 1, num_batches - 1)
        if not workers or max_window < 1:
            return None
        user_shape, item_shape, dtype = self._table_shapes
        return StaleGradientPool(
            workers=workers, num_users=user_shape[0],
            num_items=item_shape[0],
            dim=user_shape[1], dtype=dtype,
            batch_size=cfg.batch_size, max_window=max_window,
            reg_weight=self.model.config.reg_weight,
            backend=cfg.autograd_backend,
            profile=primitive_profiling_enabled(),
            trace=tracing_enabled())

    @staticmethod
    def _emit_primitive_counters(profile_at_start) -> None:
        """Re-expose the autograd profiler as trace counter tracks.

        When both tracing and per-primitive profiling are on, each epoch
        drops one Chrome ``"C"`` sample per primitive with the seconds
        accumulated since fit start — a plottable time series of where
        the tape spends its time.  No-op otherwise.
        """
        if not (tracing_enabled() and primitive_profiling_enabled()):
            return
        for name, entry in primitive_profile().items():
            delta = entry["seconds"] - profile_at_start.get(
                name, {}).get("seconds", 0.0)
            if delta > 0.0:
                counter_event(f"autograd.{name}", seconds=delta,
                              calls=entry["calls"])

    def _fit_epochs(self, cfg, num_batches, propagate_every, pool, history,
                    timer, sampler_timer, eval_timer, spmm_seconds_at_start,
                    profile_at_start, best_value, best_metrics, best_epoch,
                    stale_evals) -> FitResult:
        for epoch in range(1, cfg.epochs + 1):
            epoch_started = timer.total
            with span("train.epoch", epoch=epoch), timer:
                if hasattr(self.model, "on_epoch_start"):
                    self.model.on_epoch_start(epoch, self.rng)
                if propagate_every == 1:
                    # the classic exact loop, operation-for-operation the
                    # pre-scheduler trainer (bit-identical by construction)
                    epoch_loss = 0.0
                    for _ in range(num_batches):
                        with span("train.batch"):
                            with sampler_timer:
                                users, pos, neg = self.sampler.sample(
                                    cfg.batch_size)
                            loss = self.model.loss(users, pos, neg)
                            self.optimizer.zero_grad()
                            loss.backward()
                            self.optimizer.step()
                            epoch_loss += loss.item()
                else:
                    epoch_loss = self._amortized_epoch(
                        num_batches, propagate_every, pool, sampler_timer)
                self.scheduler.step()
            epoch_loss /= num_batches

            metrics: Dict[str, float] = {}
            if epoch % cfg.eval_every == 0 or epoch == cfg.epochs:
                with span("train.eval", epoch=epoch), eval_timer:
                    metrics = evaluate_model(
                        self.model, self.dataset, ks=cfg.eval_ks,
                        metrics=cfg.eval_metrics,
                        chunk_size=cfg.eval_chunk_size)
                tracked = metrics.get(cfg.early_stop_metric)
                if tracked is not None:
                    if tracked > best_value:
                        best_value = tracked
                        best_metrics = dict(metrics)
                        best_epoch = epoch
                        stale_evals = 0
                    else:
                        stale_evals += 1
            if cfg.verbose:
                msg = f"epoch {epoch:3d} loss {epoch_loss:.4f}"
                if metrics:
                    msg += "  " + "  ".join(f"{k}={v:.4f}"
                                            for k, v in metrics.items())
                console(msg)

            counter("train.epochs",
                    help="completed training epochs").inc()
            counter("train.batches",
                    help="gradient batches applied").inc(num_batches)
            gauge("train.loss", help="last epoch's mean loss").set(epoch_loss)
            histogram("train.epoch_seconds",
                      help="wall-clock per training epoch").observe(
                timer.total - epoch_started)
            self._emit_primitive_counters(profile_at_start)

            history.append(EpochRecord(epoch=epoch, loss=epoch_loss,
                                       wall_time=timer.total,
                                       metrics=metrics))
            if self.epoch_hook is not None:
                self.epoch_hook(history[-1])
            kill_after = os.environ.get("REPRO_FAULT_KILL_AFTER_EPOCH")
            if kill_after is not None and epoch >= int(kill_after):
                # the hard half of the fault-injection surface: unlike
                # fail_after_epoch (a catchable raise), this is a
                # process death no except/finally can intercept — the
                # crash/retry path the dispatch chaos tests exercise.
                # An env var (not a config field) on purpose: it kills
                # whichever *process* carries it, never changes a
                # spec's identity, and composes with any spec
                os._exit(137)
            if (cfg.fail_after_epoch is not None
                    and epoch >= cfg.fail_after_epoch):
                # fault-injection hook (see TrainConfig.fail_after_epoch):
                # a deliberate mid-fit crash for failure-isolation tests
                raise RuntimeError(
                    f"injected training failure after epoch {epoch} "
                    "(TrainConfig.fail_after_epoch)")
            if (cfg.early_stop_patience is not None
                    and stale_evals >= cfg.early_stop_patience):
                break

        if not best_metrics and history:
            # no eval ever ran (eval_every > epochs); evaluate once at end
            with eval_timer:
                best_metrics = evaluate_model(
                    self.model, self.dataset, ks=cfg.eval_ks,
                    metrics=cfg.eval_metrics,
                    chunk_size=cfg.eval_chunk_size)
            best_epoch = history[-1].epoch
        if cfg.snapshot_path:
            # end-of-fit serving snapshot of the final parameters
            from .callbacks import ServingSnapshot
            ServingSnapshot(cfg.snapshot_path)(self.model, self.dataset)
        # fold the workers' per-process profile counters in *before*
        # reading the parent's, so FitResult.primitive_seconds (and the
        # derived spmm view) stays truthful under train_workers > 1
        worker_profile = pool.close() if pool is not None else {}
        primitive_seconds = {}
        for name, entry in primitive_profile().items():
            delta = entry["seconds"] - profile_at_start.get(
                name, {}).get("seconds", 0.0)
            if delta > 0.0:
                primitive_seconds[name] = delta
        worker_spmm_seconds = 0.0
        for name, entry in worker_profile.items():
            seconds = entry.get("seconds", 0.0)
            if seconds <= 0.0:
                continue
            primitive_seconds[name] = (primitive_seconds.get(name, 0.0)
                                       + seconds)
            if name in SPMM_PRIMITIVES:
                worker_spmm_seconds += seconds
        return FitResult(history=history, best_metrics=best_metrics,
                         best_epoch=best_epoch, train_seconds=timer.total,
                         sampler_seconds=sampler_timer.total,
                         spmm_seconds=(spmm_profile()["seconds"]
                                       - spmm_seconds_at_start
                                       + worker_spmm_seconds),
                         eval_seconds=eval_timer.total,
                         primitive_seconds=primitive_seconds)

    def _amortized_epoch(self, num_batches: int, propagate_every: int,
                         pool: Optional[StaleGradientPool],
                         sampler_timer: Timer) -> float:
        """One epoch of the stale-window schedule (see train.parallel).

        Every window: one exact batch (live ``model.loss``), a frozen
        table refresh, then up to ``propagate_every - 1`` stale batches
        whose gradients come from the pool (or the bit-identical
        in-process path) and are applied in batch order — completion
        order only under the explicit ``async_updates`` opt-in.  The
        parent samples all batches, so the RNG stream never depends on
        the worker count.
        """
        model, cfg = self.model, self.config
        reg_weight = model.config.reg_weight
        epoch_loss = 0.0
        batch = 0
        while batch < num_batches:
            with span("train.batch", exact=True):
                with sampler_timer:
                    users, pos, neg = self.sampler.sample(cfg.batch_size)
                loss = model.loss(users, pos, neg)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                epoch_loss += loss.item()
            batch += 1
            window = min(propagate_every - 1, num_batches - batch)
            if window < 1:
                continue
            with span("train.refresh", batch=batch):
                stale_users, stale_items = model.refresh_propagation()
            with span("train.window", size=window):
                batches = []
                for _ in range(window):
                    with sampler_timer:
                        batches.append(self.sampler.sample(cfg.batch_size))
                if pool is not None:
                    pool.push_tables(stale_users, stale_items)
                    updates = pool.run_window(batches,
                                              ordered=not cfg.async_updates)
                else:
                    updates = iter_window_updates(stale_users, stale_items,
                                                  batches, reg_weight)
                for users, pos, neg, loss_value, gu, gp, gn in updates:
                    apply_stale_gradients(model, self.optimizer,
                                          users, pos, neg, gu, gp, gn,
                                          ego_columns=self._ego_columns)
                    epoch_loss += loss_value
            batch += window
        return epoch_loss


def fit_model(model, dataset: InteractionDataset,
              config: Optional[TrainConfig] = None, seed: int = 0
              ) -> FitResult:
    """One-call convenience wrapper: build a Trainer and fit."""
    return Trainer(model, dataset, config=config, seed=seed).fit()
