"""The shared training loop.

All 18 models train through this one loop so comparisons are apples-to-
apples: same sampler, same optimizer family, same evaluation cadence, same
early stopping.  The loop also records per-epoch history (loss, metrics,
cumulative wall-clock), which directly feeds the paper's convergence figure
(Fig 4) and cost table (Table VI).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .config import TrainConfig
from ..autograd import (Adam, ExponentialLR, primitive_profile,
                        spmm_profile, use_backend)
from ..data import BPRSampler, InteractionDataset
from ..eval import evaluate_model
from ..utils import Timer


@dataclass
class EpochRecord:
    """One row of training history."""

    epoch: int
    loss: float
    wall_time: float                      # cumulative seconds of training
    metrics: Dict[str, float] = field(default_factory=dict)


@dataclass
class FitResult:
    """Everything a benchmark needs after training finishes."""

    history: List[EpochRecord]
    best_metrics: Dict[str, float]
    best_epoch: int
    train_seconds: float
    sampler_seconds: float = 0.0          # wall-clock inside BPR sampling
    spmm_seconds: float = 0.0             # wall-clock inside the spmm
                                          # primitive family, derived from
                                          # primitive_seconds (0 unless
                                          # profiling is on); kept as its
                                          # own field for bench-schema
                                          # compatibility
    eval_seconds: float = 0.0             # wall-clock inside chunked
                                          # ranking evaluation
    primitive_seconds: Dict[str, float] = field(default_factory=dict)
                                          # per-primitive fwd+bwd wall-
                                          # clock during this fit (empty
                                          # unless profiling is on)

    def metric_curve(self, key: str) -> List[float]:
        """Per-evaluation series of one metric (for convergence plots)."""
        return [rec.metrics[key] for rec in self.history if rec.metrics]

    def final_metrics(self) -> Dict[str, float]:
        for rec in reversed(self.history):
            if rec.metrics:
                return rec.metrics
        return {}


class Trainer:
    """Mini-batch BPR-style training driver around a model.

    The model contract (see :class:`repro.models.base.Recommender`):

    * ``model.loss(users, pos_items, neg_items) -> Tensor`` — scalar batch
      loss including the model's own regularizers / SSL terms;
    * ``model.parameters()`` — trainable tensors;
    * ``model.score_users(user_ids) -> ndarray`` — chunked preference
      scores (objects exposing only the legacy ``score_all_users()`` still
      work: evaluation falls back to one dense materialization);
    * optional ``model.inference_cache()`` — context manager sharing one
      propagation across the evaluation's score chunks;
    * optional ``model.on_epoch_start(epoch, rng)`` — hook used by models
      that resample augmented structures each epoch (SGL, GraphAug, NCL's
      EM step, ...).

    Evaluation runs through the chunked ranking engine
    (:func:`repro.eval.evaluate_model`), so the trainer never allocates
    the dense ``(num_users, num_items)`` score matrix; its wall-clock is
    recorded in ``FitResult.eval_seconds``.

    When ``TrainConfig.snapshot_path`` is set, the final parameters are
    persisted as a serving snapshot (:mod:`repro.serve`) after the last
    epoch, ready for ``RecommenderService.from_snapshot``.
    """

    def __init__(self, model, dataset: InteractionDataset,
                 config: Optional[TrainConfig] = None,
                 seed: int = 0):
        self.model = model
        self.dataset = dataset
        self.config = config or TrainConfig()
        self.rng = np.random.default_rng(seed)
        self.sampler = BPRSampler(dataset.train, self.rng)
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate)
        self.scheduler = ExponentialLR(self.optimizer,
                                       gamma=self.config.lr_decay)

    # ------------------------------------------------------------------ #
    def fit(self) -> FitResult:
        """Train to completion under the configured autograd backend.

        ``TrainConfig.autograd_backend`` (when set) scopes the primitive
        backend selection — e.g. the fused hot-path kernels — to this
        fit and is restored afterwards.
        """
        if self.config.autograd_backend:
            with use_backend(self.config.autograd_backend):
                return self._fit()
        return self._fit()

    def _fit(self) -> FitResult:
        cfg = self.config
        num_batches = cfg.batches_per_epoch
        if num_batches is None:
            num_batches = max(
                1, math.ceil(self.dataset.num_train_interactions
                             / cfg.batch_size))
        history: List[EpochRecord] = []
        timer = Timer()
        sampler_timer = Timer()
        eval_timer = Timer()
        spmm_seconds_at_start = spmm_profile()["seconds"]
        profile_at_start = primitive_profile()
        best_value = -np.inf
        best_metrics: Dict[str, float] = {}
        best_epoch = -1
        stale_evals = 0

        for epoch in range(1, cfg.epochs + 1):
            with timer:
                if hasattr(self.model, "on_epoch_start"):
                    self.model.on_epoch_start(epoch, self.rng)
                epoch_loss = 0.0
                for _ in range(num_batches):
                    with sampler_timer:
                        users, pos, neg = self.sampler.sample(cfg.batch_size)
                    loss = self.model.loss(users, pos, neg)
                    self.optimizer.zero_grad()
                    loss.backward()
                    self.optimizer.step()
                    epoch_loss += loss.item()
                self.scheduler.step()
            epoch_loss /= num_batches

            metrics: Dict[str, float] = {}
            if epoch % cfg.eval_every == 0 or epoch == cfg.epochs:
                with eval_timer:
                    metrics = evaluate_model(
                        self.model, self.dataset, ks=cfg.eval_ks,
                        metrics=cfg.eval_metrics,
                        chunk_size=cfg.eval_chunk_size)
                tracked = metrics.get(cfg.early_stop_metric)
                if tracked is not None:
                    if tracked > best_value:
                        best_value = tracked
                        best_metrics = dict(metrics)
                        best_epoch = epoch
                        stale_evals = 0
                    else:
                        stale_evals += 1
            if cfg.verbose:
                msg = f"epoch {epoch:3d} loss {epoch_loss:.4f}"
                if metrics:
                    msg += "  " + "  ".join(f"{k}={v:.4f}"
                                            for k, v in metrics.items())
                print(msg)

            history.append(EpochRecord(epoch=epoch, loss=epoch_loss,
                                       wall_time=timer.total,
                                       metrics=metrics))
            if (cfg.fail_after_epoch is not None
                    and epoch >= cfg.fail_after_epoch):
                # fault-injection hook (see TrainConfig.fail_after_epoch):
                # a deliberate mid-fit crash for failure-isolation tests
                raise RuntimeError(
                    f"injected training failure after epoch {epoch} "
                    "(TrainConfig.fail_after_epoch)")
            if (cfg.early_stop_patience is not None
                    and stale_evals >= cfg.early_stop_patience):
                break

        if not best_metrics and history:
            # no eval ever ran (eval_every > epochs); evaluate once at end
            with eval_timer:
                best_metrics = evaluate_model(
                    self.model, self.dataset, ks=cfg.eval_ks,
                    metrics=cfg.eval_metrics,
                    chunk_size=cfg.eval_chunk_size)
            best_epoch = history[-1].epoch
        if cfg.snapshot_path:
            # end-of-fit serving snapshot of the final parameters
            from .callbacks import ServingSnapshot
            ServingSnapshot(cfg.snapshot_path)(self.model, self.dataset)
        primitive_seconds = {}
        for name, entry in primitive_profile().items():
            delta = entry["seconds"] - profile_at_start.get(
                name, {}).get("seconds", 0.0)
            if delta > 0.0:
                primitive_seconds[name] = delta
        return FitResult(history=history, best_metrics=best_metrics,
                         best_epoch=best_epoch, train_seconds=timer.total,
                         sampler_seconds=sampler_timer.total,
                         spmm_seconds=(spmm_profile()["seconds"]
                                       - spmm_seconds_at_start),
                         eval_seconds=eval_timer.total,
                         primitive_seconds=primitive_seconds)


def fit_model(model, dataset: InteractionDataset,
              config: Optional[TrainConfig] = None, seed: int = 0
              ) -> FitResult:
    """One-call convenience wrapper: build a Trainer and fit."""
    return Trainer(model, dataset, config=config, seed=seed).fit()
