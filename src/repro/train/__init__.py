"""``repro.train`` — configs and the shared training loop."""

from .config import (ModelConfig, TrainConfig, fast_test_configs,
                     config_to_dict, config_from_dict)
from .trainer import Trainer, FitResult, EpochRecord, fit_model
from .callbacks import (BestCheckpoint, ServingSnapshot, CALLBACK_REGISTRY,
                        save_state, load_state, history_to_csv,
                        history_to_json)

__all__ = ["ModelConfig", "TrainConfig", "fast_test_configs",
           "config_to_dict", "config_from_dict",
           "Trainer", "FitResult", "EpochRecord", "fit_model",
           "BestCheckpoint", "ServingSnapshot", "CALLBACK_REGISTRY",
           "save_state", "load_state", "history_to_csv", "history_to_json"]
