"""``repro.train`` — configs and the shared training loop."""

from .config import ModelConfig, TrainConfig, fast_test_configs
from .trainer import Trainer, FitResult, EpochRecord, fit_model
from .callbacks import (BestCheckpoint, ServingSnapshot, save_state,
                        load_state, history_to_csv, history_to_json)

__all__ = ["ModelConfig", "TrainConfig", "fast_test_configs",
           "Trainer", "FitResult", "EpochRecord", "fit_model",
           "BestCheckpoint", "ServingSnapshot", "save_state", "load_state",
           "history_to_csv", "history_to_json"]
