"""Training persistence helpers: checkpointing and history export.

The Trainer itself stays minimal; these utilities cover the two things a
practitioner needs around it — saving the best parameters seen so far and
dumping training curves for plotting.

The post-fit artifact writers are also the ``"callback"`` component
registry (:func:`repro.utils.component_registry`): each entry has the
uniform signature ``callback(model, dataset, result, path) -> str`` and
is resolvable by name from an :class:`repro.api.ExperimentSpec`
(``checkpoint`` -> ``"best_checkpoint"``, ``history`` ->
``"history_csv"``, ``snapshot`` -> ``"serving_snapshot"``).
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Optional

import numpy as np

from .trainer import FitResult
from ..utils import component_registry

CALLBACK_REGISTRY = component_registry("callback")


class BestCheckpoint:
    """Keep a copy of the best-scoring model parameters in memory / on disk.

    Usage::

        ckpt = BestCheckpoint(metric="recall@20", path="best.npz")
        for epoch ...:
            metrics = evaluate(...)
            ckpt.update(model, metrics)
        ckpt.restore(model)   # load the best parameters back
    """

    def __init__(self, metric: str = "recall@20",
                 path: Optional[str] = None):
        self.metric = metric
        self.path = path
        self.best_value = -np.inf
        self._state: Optional[Dict[str, np.ndarray]] = None

    def update(self, model, metrics: Dict[str, float]) -> bool:
        """Record the model if ``metrics[self.metric]`` improved."""
        value = metrics.get(self.metric)
        if value is None or value <= self.best_value:
            return False
        self.best_value = value
        self._state = model.state_dict()
        if self.path:
            save_state(self._state, self.path)
        return True

    def restore(self, model) -> None:
        if self._state is None:
            raise RuntimeError("no checkpoint recorded yet")
        model.load_state_dict(self._state)


class ServingSnapshot:
    """End-of-fit callback: persist a serving snapshot (:mod:`repro.serve`).

    Unlike :class:`BestCheckpoint` (bare parameters, reloaded through the
    same training setup), a serving snapshot is self-contained: it also
    carries the train-positive CSR and, for embedding-scored models, the
    propagated arrays, so ``RecommenderService.from_snapshot`` can answer
    recommendations without any training code.  The Trainer invokes this
    automatically when ``TrainConfig.snapshot_path`` is set.
    """

    def __init__(self, path: str):
        self.path = path
        self.written: Optional[str] = None

    def __call__(self, model, dataset) -> str:
        from ..serve import save_snapshot  # deferred: serve is optional here
        self.written = save_snapshot(model, dataset, self.path)
        return self.written


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Persist a ``state_dict`` to a compressed NPZ file."""
    np.savez_compressed(path, **{_escape(k): v for k, v in state.items()})


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Inverse of :func:`save_state`."""
    with np.load(path) as blob:
        return {_unescape(k): blob[k] for k in blob.files}


def _escape(name: str) -> str:
    # npz keys cannot contain '/'; parameter names use '.' anyway, but be
    # safe about both separators
    return name.replace("/", "__slash__")


def _unescape(name: str) -> str:
    return name.replace("__slash__", "/")


@CALLBACK_REGISTRY.register("best_checkpoint")
def write_checkpoint(model, dataset, result: FitResult, path: str) -> str:
    """Persist the model's end-of-fit parameters as a bare checkpoint.

    (The CLI's historical behaviour: one ``save_state`` of the final
    ``state_dict``, reloadable through :func:`load_state`.)
    """
    save_state(model.state_dict(), path)
    return path


@CALLBACK_REGISTRY.register("history_csv")
def write_history_csv(model, dataset, result: FitResult, path: str) -> str:
    """Registry form of :func:`history_to_csv` (per-epoch curve CSV)."""
    history_to_csv(result, path)
    return path


@CALLBACK_REGISTRY.register("history_json")
def write_history_json(model, dataset, result: FitResult, path: str) -> str:
    """Registry form of :func:`history_to_json` (full fit record JSON)."""
    history_to_json(result, path)
    return path


@CALLBACK_REGISTRY.register("serving_snapshot")
def write_serving_snapshot(model, dataset, result: FitResult,
                           path: str) -> str:
    """Registry form of :class:`ServingSnapshot` (repro.serve artifact)."""
    return ServingSnapshot(path)(model, dataset)


def history_to_csv(result: FitResult, path: str) -> None:
    """Dump per-epoch loss / wall-time / metrics as CSV (plot-ready)."""
    metric_keys = sorted({key for rec in result.history
                          for key in rec.metrics})
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["epoch", "loss", "wall_time"] + metric_keys)
        for rec in result.history:
            row = [rec.epoch, f"{rec.loss:.6f}", f"{rec.wall_time:.3f}"]
            row += [f"{rec.metrics[k]:.6f}" if k in rec.metrics else ""
                    for k in metric_keys]
            writer.writerow(row)


def history_to_json(result: FitResult, path: str) -> None:
    """Dump the full fit result (history + best metrics) as JSON."""
    payload = {
        "best_epoch": result.best_epoch,
        "best_metrics": result.best_metrics,
        "train_seconds": result.train_seconds,
        "history": [
            {"epoch": rec.epoch, "loss": rec.loss,
             "wall_time": rec.wall_time, "metrics": rec.metrics}
            for rec in result.history
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
