"""The multicore training scheduler: amortized propagation + batch workers.

PR 1–6 vectorized sampling, chunked evaluation, sharded serving and fused
the autograd hot path; the per-primitive profile now points at one cost:
every mini-batch recomputes the full multi-layer ``propagate()`` forward
*and* backward.  This module amortizes that cost and opens the training
loop to multiple cores, without giving up the repo's determinism
invariant.

The stale-window schedule (``TrainConfig.propagate_every = K``)
----------------------------------------------------------------
Each epoch is cut into windows of ``K`` batches:

* the **refresh batch** (first of the window) trains exactly like today —
  full ``model.loss`` through a live ``propagate()``, SSL terms and all —
  and then freezes a snapshot of the propagated tables
  (:meth:`Recommender.refresh_propagation`);
* the following ``K-1`` **stale batches** train a BPR + L2 objective
  directly on the frozen tables (:func:`stale_batch_grads`): the forward
  reads stale rows, and the gradient is scattered back onto the ego
  embedding tables through the tape's own ``take_rows`` scatter
  (:func:`repro.autograd.scatter_rows`), as if the final embeddings were
  the ego embeddings plus a constant propagation offset.  Non-embedding
  parameters (e.g. NGCF's layer weights) and SSL terms update only on
  refresh batches.

Because a stale batch's objective depends *only* on the frozen tables —
never on parameters updated inside the window — the window's gradients
are mutually independent.  That is the whole trick: they can be computed
in any order, by any number of processes, and applying them in the fixed
batch order reproduces the sequential schedule **bit for bit**.

``K = 1`` (the default) never enters this module: the trainer runs the
classic loop unchanged, bit-identical to every previous release.  The
schedule requires the inherited embedding-dot ``score_users`` (see
:meth:`Recommender.supports_amortized_propagation`); custom-scorer models
(ncf, autorec, biasmf) reject it loudly.

The shared-memory worker pool (``TrainConfig.train_workers = N``)
-----------------------------------------------------------------
:class:`StaleGradientPool` spawns ``N`` persistent workers (same
``spawn`` discipline as the sweep pool).  The frozen tables live in
``multiprocessing.shared_memory`` segments (:class:`~repro.autograd.shmem.
SharedNDArray`) the parent rewrites in place at each refresh; each worker
owns a shared gradient result buffer the parent applies from — per
window, the only data crossing a pipe is batch indices and scalar losses.
The parent samples **every** batch (one RNG stream, identical to
sequential), deals stale batches round-robin, and applies the results in
batch order — so ``train_workers=N`` is bit-identical to the in-process
schedule for any ``N`` (``run_dir_fingerprint``-certified, the same
invariant the sweep and serving tiers test).  Completion-order
application (hogwild-style) is available behind the explicit
``TrainConfig.async_updates`` opt-in.

Worker BLAS pools are capped at ``cores // N``
(:mod:`repro.utils.threads`, override with ``REPRO_BLAS_THREADS``) so N
numpy processes don't oversubscribe the machine, and each worker ships
its :func:`repro.autograd.primitive_profile` deltas back at shutdown so
``FitResult.primitive_seconds`` stays truthful across processes.
"""

from __future__ import annotations

import math
import multiprocessing
import traceback as _traceback
from contextlib import ExitStack
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import (Tensor, enable_primitive_profiling, fused_bpr_loss,
                        fused_kernels_enabled, primitive_profile,
                        scatter_rows, use_backend, functional as F)
from ..autograd.shmem import SharedNDArray
from ..obs import (absorb_events, drain_events, enable_tracing,
                   set_process_label, span)
from ..utils.threads import (apply_blas_thread_limit, blas_thread_budget,
                             blas_thread_limit)

#: same start method as the sweep pool: every worker gets a clean
#: interpreter, so results are identical no matter which process runs what
MP_START_METHOD = "spawn"

#: seconds to wait on a worker before declaring it dead
_WORKER_TIMEOUT = 120.0

#: a sampled BPR batch: (users, pos_items, neg_items) index arrays
Batch = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: one applicable stale update: (users, pos, neg, loss, gu, gp, gn)
Update = Tuple[np.ndarray, np.ndarray, np.ndarray, float,
               np.ndarray, np.ndarray, np.ndarray]


# --------------------------------------------------------------------- #
# the stale-batch objective (shared by the in-process and worker paths)
# --------------------------------------------------------------------- #

def stale_batch_grads(user_rows: np.ndarray, pos_rows: np.ndarray,
                      neg_rows: np.ndarray, reg_weight: float
                      ) -> Tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """Loss and per-row gradients of one stale batch.

    ``user_rows`` / ``pos_rows`` / ``neg_rows`` are rows gathered from
    the *frozen* propagated tables.  The objective mirrors the exact
    path's BPR + batch-wise L2 (same fused-kernel gating), computed
    entirely on the stale rows — by construction it never reads live
    parameters, which is what makes window gradients order- and
    process-independent.  Returns ``(loss, d/d_user_rows, d/d_pos_rows,
    d/d_neg_rows)``; the caller scatters them onto the ego tables.
    """
    u = Tensor(user_rows, requires_grad=True)
    vp = Tensor(pos_rows, requires_grad=True)
    vn = Tensor(neg_rows, requires_grad=True)
    if fused_kernels_enabled("fused_bpr_loss"):
        loss = fused_bpr_loss(u, vp, vn)
    else:
        pos_scores = (u * vp).sum(axis=1)
        neg_scores = (u * vn).sum(axis=1)
        loss = F.bpr_loss(pos_scores, neg_scores)
    if reg_weight:
        total = (u * u).sum() + (vp * vp).sum() + (vn * vn).sum()
        loss = loss + total * (reg_weight / max(1, user_rows.shape[0]))
    loss.backward()
    return float(loss.item()), u.grad, vp.grad, vn.grad


def apply_stale_gradients(model, optimizer, users: np.ndarray,
                          pos: np.ndarray, neg: np.ndarray,
                          gu: np.ndarray, gp: np.ndarray, gn: np.ndarray,
                          ego_columns: slice = slice(None)) -> None:
    """Scatter per-row stale gradients onto the ego tables and step.

    ``ego_columns`` restricts the scatter to the identity-rooted block
    of the propagated width (:meth:`Recommender.amortized_ego_columns`;
    the full width for LightGCN-style models).  Uses the tape's own
    dtype-preserving segment-sum scatter
    (:func:`repro.autograd.scatter_rows`) — one scatter per ``take_rows``
    occurrence, accumulated exactly like ``backward()`` would — so an
    update applied here is bit-identical wherever the grads were
    computed.
    """
    uw = model.user_emb.weight
    iw = model.item_emb.weight
    users = np.asarray(users, dtype=np.int64)
    pos = np.asarray(pos, dtype=np.int64)
    neg = np.asarray(neg, dtype=np.int64)
    optimizer.zero_grad()
    uw.grad = scatter_rows(
        np.ascontiguousarray(gu[:, ego_columns], dtype=uw.data.dtype),
        users, uw.data.shape[0])
    item_grad = scatter_rows(
        np.ascontiguousarray(gp[:, ego_columns], dtype=iw.data.dtype),
        pos, iw.data.shape[0])
    item_grad += scatter_rows(
        np.ascontiguousarray(gn[:, ego_columns], dtype=iw.data.dtype),
        neg, iw.data.shape[0])
    iw.grad = item_grad
    optimizer.step()


def iter_window_updates(stale_users: np.ndarray, stale_items: np.ndarray,
                        batches: Sequence[Batch], reg_weight: float
                        ) -> Iterator[Update]:
    """In-process stale window: compute each batch's grads, in order.

    The sequential twin of :meth:`StaleGradientPool.run_window` — same
    gather, same :func:`stale_batch_grads`, same yield shape — so the
    worker pool has a bit-identical reference to be tested against.
    """
    for users, pos, neg in batches:
        loss, gu, gp, gn = stale_batch_grads(
            stale_users[users], stale_items[pos], stale_items[neg],
            reg_weight)
        yield users, pos, neg, loss, gu, gp, gn


# --------------------------------------------------------------------- #
# worker-side plumbing (module-level: pickled by qualified name on spawn)
# --------------------------------------------------------------------- #

def _worker_main(init: Dict, task_queue, result_queue) -> None:
    """One batch worker: gather stale rows, compute grads, publish.

    Tasks arrive as ``(slot, seq, users, pos, neg)``; the gradients land
    in slot ``slot`` of this worker's shared result buffer and a
    ``("done", worker_id, slot, seq, loss)`` message tells the parent.
    ``None`` shuts the worker down, answering with its accumulated
    primitive-profile counters — and, when the parent traced the fit,
    its ``repro.obs`` span events — so the parent can keep
    ``FitResult.primitive_seconds`` and the merged trace truthful.
    """
    apply_blas_thread_limit(init["blas_threads"])
    worker_id = init["worker_id"]
    users_tbl = SharedNDArray.attach(init["user_spec"])
    items_tbl = SharedNDArray.attach(init["item_spec"])
    grads_tbl = SharedNDArray.attach(init["grad_spec"])
    enable_primitive_profiling(bool(init["profile"]))
    if init.get("trace"):
        enable_tracing(True)
        set_process_label(f"train-worker-{worker_id}")
    stack = ExitStack()
    if init["backend"]:
        stack.enter_context(use_backend(init["backend"]))
    try:
        while True:
            task = task_queue.get()
            if task is None:
                result_queue.put(("profile", worker_id,
                                  primitive_profile(), drain_events()))
                break
            slot, seq, users, pos, neg = task
            try:
                with span("train.stale_batch", seq=seq, worker=worker_id):
                    su = users_tbl.array
                    si = items_tbl.array
                    loss, gu, gp, gn = stale_batch_grads(
                        su[users], si[pos], si[neg], init["reg_weight"])
                    buf = grads_tbl.array[slot]
                    n = users.shape[0]
                    buf[0, :n] = gu
                    buf[1, :n] = gp
                    buf[2, :n] = gn
                result_queue.put(("done", worker_id, slot, seq, loss))
            except Exception:  # noqa: BLE001 — surfaced in the parent
                result_queue.put(("error", worker_id, slot, seq,
                                  _traceback.format_exc()))
    finally:
        stack.close()
        users_tbl.close()
        items_tbl.close()
        grads_tbl.close()


class StaleGradientPool:
    """N persistent spawn workers computing stale-window gradients.

    Lifecycle: the trainer creates one pool per fit (tables sized to the
    model), calls :meth:`push_tables` after each propagation refresh,
    iterates :meth:`run_window` per stale window, and :meth:`close`\\ s
    the pool at the end of the fit — which returns the workers' merged
    primitive-profile counters.  ``ordered=True`` (the default) applies
    in batch order (bit-identical to the in-process schedule);
    ``ordered=False`` is the opt-in completion-order mode.
    """

    def __init__(self, workers: int, num_users: int, num_items: int,
                 dim: int, dtype, batch_size: int, max_window: int,
                 reg_weight: float, backend: Optional[str] = None,
                 profile: bool = False, trace: bool = False):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        ctx = multiprocessing.get_context(MP_START_METHOD)
        self.workers = workers
        self.batch_size = batch_size
        slots = max(1, math.ceil(max(1, max_window) / workers))
        self._user = SharedNDArray.create((num_users, dim), dtype)
        self._item = SharedNDArray.create((num_items, dim), dtype)
        self._grads = [SharedNDArray.create((slots, 3, batch_size, dim),
                                            dtype)
                       for _ in range(workers)]
        self._tasks = [ctx.Queue() for _ in range(workers)]
        self._results = ctx.Queue()
        self._procs: List = []
        self._closed = False
        blas = blas_thread_budget(workers)
        # env set before start(): spawned children import numpy under it
        with blas_thread_limit(blas):
            for w in range(workers):
                init = {"worker_id": w,
                        "user_spec": self._user.spec(),
                        "item_spec": self._item.spec(),
                        "grad_spec": self._grads[w].spec(),
                        "reg_weight": reg_weight,
                        "backend": backend,
                        "profile": profile,
                        "trace": trace,
                        "blas_threads": blas}
                proc = ctx.Process(target=_worker_main,
                                   args=(init, self._tasks[w],
                                         self._results),
                                   daemon=True)
                proc.start()
                self._procs.append(proc)

    # ------------------------------------------------------------------ #
    def push_tables(self, stale_users: np.ndarray,
                    stale_items: np.ndarray) -> None:
        """Overwrite the shared frozen tables (between windows only)."""
        self._user.array[...] = stale_users
        self._item.array[...] = stale_items

    def _next_message(self):
        msg = self._results.get(timeout=_WORKER_TIMEOUT)
        if msg[0] == "error":
            _, worker_id, _, seq, trace = msg
            raise RuntimeError(
                f"training worker {worker_id} failed on batch {seq}:\n"
                f"{trace}")
        return msg

    def run_window(self, batches: Sequence[Batch], ordered: bool = True
                   ) -> Iterator[Update]:
        """Fan one stale window out and yield applicable updates.

        Dealing is round-robin by batch position (deterministic); the
        generator is also the window barrier — it is exhausted only
        after every worker reported, so the caller may refresh the
        shared tables right after the loop.
        """
        for seq, (users, pos, neg) in enumerate(batches):
            worker = seq % self.workers
            slot = seq // self.workers
            self._tasks[worker].put((slot, seq, users, pos, neg))
        pending = len(batches)
        if ordered:
            done = {}
            for _ in range(pending):
                _, worker_id, slot, seq, loss = self._next_message()
                done[seq] = (worker_id, slot, loss)
            for seq in sorted(done):
                worker_id, slot, loss = done[seq]
                yield self._update(batches, seq, worker_id, slot, loss)
        else:
            # completion order: apply while the other workers still run
            for _ in range(pending):
                _, worker_id, slot, seq, loss = self._next_message()
                yield self._update(batches, seq, worker_id, slot, loss)

    def _update(self, batches: Sequence[Batch], seq: int, worker_id: int,
                slot: int, loss: float) -> Update:
        users, pos, neg = batches[seq]
        n = users.shape[0]
        buf = self._grads[worker_id].array[slot]
        return (users, pos, neg, loss,
                buf[0, :n], buf[1, :n], buf[2, :n])

    # ------------------------------------------------------------------ #
    def close(self) -> Dict[str, Dict[str, float]]:
        """Shut workers down; return their merged primitive profile.

        Idempotent (later calls return ``{}``), and safe mid-crash: dead
        workers are skipped, stragglers terminated.  Each worker's
        shutdown message also carries its drained ``repro.obs`` trace
        events (empty unless the fit was traced); they are absorbed into
        this process's trace buffer here — the idempotence is what makes
        the cross-process merge exactly-once, crash or no crash.
        """
        if self._closed:
            return {}
        self._closed = True
        merged: Dict[str, Dict[str, float]] = {}
        for queue in self._tasks:
            try:
                queue.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        collected = 0
        while collected < len(self._procs):
            try:
                msg = self._results.get(timeout=10.0)
            except Exception:  # worker died without reporting
                break
            if msg[0] != "profile":
                continue  # leftover window messages from a crashed run
            collected += 1
            for name, entry in msg[2].items():
                into = merged.setdefault(name,
                                         {"calls": 0, "seconds": 0.0})
                into["calls"] += entry.get("calls", 0)
                into["seconds"] += entry.get("seconds", 0.0)
            if len(msg) > 3 and msg[3]:
                absorb_events(msg[3])
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)
        for queue in self._tasks + [self._results]:
            queue.close()
            queue.join_thread()
        for shared in [self._user, self._item] + self._grads:
            shared.close()
        return merged

    def __del__(self):  # best-effort cleanup; never leak processes/shm
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
