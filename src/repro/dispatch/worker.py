"""The dispatch worker: a daemon loop that claims and runs queue cells.

One worker is one process — started as ``repro worker <sweep_dir>`` on
any machine that mounts the sweep directory, or in-process for tests via
:meth:`DispatchWorker.run`.  The loop is deliberately dumb: claim the
next runnable task from the broker, execute it through its registered
kind (:mod:`repro.dispatch.dag`), ack the outcome, repeat.  All
scheduling intelligence (dependency gating, retries, lease reaping,
dead-lettering) lives in the broker, so adding workers never adds
coordination state.

Liveness is a single signal: the per-epoch run-directory heartbeat
(:func:`repro.api.rundir.write_heartbeat`) drives a listener that renews
the worker's queue lease — a worker that stops making training progress
stops renewing, its lease goes stale on both the wall and broker
clocks, and the reaper hands the cell to someone else.  Between epochs
(and for non-experiment kinds) the worker also renews on its own poll
ticks.

Crash-safety of the work itself is idempotence: before running an
experiment cell the worker checks whether the run directory already
validates as complete for the task's spec (a previous owner finished
but died before acking) and, if so, acks the persisted summary without
re-training; a half-written directory from a killed owner is cleared
and re-run from scratch, so retried cells produce byte-identical run
directories (``run_dir_fingerprint``-certified in the chaos tests).
"""

from __future__ import annotations

import os
import shutil
import socket
import time
import traceback as _traceback
from typing import Dict, Optional

from ..api.experiment import RunResult
from ..api.rundir import (add_heartbeat_listener, remove_heartbeat_listener,
                          run_dir_is_complete)
from ..obs import counter, set_process_label, span
from .dag import resolve_artifacts, task_kinds
from .queue import DEFAULT_LEASE_TTL, QueueBroker

#: seconds between queue scans when nothing is claimable
DEFAULT_POLL_INTERVAL = 0.5


def default_worker_id() -> str:
    """A globally-unique worker identity: ``<host>:<pid>``."""
    return f"{socket.gethostname()}:{os.getpid()}"


class DispatchWorker:
    """Claim-and-run daemon for one sweep directory's dispatch queue.

    Parameters
    ----------
    sweep_dir:
        The sweep directory holding the queue (and receiving run dirs).
    worker_id:
        Identity stamped into leases; defaults to ``<host>:<pid>``.
    lease_ttl:
        Seconds a lease stays valid without renewal.  Must exceed the
        slowest epoch of the cells being run (renewal is per-epoch).
    drain_when_empty:
        When true, the worker exits once the queue settles (nothing
        pending or leased) instead of polling forever — the mode batch
        launchers use so a finished sweep reaps its own workers.
    poll_interval:
        Seconds between scans when nothing is claimable.
    max_tasks:
        Optional cap on tasks executed before returning (tests).
    """

    def __init__(self, sweep_dir: str, worker_id: Optional[str] = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 drain_when_empty: bool = False,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 max_tasks: Optional[int] = None):
        self.broker = QueueBroker(sweep_dir)
        self.sweep_dir = sweep_dir
        self.worker_id = worker_id or default_worker_id()
        self.lease_ttl = float(lease_ttl)
        self.drain_when_empty = bool(drain_when_empty)
        self.poll_interval = float(poll_interval)
        self.max_tasks = max_tasks
        self.tasks_run = 0
        #: per-process dataset cache shared across this worker's
        #: experiment cells (same contract as the sweep pool workers)
        self._dataset_cache: Dict = {}
        self._current: Optional[str] = None     # cell being executed

    # ------------------------------------------------------------------ #

    def _on_heartbeat(self, run_dir: str, epoch: Optional[int]) -> None:
        """Heartbeat listener: renew the lease of the cell being run.

        Filtered to the current task's run directory so heartbeats from
        unrelated in-process runs (tests, nested tooling) don't renew
        leases they don't own.
        """
        name = self._current
        if name is None:
            return
        if os.path.abspath(run_dir) != os.path.abspath(
                os.path.join(self.sweep_dir, name)):
            return
        self.broker.renew(name, self.worker_id)

    def run_dir_for(self, name: str) -> str:
        """The run directory a dispatched cell writes: ``<sweep>/<name>``."""
        return os.path.join(self.sweep_dir, name)

    # ------------------------------------------------------------------ #

    def run(self) -> int:
        """The daemon loop; returns the number of tasks executed.

        Exits when the drain sentinel appears, when ``drain_when_empty``
        is set and the queue settles, or when ``max_tasks`` is reached.
        """
        set_process_label(f"dispatch-worker {self.worker_id}")
        listener = add_heartbeat_listener(self._on_heartbeat)
        try:
            while True:
                if self.broker.drain_requested():
                    return self.tasks_run
                if self.max_tasks is not None \
                        and self.tasks_run >= self.max_tasks:
                    return self.tasks_run
                task = self.broker.claim(self.worker_id,
                                         ttl=self.lease_ttl)
                if task is None:
                    if self.drain_when_empty and self.broker.settled():
                        return self.tasks_run
                    time.sleep(self.poll_interval)
                    continue
                self.execute(task)
                self.tasks_run += 1
        finally:
            remove_heartbeat_listener(listener)

    def execute(self, task: Dict) -> None:
        """Run one claimed task and ack its outcome to the broker.

        Every exception path ends in an ack: either ``ack_done`` with
        the (possibly failed-status) result summary, or ``ack_failed``
        routing the cell through retry/dead-letter.  A cell whose
        summary says ``failed`` is acked *failed* — the run directory
        keeps the failure record, but the queue retries it, which is
        the whole point of dispatching.
        """
        name = task["name"]
        self._current = name
        try:
            with span("dispatch.task", cell=name, kind=task["kind"],
                      worker=self.worker_id):
                summary = self._execute_inner(task)
        except Exception as exc:        # noqa: BLE001 — worker isolation
            counter("dispatch.task_errors",
                    help="task executions that raised in the worker").inc()
            self._ack(name, failed=True,
                      error=f"{type(exc).__name__}: {exc}",
                      traceback_text=_traceback.format_exc())
            return
        finally:
            self._current = None
        if summary.get("status") == "failed":
            self._ack(name, failed=True,
                      error=summary.get("error") or "failed",
                      traceback_text=summary.get("traceback"))
        else:
            self._ack(name, summary=summary)

    def _ack(self, name: str, summary: Optional[Dict] = None,
             failed: bool = False, error: Optional[str] = None,
             traceback_text: Optional[str] = None) -> None:
        """Ack an outcome, tolerating a lease lost to the reaper.

        If a cell outlived its lease (no heartbeat renewals — e.g. a
        long non-experiment task), the reaper may have re-routed it
        before this ack lands; the work is then re-run elsewhere, which
        is safe because execution is idempotent (completed run dirs are
        adopted, not re-trained).
        """
        try:
            if failed:
                self.broker.ack_failed(name, error or "failed",
                                       traceback_text)
            else:
                self.broker.ack_done(name, summary)
        except KeyError:
            counter("dispatch.lost_leases",
                    help="acks dropped because the lease was reaped "
                    "mid-task").inc()

    def _execute_inner(self, task: Dict) -> Dict:
        """Dispatch to the task kind's executor; returns its summary."""
        executor = task_kinds().get(task["kind"])
        payload = resolve_artifacts(self.broker, task["payload"])
        run_dir = self.run_dir_for(task["name"])
        if task["kind"] == "experiment":
            return self._run_experiment(payload, run_dir)
        os.makedirs(run_dir, exist_ok=True)
        return executor(payload, run_dir)

    def _run_experiment(self, spec_dict: Dict, run_dir: str) -> Dict:
        """Run (or adopt) one experiment cell in its run directory.

        Adoption first: a directory that already validates as complete
        for this spec came from a previous owner that finished the
        work but died before acking — re-acking its persisted summary
        preserves both the result and the bit-identical fingerprint.
        Anything else on disk is a half-written remnant and is cleared
        so the re-run starts from a clean claim, exactly like the sweep
        engine's resume path.
        """
        if os.path.isdir(run_dir):
            if run_dir_is_complete(run_dir, spec_dict):
                counter("dispatch.adoptions",
                        help="completed run dirs adopted without "
                        "re-running").inc()
                return RunResult.load(run_dir).summary()
            shutil.rmtree(run_dir)
        os.makedirs(run_dir)
        executor = task_kinds().get("experiment")
        return executor(spec_dict, run_dir)
