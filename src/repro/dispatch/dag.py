"""Task kinds, artifact hand-offs and pipeline validation for dispatch.

Dispatched cells are not limited to experiment runs: a queue can hold a
small DAG — train a model, publish its serving snapshot, evaluate the
snapshot — where each stage declares the cells it runs ``after`` and
consumes their outputs by **artifact reference**:

``"@artifact:<cell>:<role>"``
    Resolved (just before execution, when every dependency is already
    ``done``) to the path the upstream cell recorded under ``role`` in
    the ``artifacts`` dict of its done-record result summary.  The done
    records in the queue are therefore the hand-off channel: no side
    files, no coordinator in the loop.

Task *kinds* are plugged in through the ``dispatch_task`` component
registry (:func:`repro.utils.registry.component_registry`); an executor
takes ``(payload, run_dir)`` and returns a JSON-compatible result
summary with at least a ``status`` key.  Three kinds ship by default:

``experiment``
    The sweep engine's unchanged unit of work: the payload is a plain
    :class:`~repro.api.ExperimentSpec` dict, run through
    :func:`repro.api.run_cell` (never raises; writes the run directory
    exactly as a local sweep would).
``snapshot``
    Publish an upstream training run's serving snapshot to a stable
    ``path``: the source snapshot is load-validated
    (:func:`repro.serve.load_snapshot`) before the copy, so a corrupt
    artifact fails this stage instead of every consumer after it.
``serving_eval``
    Serve top-k recommendations from a snapshot
    (:func:`repro.api.recommend_topk`) and persist the payload into the
    stage's run directory — the classic closing stage of a
    train -> snapshot -> serve pipeline.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Dict, List, Optional

from ..utils.registry import Registry, component_registry
from .queue import DONE, QueueBroker, TASK_SCHEMA  # noqa: F401 (TASK_SCHEMA
#                                                  re-exported for callers
#                                                  composing raw tasks)

#: prefix of an artifact reference inside a task payload
ARTIFACT_REF_PREFIX = "@artifact:"


def task_kinds() -> Registry:
    """The ``dispatch_task`` component registry (kind -> executor)."""
    return component_registry("dispatch_task")


def parse_artifact_ref(value) -> Optional[Dict[str, str]]:
    """Decode ``"@artifact:<cell>:<role>"``; ``None`` for plain values."""
    if not isinstance(value, str) or not value.startswith(
            ARTIFACT_REF_PREFIX):
        return None
    body = value[len(ARTIFACT_REF_PREFIX):]
    cell, sep, role = body.partition(":")
    if not sep or not cell or not role:
        raise ValueError(
            f"malformed artifact reference {value!r} (expected "
            f"{ARTIFACT_REF_PREFIX}<cell>:<role>)")
    return {"cell": cell, "role": role}


def artifact_refs(payload) -> List[Dict[str, str]]:
    """Every artifact reference anywhere in a (nested) task payload."""
    refs: List[Dict[str, str]] = []
    if isinstance(payload, dict):
        for value in payload.values():
            refs.extend(artifact_refs(value))
    elif isinstance(payload, (list, tuple)):
        for value in payload:
            refs.extend(artifact_refs(value))
    else:
        ref = parse_artifact_ref(payload)
        if ref is not None:
            refs.append(ref)
    return refs


def resolve_artifacts(broker: QueueBroker, payload):
    """Substitute every artifact reference from the queue's done records.

    Returns a deep copy of ``payload`` with each
    ``@artifact:<cell>:<role>`` string replaced by the artifact path the
    named cell published.  Raises ``KeyError`` when the upstream cell is
    not done or published no such role — callers run this only after
    dependency gating, so hitting that error means the task's ``after``
    list was missing the producer (a pipeline authoring bug worth
    failing loudly on).
    """
    if isinstance(payload, dict):
        return {key: resolve_artifacts(broker, value)
                for key, value in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [resolve_artifacts(broker, value) for value in payload]
    ref = parse_artifact_ref(payload)
    if ref is None:
        return payload
    record = broker.read_task(DONE, ref["cell"])
    if record is None:
        raise KeyError(
            f"artifact reference {payload!r}: cell {ref['cell']!r} has no "
            "done record (is it missing from this task's 'after' list?)")
    artifacts = (record.get("result") or {}).get("artifacts") or {}
    if ref["role"] not in artifacts:
        raise KeyError(
            f"artifact reference {payload!r}: cell {ref['cell']!r} "
            f"published no {ref['role']!r} artifact "
            f"(available: {sorted(artifacts)})")
    return artifacts[ref["role"]]


def validate_pipeline(tasks: List[Dict]) -> List[str]:
    """Check a task list forms a runnable DAG; returns a topological order.

    Verifies unique names, registered kinds, ``after`` edges that point
    at tasks in the list (or cells already ``done`` — the caller can
    extend a live queue), artifact references covered by the dependency
    edges, and the absence of cycles.  Raises ``ValueError`` on any
    violation; the error names the offending task.
    """
    by_name: Dict[str, Dict] = {}
    for task in tasks:
        name = task.get("name")
        if task.get("schema") != TASK_SCHEMA:
            raise ValueError(f"task {name!r} is not a {TASK_SCHEMA} task")
        if name in by_name:
            raise ValueError(f"duplicate task name {name!r}")
        if task.get("kind") not in task_kinds():
            raise ValueError(
                f"task {name!r} has unregistered kind {task.get('kind')!r} "
                f"(registered: {task_kinds().names()})")
        by_name[name] = task
    for task in tasks:
        deps = set(task.get("after", ()))
        for dep in deps:
            if dep not in by_name:
                raise ValueError(
                    f"task {task['name']!r} runs after unknown task "
                    f"{dep!r}")
        for ref in artifact_refs(task.get("payload")):
            if ref["cell"] != task["name"] and ref["cell"] not in deps:
                raise ValueError(
                    f"task {task['name']!r} references an artifact of "
                    f"{ref['cell']!r} but does not list it in 'after' — "
                    "the scheduler would not wait for it")
    order: List[str] = []
    state: Dict[str, int] = {}        # 1 = on stack, 2 = finished

    def visit(name: str, chain: List[str]) -> None:
        mark = state.get(name)
        if mark == 2:
            return
        if mark == 1:
            cycle = chain[chain.index(name):] + [name]
            raise ValueError("dependency cycle: " + " -> ".join(cycle))
        state[name] = 1
        for dep in sorted(by_name[name].get("after", ())):
            visit(dep, chain + [name])
        state[name] = 2
        order.append(name)

    for name in sorted(by_name):
        visit(name, [])
    return order


# --------------------------------------------------------------------- #
# built-in task kinds
# --------------------------------------------------------------------- #

def _register_builtin_kinds() -> None:
    """Idempotently register the shipped task kinds (import-time)."""
    registry = task_kinds()
    if "experiment" in registry:
        return

    @registry.register("experiment")
    def _experiment_task(payload: Dict, run_dir: Optional[str]) -> Dict:
        """The sweep engine's unit of work: run one ExperimentSpec dict."""
        from ..api.experiment import run_cell
        return run_cell(dict(payload), run_dir=run_dir)

    @registry.register("snapshot")
    def _snapshot_task(payload: Dict, run_dir: Optional[str]) -> Dict:
        """Publish a validated serving snapshot to a stable path.

        Payload: ``{"source": <path or @artifact ref>, "path": <dest>}``.
        The source is load-validated before copying so corruption fails
        here, not in every downstream consumer.
        """
        from ..serve import load_snapshot
        source = payload["source"]
        dest = payload["path"]
        load_snapshot(source)            # raises on a corrupt snapshot
        os.makedirs(os.path.dirname(os.path.abspath(dest)), exist_ok=True)
        shutil.copyfile(source, dest)
        return {"status": "completed", "error": None,
                "artifacts": {"snapshot": dest},
                "metrics": {}, "source": source}

    @registry.register("serving_eval")
    def _serving_eval_task(payload: Dict, run_dir: Optional[str]) -> Dict:
        """Serve top-k lists from a snapshot; persists them to run_dir.

        Payload: ``{"snapshot": <path or ref>, "users": [...], "k": int,
        "exclude_seen": bool}`` (all but ``snapshot`` optional).
        """
        from ..api.experiment import recommend_topk
        served = recommend_topk(payload["snapshot"],
                                users=payload.get("users"),
                                k=int(payload.get("k", 20)),
                                exclude_seen=bool(
                                    payload.get("exclude_seen", True)))
        artifacts: Dict[str, str] = {}
        if run_dir is not None:
            os.makedirs(run_dir, exist_ok=True)
            path = os.path.join(run_dir, "recommendations.json")
            tmp = path + ".tmp"
            with open(tmp, "w") as handle:
                json.dump(served, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
            artifacts["recommendations"] = path
        return {"status": "completed", "error": None,
                "artifacts": artifacts,
                "metrics": {"num_users": served["num_users"],
                            "k": served["k"]},
                "model": served["model"]}


_register_builtin_kinds()
