"""Cross-machine sweep dispatch over a shared filesystem.

The dispatch subsystem turns a sweep directory into a job queue: a
filesystem broker (:mod:`.queue`) holds cells as atomically-renamed
JSON files under ``<sweep_dir>/queue/``, independent worker processes
(:mod:`.worker`, CLI ``repro worker <sweep_dir>``) on any machine that
mounts the directory claim cells under crash-safe leases, and a
coordinator (:mod:`.coordinator`) merges the finished cells back into
the ordinary ``sweep.json`` manifest and aggregation artifacts.  Cells
can form small DAGs with artifact hand-offs (:mod:`.dag`) — train a
model, publish its snapshot, evaluate the snapshot — gated purely by
done records in the queue.

Quick start::

    from repro.api import ExperimentSpec, expand_grid
    from repro.dispatch import dispatch_sweep

    base = ExperimentSpec(model="biasmf", dataset="tiny",
                          train_config={"epochs": 2})
    results = dispatch_sweep(expand_grid(base, seeds=[0, 1]),
                             "runs/my-sweep", workers=2)

or, cross-machine: :func:`enqueue_sweep` here, ``repro worker
runs/my-sweep`` on every box, then :func:`wait_for_queue` +
:func:`collect_results` anywhere.
"""

from .queue import (DEAD, DEFAULT_LEASE_TTL, DEFAULT_MAX_ATTEMPTS,
                    DEFAULT_RETRY_BACKOFF, DONE, DRAIN_SENTINEL, FAILED,
                    LEASED, PENDING, QUEUE_DIRNAME, STATES, TASK_SCHEMA,
                    QueueBroker, make_task)
from .dag import (ARTIFACT_REF_PREFIX, artifact_refs, parse_artifact_ref,
                  resolve_artifacts, task_kinds, validate_pipeline)
from .worker import DEFAULT_POLL_INTERVAL, DispatchWorker, default_worker_id
from .coordinator import (collect_results, dispatch_report, dispatch_sweep,
                          enqueue_pipeline, enqueue_sweep, launch_worker,
                          wait_for_queue)

__all__ = [
    "QUEUE_DIRNAME", "TASK_SCHEMA", "STATES", "PENDING", "LEASED", "DONE",
    "DEAD", "FAILED", "DRAIN_SENTINEL", "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS", "DEFAULT_RETRY_BACKOFF", "QueueBroker",
    "make_task",
    "ARTIFACT_REF_PREFIX", "parse_artifact_ref", "artifact_refs",
    "resolve_artifacts", "task_kinds", "validate_pipeline",
    "DEFAULT_POLL_INTERVAL", "DispatchWorker", "default_worker_id",
    "enqueue_sweep", "enqueue_pipeline", "wait_for_queue",
    "collect_results", "dispatch_report", "launch_worker",
    "dispatch_sweep",
]
