"""Sweep-level dispatch: enqueue grids, launch workers, merge results.

This module is the bridge between the broker (:mod:`.queue`) and the
existing sweep surface (:mod:`repro.api.sweep`): a dispatched sweep
uses the *same* cell names, run-directory layout, ``sweep.json``
manifest and aggregation artifacts as a local :func:`repro.api.run_sweep`
— only the execution engine differs.  That equivalence is not
aspirational: the chaos tests certify a dispatched sweep's run
directories bit-identical (``run_dir_fingerprint``) to the sequential
baseline, SIGKILLed workers and all.

Typical shapes::

    # one-call local convenience: queue + N subprocess workers + merge
    results = dispatch_sweep(specs, sweep_dir, workers=2)

    # cross-machine: enqueue here, run `repro worker <dir>` anywhere
    enqueue_sweep(specs, sweep_dir)
    ... workers claim cells over the shared filesystem ...
    wait_for_queue(sweep_dir)
    results = collect_results(sweep_dir)

    # heterogeneous DAGs (train -> snapshot -> serving eval)
    enqueue_pipeline(tasks, sweep_dir)
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from typing import Dict, Iterable, List, Optional

from ..api.experiment import RunResult
from ..api.rundir import (STATUS_FAILED, read_status, write_failed_run_dir)
from ..api.sweep import (SweepReport, aggregate_results, assign_cell_names,
                         merge_sweep_manifest, read_sweep_manifest)
from ..api.spec import ExperimentSpec
from ..obs import span
from .dag import validate_pipeline
from .queue import (DEAD, DEFAULT_LEASE_TTL, DEFAULT_MAX_ATTEMPTS,
                    DEFAULT_RETRY_BACKOFF, DONE, QueueBroker, make_task)


def enqueue_sweep(specs: Iterable, sweep_dir: str,
                  max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                  retry_backoff: float = DEFAULT_RETRY_BACKOFF
                  ) -> List[str]:
    """Queue a grid of experiment specs for dispatch; returns cell names.

    Cell names come from the sweep engine's own
    :func:`~repro.api.sweep.assign_cell_names` (collision suffixes and
    all) and the cells are recorded as ``pending`` in the ordinary
    ``sweep.json`` manifest, so status tooling, resume and aggregation
    see a dispatched sweep exactly as they would a local one.
    """
    parsed = [spec if isinstance(spec, ExperimentSpec)
              else ExperimentSpec.from_dict(spec) for spec in specs]
    if not parsed:
        raise ValueError("enqueue_sweep needs at least one spec")
    os.makedirs(sweep_dir, exist_ok=True)
    cells = assign_cell_names(parsed)
    broker = QueueBroker(sweep_dir)
    broker.init_queue()
    with span("dispatch.enqueue_sweep", cells=len(cells)):
        for name, spec in cells:
            broker.enqueue(make_task(name, spec.to_dict(),
                                     kind="experiment",
                                     max_attempts=max_attempts,
                                     retry_backoff=retry_backoff))
        merge_sweep_manifest(
            sweep_dir,
            [{"name": name, "spec": spec.to_dict(),
              "status": "pending", "error": None}
             for name, spec in cells],
            workers=None)
    return [name for name, _ in cells]


def enqueue_pipeline(tasks: List[Dict], sweep_dir: str) -> List[str]:
    """Queue a validated task DAG (see :func:`repro.dispatch.make_task`).

    Validates the DAG first (:func:`~repro.dispatch.dag.validate_pipeline`:
    unique names, known kinds, covered artifact references, no cycles)
    and returns the topological order — purely informational, since the
    broker's dependency gating orders execution at claim time.
    """
    order = validate_pipeline(tasks)
    broker = QueueBroker(sweep_dir)
    broker.init_queue()
    for task in tasks:
        broker.enqueue(task)
    return order


def wait_for_queue(sweep_dir: str, timeout: Optional[float] = None,
                   poll_interval: float = 0.5) -> bool:
    """Block until the queue settles (nothing pending or leased).

    Runs the reaper and the DAG fast-fail sweep on every poll, so a
    sweep whose last worker died still converges: the coordinator
    itself expires the orphaned lease and (once attempts run out)
    dead-letters the cell.  Returns ``True`` when settled, ``False`` on
    timeout.
    """
    broker = QueueBroker(sweep_dir)
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        broker.reap_expired()
        broker.fail_fast_descendants()
        if broker.settled():
            return True
        if deadline is not None and time.monotonic() > deadline:
            return False
        time.sleep(poll_interval)


def collect_results(sweep_dir: str) -> List[RunResult]:
    """Merge a settled queue back into the sweep's canonical records.

    For every experiment cell in the queue: ``done`` records become
    :class:`RunResult` objects straight from their stored summaries,
    and ``dead`` records become failed results — stamping a failure
    record into the cell's run directory when the dead cell left no
    terminal status of its own (e.g. it never got to run because an
    ancestor died).  The ``sweep.json`` manifest statuses are updated
    and :func:`~repro.api.sweep.aggregate_results` writes the usual
    aggregation artifacts, so downstream tooling cannot tell a
    dispatched sweep from a local one.  Non-experiment (pipeline)
    tasks are skipped here — their outcomes live in the queue records.
    """
    broker = QueueBroker(sweep_dir)
    results: List[RunResult] = []
    manifest_cells: List[Dict] = []
    with span("dispatch.collect", sweep_dir=sweep_dir):
        for state in (DONE, DEAD):
            for name in broker.names(state):
                task = broker.read_task(state, name)
                if task is None or task.get("kind") != "experiment":
                    continue
                run_dir = os.path.join(sweep_dir, name)
                if state == DONE:
                    result = RunResult.from_summary(task["result"])
                else:
                    error = task.get("error") or "dead-lettered"
                    status = read_status(run_dir) \
                        if os.path.isdir(run_dir) else None
                    if status is None or status.get("status") not in (
                            STATUS_FAILED,):
                        write_failed_run_dir(run_dir, task["payload"],
                                             error, "")
                    result = RunResult(
                        spec=ExperimentSpec.from_dict(task["payload"]),
                        metrics={}, run_dir=run_dir,
                        status=STATUS_FAILED, error=error)
                results.append(result)
                manifest_cells.append(
                    {"name": name, "spec": task["payload"],
                     "status": result.status, "error": result.error})
        if manifest_cells:
            merge_sweep_manifest(sweep_dir, manifest_cells, workers=None)
    return results


def dispatch_report(sweep_dir: str,
                    metric: Optional[str] = None) -> SweepReport:
    """Aggregate a collected dispatched sweep (results.csv, best cell)."""
    return aggregate_results(sweep_dir, metric=metric)


def launch_worker(sweep_dir: str, worker_id: Optional[str] = None,
                  lease_ttl: float = DEFAULT_LEASE_TTL,
                  drain_when_empty: bool = True,
                  poll_interval: float = 0.25,
                  extra_env: Optional[Dict[str, str]] = None
                  ) -> subprocess.Popen:
    """Start one ``repro worker`` subprocess against ``sweep_dir``.

    The child runs ``python -m repro worker ...`` with ``PYTHONPATH``
    extended so the running ``repro`` package resolves regardless of
    how the parent was launched.  ``extra_env`` merges into the child's
    environment — the chaos tests use it to arm
    ``REPRO_FAULT_KILL_AFTER_EPOCH``.
    """
    import repro
    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (package_root, env.get("PYTHONPATH")) if p)
    if extra_env:
        env.update(extra_env)
    cmd = [sys.executable, "-m", "repro", "worker", sweep_dir,
           "--lease-ttl", str(lease_ttl),
           "--poll-interval", str(poll_interval)]
    if worker_id:
        cmd += ["--worker-id", worker_id]
    if drain_when_empty:
        cmd += ["--drain-when-empty"]
    return subprocess.Popen(cmd, env=env)


def dispatch_sweep(specs: Iterable, sweep_dir: str, workers: int = 1,
                   max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                   lease_ttl: float = DEFAULT_LEASE_TTL,
                   timeout: Optional[float] = None) -> List[RunResult]:
    """One-call dispatched sweep: enqueue, run N local workers, merge.

    The local convenience wrapper over the cross-machine flow — same
    queue, same worker binary (as subprocesses), same merge — used by
    the benchmarks and anywhere a one-machine sweep wants crash-safe
    retries.  Results come back in queue order (done cells first is
    *not* guaranteed; order follows cell names), with dead-lettered
    cells as failed results.
    """
    names = enqueue_sweep(specs, sweep_dir, max_attempts=max_attempts)
    procs = [launch_worker(sweep_dir, worker_id=f"local-{i}",
                           lease_ttl=lease_ttl)
             for i in range(max(1, int(workers)))]
    settled = False
    try:
        settled = wait_for_queue(sweep_dir, timeout=timeout)
    finally:
        for proc in procs:
            if proc.poll() is None and not settled:
                proc.terminate()
        for proc in procs:
            proc.wait(timeout=30)
    if not settled:
        raise TimeoutError(
            f"dispatched sweep did not settle within {timeout}s "
            f"({len(names)} cells)")
    results = collect_results(sweep_dir)
    by_name = {os.path.basename(r.run_dir or ""): r for r in results}
    return [by_name[name] for name in names if name in by_name]
