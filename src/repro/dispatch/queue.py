"""The filesystem broker: a crash-safe work queue under ``<sweep_dir>/queue/``.

Any number of worker processes — on any machine that mounts the sweep
directory — coordinate through nothing but atomically-renamed JSON
files.  There is no server, no socket and no database: the POSIX
guarantees of ``os.rename`` / ``os.replace`` within one filesystem are
the whole synchronization protocol, which is exactly the property that
lets a sweep span hosts that share only an NFS mount.

Broker layout
-------------

::

    <sweep_dir>/queue/
      pending/<cell>.json   # runnable (or dependency-blocked) tasks
      leased/<cell>.json    # claimed by a worker; carries the lease
      done/<cell>.json      # finished tasks + their result summaries
      dead/<cell>.json      # dead-lettered after max_attempts (or an
                            # ancestor's death) — terminal failures
      failed/<cell>.attempt-N.json   # per-attempt failure archive
      DRAIN                 # sentinel: workers exit at the next loop
      .clock                # mtime probe backing broker_now()

Task files carry the ``dispatch-task/v1`` schema: the cell ``name``,
its ``kind`` (resolved through the ``dispatch_task`` component
registry — ``"experiment"`` payloads are plain
:class:`~repro.api.ExperimentSpec` dicts, the sweep engine's existing
wire format), declarative dependencies (``after: [cell names]``),
``attempts`` / ``max_attempts`` retry bookkeeping and, once claimed,
the ``lease``.

State transitions are single atomic renames: claiming a cell is
``pending/x.json -> leased/x.json`` (two racing workers cannot both
win: exactly one ``rename`` succeeds, the loser gets ``FileNotFoundError``
and moves on), completion is a write into ``done/`` followed by
removing the lease file, and a failed attempt either re-enters
``pending/`` (with an attempt count and exponential backoff) or lands
in ``dead/``.

Leases and clocks
-----------------
A claimed task carries a lease: worker id, host, pid, TTL and a
deadline.  The worker renews it from the per-epoch run-directory
heartbeat (:func:`repro.api.rundir.add_heartbeat_listener`), so
proving liveness to the run dir and to the broker are one event.
Staleness is judged on **two clocks** and a lease only expires when
both agree: the wall-clock deadline stamped by the owning worker *and*
the lease file's mtime age measured against :meth:`QueueBroker.broker_now`
— the shared filesystem's own clock, read by touching a probe file.  A
worker whose wall clock is skewed therefore cannot have its lease
stolen while it is still renewing, and a dead worker's lease expires
even if it stamped a deadline far in the future.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

from ..obs import counter, span

#: directory (under the sweep dir) holding the broker state
QUEUE_DIRNAME = "queue"

#: schema stamped on every task file
TASK_SCHEMA = "dispatch-task/v1"

#: the broker's task states (each is a subdirectory of the queue)
PENDING = "pending"
LEASED = "leased"
DONE = "done"
DEAD = "dead"
#: per-attempt failure archive (not a task state: tasks never live here,
#: their attempt post-mortems do)
FAILED = "failed"

STATES = (PENDING, LEASED, DONE, DEAD)

#: drain sentinel file: when present, workers exit at the next loop turn
DRAIN_SENTINEL = "DRAIN"

#: mtime probe file backing :meth:`QueueBroker.broker_now`
CLOCK_PROBE = ".clock"

#: default lease time-to-live (seconds); a worker renews once per epoch
#: via the heartbeat hook, so the TTL only needs to exceed the slowest
#: epoch (plus filesystem attribute-cache lag), not the whole cell
DEFAULT_LEASE_TTL = 60.0

#: default attempt budget before a cell is dead-lettered
DEFAULT_MAX_ATTEMPTS = 3

#: base of the exponential retry backoff: attempt ``n`` re-enters the
#: queue no earlier than ``backoff * 2**(n-1)`` seconds after it failed
DEFAULT_RETRY_BACKOFF = 1.0


_TMP_COUNTER = itertools.count()


def _unique_suffix() -> str:
    """A token no other writer (process *or* thread) can collide with."""
    return f"{os.getpid()}.{threading.get_ident()}.{next(_TMP_COUNTER)}"


def _write_json_atomic(path: str, payload: Dict) -> str:
    """Write JSON via a same-directory temp file + ``os.replace``.

    Readers never observe a torn file, and the replace refreshes the
    destination mtime — which is what the lease-staleness check keys on.
    The temp name embeds a pid/thread/counter token so concurrent
    writers of the same task cannot collide on the intermediate file.
    """
    tmp = f"{path}.{_unique_suffix()}.tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def make_task(name: str, payload: Dict, kind: str = "experiment",
              after: Iterable[str] = (),
              max_attempts: int = DEFAULT_MAX_ATTEMPTS,
              retry_backoff: float = DEFAULT_RETRY_BACKOFF) -> Dict:
    """Build one ``dispatch-task/v1`` payload (not yet enqueued).

    ``payload`` is the kind-specific work description — for the default
    ``"experiment"`` kind, a plain :class:`~repro.api.ExperimentSpec`
    dict (the sweep engine's wire format, unchanged).  ``after`` names
    the cells whose ``done`` records must exist before this one becomes
    claimable; an ancestor that dead-letters fast-fails this task
    instead (see :meth:`QueueBroker.fail_fast_descendants`).
    """
    if int(max_attempts) < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    return {"schema": TASK_SCHEMA, "name": str(name), "kind": str(kind),
            "payload": payload, "after": sorted(set(after)),
            "attempts": 0, "max_attempts": int(max_attempts),
            "retry_backoff": float(retry_backoff), "not_before": None,
            "lease": None, "result": None, "error": None}


class QueueBroker:
    """File-based task broker for one sweep directory (see module docs).

    Every method is safe to call from any process on any machine
    sharing the directory; the broker holds no in-memory state beyond
    paths, so constructing one is free and there is exactly one source
    of truth — the filesystem.
    """

    def __init__(self, sweep_dir: str):
        self.sweep_dir = sweep_dir
        self.queue_dir = os.path.join(sweep_dir, QUEUE_DIRNAME)

    # ------------------------------------------------------------------ #
    # layout + clock
    # ------------------------------------------------------------------ #

    def init_queue(self) -> str:
        """Create the broker layout (idempotent); returns the queue dir."""
        for state in STATES + (FAILED,):
            os.makedirs(os.path.join(self.queue_dir, state), exist_ok=True)
        return self.queue_dir

    def exists(self) -> bool:
        """Whether this sweep directory holds an initialized queue."""
        return os.path.isdir(os.path.join(self.queue_dir, PENDING))

    def _require_queue(self) -> None:
        if not self.exists():
            raise FileNotFoundError(
                f"{self.sweep_dir!r} holds no dispatch queue (expected "
                f"{self.queue_dir!r}; enqueue cells first — see "
                "repro.dispatch.enqueue_sweep)")

    def broker_now(self) -> float:
        """The shared filesystem's clock: mtime of a just-touched probe.

        All workers read the *same* clock regardless of their own
        wall-clock skew, because the timestamp is assigned by the
        filesystem that hosts the queue.  This is the arbiter for lease
        mtime-age and retry ``not_before`` checks.
        """
        probe = os.path.join(self.queue_dir, CLOCK_PROBE)
        with open(probe, "w") as handle:
            handle.write(str(os.getpid()))
        return os.stat(probe).st_mtime

    # ------------------------------------------------------------------ #
    # file plumbing
    # ------------------------------------------------------------------ #

    def _path(self, state: str, name: str) -> str:
        return os.path.join(self.queue_dir, state, f"{name}.json")

    def _read(self, state: str, name: str) -> Optional[Dict]:
        try:
            with open(self._path(state, name)) as handle:
                return json.load(handle)
        except (FileNotFoundError, ValueError):
            # a concurrent rename (or a mid-write reader on a non-POSIX
            # fs) is indistinguishable from absence; callers retry on
            # the next scan
            return None

    def names(self, state: str) -> List[str]:
        """Sorted cell names currently in ``state``."""
        directory = os.path.join(self.queue_dir, state)
        try:
            entries = os.listdir(directory)
        except FileNotFoundError:
            return []
        return sorted(entry[:-len(".json")] for entry in entries
                      if entry.endswith(".json"))

    def read_task(self, state: str, name: str) -> Optional[Dict]:
        """The task payload of ``name`` in ``state`` (None when absent)."""
        return self._read(state, name)

    def find_task(self, name: str) -> Optional[str]:
        """Which state currently holds ``name`` (None when nowhere)."""
        for state in STATES:
            if os.path.exists(self._path(state, name)):
                return state
        return None

    # ------------------------------------------------------------------ #
    # producing
    # ------------------------------------------------------------------ #

    def enqueue(self, task: Dict) -> bool:
        """Add one :func:`make_task` payload to ``pending/``.

        Idempotent by name: a task already present in any state is left
        untouched (re-enqueueing a finished sweep re-runs nothing),
        and the write is atomic, so a worker scanning ``pending/``
        never sees a half-written task.  Returns whether the task was
        actually added.
        """
        if task.get("schema") != TASK_SCHEMA:
            raise ValueError(f"not a {TASK_SCHEMA} task: "
                             f"{task.get('schema')!r}")
        self.init_queue()
        name = task["name"]
        if self.find_task(name) is not None:
            return False
        _write_json_atomic(self._path(PENDING, name), task)
        counter("dispatch.enqueued",
                help="tasks added to dispatch queues").inc()
        return True

    # ------------------------------------------------------------------ #
    # claiming + leases
    # ------------------------------------------------------------------ #

    def deps_done(self, task: Dict) -> bool:
        """Whether every ``after`` dependency has a ``done`` record."""
        return all(os.path.exists(self._path(DONE, dep))
                   for dep in task.get("after", ()))

    def deps_dead(self, task: Dict) -> List[str]:
        """The ``after`` dependencies that have been dead-lettered."""
        return [dep for dep in task.get("after", ())
                if os.path.exists(self._path(DEAD, dep))]

    def claim(self, worker_id: str,
              ttl: float = DEFAULT_LEASE_TTL) -> Optional[Dict]:
        """Claim the next runnable pending task for ``worker_id``.

        Runs the reaper and the DAG fast-fail sweep first (any worker
        may do either — both are idempotent), then scans ``pending/``
        in sorted order and takes the first task whose dependencies are
        all ``done`` and whose retry backoff has elapsed.  The claim
        itself is one atomic rename into ``leased/``; the winner then
        stamps the lease (worker id, host, pid, TTL, deadline).
        Returns the claimed task, or ``None`` when nothing is runnable
        right now.
        """
        self._require_queue()
        with span("dispatch.claim", worker=worker_id):
            self.reap_expired()
            self.fail_fast_descendants()
            now = self.broker_now()
            for name in self.names(PENDING):
                task = self._read(PENDING, name)
                if task is None:
                    continue
                not_before = task.get("not_before")
                if not_before is not None and now < not_before:
                    continue
                if not self.deps_done(task):
                    continue
                try:
                    os.rename(self._path(PENDING, name),
                              self._path(LEASED, name))
                except (FileNotFoundError, OSError):
                    continue        # another worker won the rename race
                task["lease"] = {
                    "worker": worker_id,
                    "host": socket.gethostname(),
                    "pid": os.getpid(),
                    "ttl": float(ttl),
                    "acquired": time.time(),
                    "renewed": time.time(),
                    "deadline": time.time() + float(ttl),
                }
                _write_json_atomic(self._path(LEASED, name), task)
                counter("dispatch.claims",
                        help="queue cells claimed by workers").inc()
                return task
        return None

    def renew(self, name: str, worker_id: str) -> bool:
        """Extend ``name``'s lease (heartbeat-driven); returns success.

        Renewing rewrites the lease file, which both pushes the
        wall-clock deadline out by the lease TTL and refreshes the
        file's mtime — the two clocks the reaper checks.  A renewal by
        anyone but the lease's owner is refused: if the lease was
        already reaped and re-claimed elsewhere, the original worker
        learns (via the ``False`` return) that it lost the cell.
        """
        task = self._read(LEASED, name)
        if task is None or not task.get("lease"):
            return False
        if task["lease"].get("worker") != worker_id:
            return False
        task["lease"]["renewed"] = time.time()
        task["lease"]["deadline"] = time.time() + task["lease"]["ttl"]
        _write_json_atomic(self._path(LEASED, name), task)
        return True

    # ------------------------------------------------------------------ #
    # completion + failure
    # ------------------------------------------------------------------ #

    def ack_done(self, name: str, result: Optional[Dict] = None) -> Dict:
        """Record ``name`` as finished; moves it to ``done/``.

        ``result`` (the cell's JSON result summary —
        :meth:`repro.api.RunResult.summary` for experiment cells) rides
        along in the done record: it is both the audit trail and the
        artifact hand-off channel DAG descendants resolve
        ``@artifact:`` references against.  The done record is written
        *before* the lease file is removed, so a crash between the two
        leaves a duplicate the reaper cleans up — never a lost result.
        """
        task = self._read(LEASED, name) or self._read(PENDING, name)
        if task is None:
            raise KeyError(f"no claimed task {name!r} to complete")
        task["result"] = result
        task["lease"] = None
        _write_json_atomic(self._path(DONE, name), task)
        for state in (LEASED, PENDING):
            try:
                os.unlink(self._path(state, name))
            except FileNotFoundError:
                pass
        counter("dispatch.completions",
                help="queue cells finished successfully").inc()
        return task

    def _take_ownership(self, name: str) -> Optional[Tuple[str, Dict]]:
        """Atomically detach ``name``'s leased/pending file for mutation.

        Renames the task file to a uniquely-suffixed token, so exactly
        one of any number of concurrent failure-routers (a worker acking
        its own cell, reapers in other processes) wins; everyone else
        gets ``None``.  Returns ``(token_path, task)`` for the winner —
        who must remove the token once the replacement state is written.
        """
        for state in (LEASED, PENDING):
            source = self._path(state, name)
            token = f"{source}.{_unique_suffix()}.taken"
            try:
                os.rename(source, token)
            except (FileNotFoundError, OSError):
                continue
            try:
                with open(token) as handle:
                    return token, json.load(handle)
            except (FileNotFoundError, ValueError):
                return None
        return None

    def ack_failed(self, name: str, error: str,
                   traceback_text: Optional[str] = None) -> Dict:
        """Record a failed attempt; retry with backoff or dead-letter.

        The attempt post-mortem is archived under ``failed/`` either
        way.  While attempts remain, the task re-enters ``pending/``
        with ``not_before`` pushed out by the exponential backoff (on
        the broker clock); once ``max_attempts`` is exhausted it moves
        to ``dead/``, where the DAG fast-fail sweep will also kill its
        descendants.  Single-winner: the task file is atomically
        detached first, so a worker acking its own crash and a reaper
        expiring the same lease cannot both count an attempt.  Returns
        the updated task.
        """
        owned = self._take_ownership(name)
        if owned is None:
            raise KeyError(f"no task {name!r} to fail (already "
                           "re-routed by another process?)")
        token, task = owned
        task["attempts"] = int(task.get("attempts", 0)) + 1
        attempt = task["attempts"]
        worker = (task.get("lease") or {}).get("worker")
        task["lease"] = None
        _write_json_atomic(
            os.path.join(self.queue_dir, FAILED,
                         f"{name}.attempt-{attempt}.json"),
            {"name": name, "attempt": attempt, "worker": worker,
             "error": error, "traceback": traceback_text,
             "wall_time": time.time()})
        if attempt >= int(task.get("max_attempts", 1)):
            task["error"] = error
            target = DEAD
            counter("dispatch.dead_letters",
                    help="cells dead-lettered after max_attempts").inc()
        else:
            backoff = float(task.get("retry_backoff",
                                     DEFAULT_RETRY_BACKOFF))
            task["not_before"] = (self.broker_now()
                                  + backoff * 2 ** (attempt - 1))
            task["error"] = None
            target = PENDING
            counter("dispatch.retries",
                    help="failed cells re-queued for another worker").inc()
        _write_json_atomic(self._path(target, name), task)
        try:
            os.unlink(token)
        except FileNotFoundError:
            pass
        return task

    # ------------------------------------------------------------------ #
    # the reaper + DAG fast-fail
    # ------------------------------------------------------------------ #

    def lease_expired(self, task: Dict, now_wall: Optional[float] = None,
                      now_broker: Optional[float] = None,
                      mtime: Optional[float] = None) -> bool:
        """Whether a leased task's lease is stale on *both* clocks.

        Expiry requires (a) the owning worker's own wall-clock deadline
        to have passed and (b) the lease file's mtime — stamped by the
        shared filesystem at the last renewal — to be older than the
        TTL relative to :meth:`broker_now`.  Requiring both means a
        live worker with a skewed clock keeps its lease (its renewals
        keep the mtime fresh), while a dead worker cannot keep one by
        having stamped a generous deadline (its mtime goes stale).
        """
        lease = task.get("lease")
        if not lease:
            # claim in progress: the winner's rename landed but its lease
            # stamp hasn't.  The stamp is milliseconds away, so judge by
            # the file's ctime (which the rename refreshed — its mtime is
            # still the enqueue time) and only call it debris once a full
            # default TTL has passed without the stamp appearing (the
            # claimer died in the window).
            try:
                ctime = os.stat(self._path(LEASED,
                                           task["name"])).st_ctime
            except FileNotFoundError:
                return False
            now_broker = self.broker_now() if now_broker is None \
                else now_broker
            return (now_broker - ctime) > DEFAULT_LEASE_TTL
        if mtime is None:
            try:
                mtime = os.stat(self._path(LEASED, task["name"])).st_mtime
            except FileNotFoundError:
                return False
        now_wall = time.time() if now_wall is None else now_wall
        now_broker = self.broker_now() if now_broker is None else now_broker
        wall_expired = now_wall > float(lease.get("deadline", 0.0))
        mtime_expired = (now_broker - mtime) > float(
            lease.get("ttl", DEFAULT_LEASE_TTL))
        return wall_expired and mtime_expired

    def reap_expired(self) -> List[str]:
        """Expire stale leases back into the retry path; returns names.

        Safe for any process to run at any time: completed duplicates
        (a done record whose lease file survived an ill-timed crash)
        are simply unlinked, and genuinely stale leases go through the
        same attempt-counting retry/dead-letter logic as an ordinary
        failure, with the error naming the worker that went dark.
        """
        reaped = []
        now_wall = time.time()
        now_broker = None
        self._recover_orphaned_tokens()
        for name in self.names(LEASED):
            if os.path.exists(self._path(DONE, name)):
                # crash debris between ack_done's write and unlink
                try:
                    os.unlink(self._path(LEASED, name))
                except FileNotFoundError:
                    pass
                continue
            task = self._read(LEASED, name)
            if task is None:
                continue
            if now_broker is None:
                now_broker = self.broker_now()
            if not self.lease_expired(task, now_wall=now_wall,
                                      now_broker=now_broker):
                continue
            lease = task.get("lease") or {}
            try:
                self.ack_failed(
                    name,
                    f"lease expired: worker {lease.get('worker')!r} "
                    f"(host {lease.get('host')!r}, pid {lease.get('pid')})"
                    " stopped heartbeating")
            except KeyError:
                continue        # a concurrent reaper won the detach race
            counter("dispatch.lease_expirations",
                    help="leases expired by the reaper").inc()
            reaped.append(name)
        return reaped

    def _recover_orphaned_tokens(self) -> None:
        """Restore ``.taken`` detach tokens whose owner died mid-route.

        :meth:`_take_ownership` renames a task file to a token before
        rewriting its state; a router crashing in that (tiny) window
        would otherwise lose the task.  Tokens older than the default
        TTL whose original file never reappeared are renamed back, after
        which ordinary reaping/claiming resumes.
        """
        now_broker = None
        for state in (LEASED, PENDING):
            directory = os.path.join(self.queue_dir, state)
            try:
                entries = os.listdir(directory)
            except FileNotFoundError:
                continue
            for entry in entries:
                if not entry.endswith(".taken"):
                    continue
                token = os.path.join(directory, entry)
                original = os.path.join(
                    directory, entry[:entry.index(".json") + len(".json")])
                try:
                    age_base = os.stat(token).st_ctime
                except FileNotFoundError:
                    continue
                if now_broker is None:
                    now_broker = self.broker_now()
                if (now_broker - age_base) <= DEFAULT_LEASE_TTL:
                    continue
                if os.path.exists(original) or \
                        self.find_task(os.path.basename(original)[:-5]) \
                        is not None:
                    # the route did land somewhere; the token is debris
                    try:
                        os.unlink(token)
                    except FileNotFoundError:
                        pass
                    continue
                try:
                    os.rename(token, original)
                except (FileNotFoundError, OSError):
                    pass

    def fail_fast_descendants(self) -> List[str]:
        """Dead-letter pending tasks whose ancestors are dead; cascades.

        A cell that can never run (an ``after`` dependency dead-
        lettered) is moved straight to ``dead/`` without burning
        attempts, and the sweep repeats until a fixpoint so a whole
        downstream chain fails fast in one call.
        """
        failed = []
        while True:
            progressed = False
            for name in self.names(PENDING):
                task = self._read(PENDING, name)
                if task is None:
                    continue
                dead_deps = self.deps_dead(task)
                if not dead_deps:
                    continue
                task["error"] = ("ancestor dead-lettered: "
                                 + ", ".join(sorted(dead_deps)))
                task["lease"] = None
                _write_json_atomic(self._path(DEAD, name), task)
                try:
                    os.unlink(self._path(PENDING, name))
                except FileNotFoundError:
                    pass
                counter("dispatch.dead_letters",
                        help="cells dead-lettered after max_attempts"
                        ).inc()
                failed.append(name)
                progressed = True
            if not progressed:
                return failed

    # ------------------------------------------------------------------ #
    # drain + status
    # ------------------------------------------------------------------ #

    def drain(self) -> str:
        """Write the drain sentinel: workers exit at their next loop turn."""
        path = os.path.join(self.queue_dir, DRAIN_SENTINEL)
        with open(path, "w") as handle:
            handle.write("drain\n")
        return path

    def drain_requested(self) -> bool:
        """Whether the drain sentinel is present."""
        return os.path.exists(os.path.join(self.queue_dir, DRAIN_SENTINEL))

    def settled(self) -> bool:
        """Whether no work remains in flight (pending and leased empty)."""
        return not self.names(PENDING) and not self.names(LEASED)

    def status(self) -> Dict:
        """One structured snapshot of the whole queue (for sweep-status).

        Returns counts per state plus per-cell detail: lease ages and
        owners, attempt counts, DAG readiness of pending cells (ready /
        blocked-on), and dead-letter errors.  Read-only — the snapshot
        never mutates queue state, so it is safe against a live sweep.
        """
        self._require_queue()
        now_wall = time.time()
        pending, leases, dead = [], [], []
        for name in self.names(PENDING):
            task = self._read(PENDING, name) or {}
            blocked_on = [dep for dep in task.get("after", ())
                          if not os.path.exists(self._path(DONE, dep))]
            not_before = task.get("not_before")
            waiting = (not_before is not None
                       and self.broker_now() < not_before)
            pending.append({"name": name,
                            "attempts": task.get("attempts", 0),
                            "ready": not blocked_on and not waiting,
                            "blocked_on": blocked_on,
                            "backoff_wait": bool(waiting)})
        for name in self.names(LEASED):
            task = self._read(LEASED, name) or {}
            lease = task.get("lease") or {}
            leases.append({"name": name,
                           "worker": lease.get("worker"),
                           "host": lease.get("host"),
                           "pid": lease.get("pid"),
                           "attempts": task.get("attempts", 0),
                           "age_seconds": max(0.0, now_wall
                                              - lease.get("acquired",
                                                          now_wall)),
                           "renewed_seconds_ago":
                               max(0.0, now_wall - lease.get("renewed",
                                                             now_wall)),
                           "ttl": lease.get("ttl")})
        for name in self.names(DEAD):
            task = self._read(DEAD, name) or {}
            dead.append({"name": name,
                         "attempts": task.get("attempts", 0),
                         "error": task.get("error")})
        return {"sweep_dir": self.sweep_dir,
                "counts": {state: len(self.names(state))
                           for state in STATES},
                "drain_requested": self.drain_requested(),
                "pending": pending, "leases": leases, "dead": dead,
                "done": self.names(DONE)}
