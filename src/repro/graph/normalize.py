"""Adjacency normalization for graph message passing.

The paper's mixhop encoder (Sec III-C) uses "a Laplacian-normalized adjacency
matrix with a self-loop, following [LightGCN]", i.e. the symmetric
normalization ``D^{-1/2} (A + I) D^{-1/2}`` over the unified user+item node
set.  Helpers are also provided for the plain LightGCN normalization without
self-loops and for normalizing *weighted* augmented adjacencies from raw edge
weights (used by the learnable augmentor, where the degrees are recomputed
from the current soft edge weights).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp


def symmetric_normalize(adj: sp.spmatrix, add_self_loops: bool = True,
                        eps: float = 1e-12) -> sp.csr_matrix:
    """Return ``D^{-1/2} (A [+ I]) D^{-1/2}`` as CSR."""
    matrix = sp.csr_matrix(adj, dtype=np.float64)
    if add_self_loops:
        matrix = (matrix + sp.identity(matrix.shape[0],
                                       format="csr")).tocsr()
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, eps))
    inv_sqrt[degrees == 0] = 0.0
    scale = sp.diags(inv_sqrt)
    return (scale @ matrix @ scale).tocsr()


def row_normalize(adj: sp.spmatrix, eps: float = 1e-12) -> sp.csr_matrix:
    """Return ``D^{-1} A`` (random-walk normalization)."""
    matrix = sp.csr_matrix(adj, dtype=np.float64)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    inv = 1.0 / np.maximum(degrees, eps)
    inv[degrees == 0] = 0.0
    return (sp.diags(inv) @ matrix).tocsr()


def normalized_edge_weights(rows: np.ndarray, cols: np.ndarray,
                            weights: np.ndarray, num_nodes: int,
                            eps: float = 1e-12) -> np.ndarray:
    """Symmetrically normalize per-edge weights: ``w / sqrt(d_r * d_c)``.

    Degrees are the weighted degrees induced by ``weights`` over the COO
    pattern.  This is how the augmented graphs ``G'``/``G''`` are normalized:
    degrees are computed from the *current* (detached) soft edge weights so
    gradients flow through the edge weights but not the normalizer — see
    DESIGN.md "Detached degree normalization".
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    weights = np.asarray(weights)
    if weights.dtype not in (np.float32, np.float64):
        weights = weights.astype(np.float64)
    degrees = np.zeros(num_nodes, dtype=weights.dtype)
    np.add.at(degrees, rows, weights)
    np.add.at(degrees, cols, weights)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, eps))
    inv_sqrt[degrees <= eps] = 0.0
    return weights * inv_sqrt[rows] * inv_sqrt[cols]


def adjacency_power_apply(norm_adj: sp.csr_matrix, features: np.ndarray,
                          power: int) -> np.ndarray:
    """Compute ``A^m @ X`` iteratively as ``A(A(...(AX)))`` (paper Sec III-E).

    Never materializes ``A^m``, matching the paper's memory argument.
    """
    if power < 0:
        raise ValueError("power must be non-negative")
    out = features
    for _ in range(power):
        out = norm_adj @ out
    return out
