"""``repro.graph`` — sparse bipartite graph substrate.

* :class:`InteractionGraph` — CSR-backed user-item graph and derived blocks.
* Normalization: :func:`symmetric_normalize`, :func:`row_normalize`,
  :func:`normalized_edge_weights`, :func:`adjacency_power_apply`.
* Stochastic augmentation baselines: :func:`edge_dropout`,
  :func:`node_dropout`, :func:`random_walk_subgraph`, :func:`feature_mask`.
* Robustness protocol noise: :func:`inject_fake_edges`.
"""

from .bipartite import InteractionGraph
from .normalize import (symmetric_normalize, row_normalize,
                        normalized_edge_weights, adjacency_power_apply)
from .sampling import (edge_dropout, node_dropout, random_walk_subgraph,
                       feature_mask)
from .noise import inject_fake_edges

__all__ = [
    "InteractionGraph",
    "symmetric_normalize", "row_normalize", "normalized_edge_weights",
    "adjacency_power_apply",
    "edge_dropout", "node_dropout", "random_walk_subgraph", "feature_mask",
    "inject_fake_edges",
]
