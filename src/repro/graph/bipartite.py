"""Bipartite user-item interaction graphs.

The paper works on the graph ``G = (U ∪ V, A)`` with ``I`` users, ``J`` items
and binary adjacency ``A ∈ R^{I×J}`` (Sec II-A).  :class:`InteractionGraph`
stores that matrix in CSR form and exposes the derived objects every model
needs: the symmetric ``(I+J)×(I+J)`` block adjacency, degree vectors and the
COO edge list used by the learnable augmentor.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp


class InteractionGraph:
    """A user-item bipartite graph backed by a ``scipy.sparse`` CSR matrix.

    Parameters
    ----------
    matrix:
        ``(num_users, num_items)`` sparse matrix of interactions.  Values are
        coerced to 1.0 (implicit feedback); zero entries are pruned.
    """

    def __init__(self, matrix: sp.spmatrix):
        csr = sp.csr_matrix(matrix, dtype=np.float64)
        csr.eliminate_zeros()
        csr.data = np.ones_like(csr.data)
        self.matrix = csr
        self.num_users, self.num_items = csr.shape

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(cls, users: np.ndarray, items: np.ndarray,
                   num_users: int, num_items: int) -> "InteractionGraph":
        """Build from parallel arrays of user / item ids."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("users and items must have the same length")
        if len(users) and (users.max() >= num_users or users.min() < 0):
            raise ValueError("user id out of range")
        if len(items) and (items.max() >= num_items or items.min() < 0):
            raise ValueError("item id out of range")
        data = np.ones(len(users))
        matrix = sp.csr_matrix((data, (users, items)),
                               shape=(num_users, num_items))
        return cls(matrix)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.num_users + self.num_items

    @property
    def num_interactions(self) -> int:
        return int(self.matrix.nnz)

    @property
    def density(self) -> float:
        return self.num_interactions / float(self.num_users * self.num_items)

    def user_degrees(self) -> np.ndarray:
        return np.asarray(self.matrix.sum(axis=1)).ravel()

    def item_degrees(self) -> np.ndarray:
        return np.asarray(self.matrix.sum(axis=0)).ravel()

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(user_ids, item_ids)`` COO arrays of all interactions."""
        coo = self.matrix.tocoo()
        return coo.row.astype(np.int64), coo.col.astype(np.int64)

    def has_edge(self, user: int, item: int) -> bool:
        return bool(self.matrix[user, item] != 0)

    def copy(self) -> "InteractionGraph":
        return InteractionGraph(self.matrix.copy())

    def __repr__(self) -> str:
        return (f"InteractionGraph(users={self.num_users}, "
                f"items={self.num_items}, edges={self.num_interactions}, "
                f"density={self.density:.2e})")

    # ------------------------------------------------------------------ #
    # derived matrices
    # ------------------------------------------------------------------ #
    def bipartite_adjacency(self) -> sp.csr_matrix:
        """Symmetric ``(I+J) x (I+J)`` block matrix ``[[0, A], [A^T, 0]]``.

        Users occupy node ids ``0..I-1``; items occupy ``I..I+J-1``.
        """
        upper = sp.hstack([
            sp.csr_matrix((self.num_users, self.num_users)), self.matrix])
        lower = sp.hstack([
            self.matrix.T, sp.csr_matrix((self.num_items, self.num_items))])
        return sp.vstack([upper, lower]).tocsr()

    def item_node_ids(self, items: np.ndarray) -> np.ndarray:
        """Map item ids to their node ids in the unified graph."""
        return np.asarray(items, dtype=np.int64) + self.num_users

    def with_extra_edges(self, users: np.ndarray,
                         items: np.ndarray) -> "InteractionGraph":
        """Return a new graph with additional (possibly fake) edges added."""
        row, col = self.edges()
        new_row = np.concatenate([row, np.asarray(users, dtype=np.int64)])
        new_col = np.concatenate([col, np.asarray(items, dtype=np.int64)])
        return InteractionGraph.from_edges(new_row, new_col,
                                           self.num_users, self.num_items)

    def subgraph_without_edges(self, mask: np.ndarray) -> "InteractionGraph":
        """Drop the edges where ``mask`` is True (mask over COO ordering)."""
        row, col = self.edges()
        keep = ~np.asarray(mask, dtype=bool)
        return InteractionGraph.from_edges(row[keep], col[keep],
                                           self.num_users, self.num_items)
