"""Stochastic structure augmentation operators.

These implement the *baseline* corruption schemes the paper compares against
(SGL's node dropout / edge dropout / random walk, Sec V-B), as opposed to the
learnable GIB-regularized augmentor in :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from .bipartite import InteractionGraph


def edge_dropout(graph: InteractionGraph, rate: float,
                 rng: np.random.Generator) -> InteractionGraph:
    """Drop each interaction independently with probability ``rate``."""
    _check_rate(rate)
    row, col = graph.edges()
    keep = rng.random(len(row)) >= rate
    if not keep.any():  # never return an empty graph
        keep[rng.integers(len(keep))] = True
    return InteractionGraph.from_edges(row[keep], col[keep],
                                       graph.num_users, graph.num_items)


def node_dropout(graph: InteractionGraph, rate: float,
                 rng: np.random.Generator) -> InteractionGraph:
    """Drop all edges incident to a ``rate`` fraction of nodes."""
    _check_rate(rate)
    drop_users = rng.random(graph.num_users) < rate
    drop_items = rng.random(graph.num_items) < rate
    row, col = graph.edges()
    keep = ~(drop_users[row] | drop_items[col])
    if not keep.any():
        keep[rng.integers(len(keep))] = True
    return InteractionGraph.from_edges(row[keep], col[keep],
                                       graph.num_users, graph.num_items)


def random_walk_subgraph(graph: InteractionGraph, rate: float,
                         rng: np.random.Generator,
                         num_layers: int = 2) -> list:
    """Per-layer independent edge dropout (SGL's RW augmentation).

    Returns one dropped graph per propagation layer, so each layer of the
    encoder sees a differently-corrupted structure.
    """
    return [edge_dropout(graph, rate, rng) for _ in range(num_layers)]


def feature_mask(shape: Tuple[int, int], rate: float,
                 rng: np.random.Generator) -> np.ndarray:
    """Bernoulli feature mask used by SLRec-style feature corruption."""
    _check_rate(rate)
    return (rng.random(shape) >= rate).astype(np.float64)


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
