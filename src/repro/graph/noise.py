"""Structural-noise injection for the robustness protocol (paper Fig 3).

The paper compromises the interaction graph "by the introduction of randomly
generated fake edges" at ratios {0.05, ..., 0.25} of the original edge count
and measures the relative drop in Recall@20 / NDCG@20.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .bipartite import InteractionGraph


def inject_fake_edges(graph: InteractionGraph, ratio: float,
                      rng: np.random.Generator,
                      max_tries: int = 50) -> Tuple[InteractionGraph,
                                                    np.ndarray, np.ndarray]:
    """Add ``ratio * |E|`` uniformly random non-existing user-item edges.

    Returns ``(noisy_graph, fake_users, fake_items)`` so callers (and the
    Fig 6 case-study bench) know exactly which edges are noise.
    """
    if ratio < 0:
        raise ValueError("noise ratio must be non-negative")
    target = int(round(ratio * graph.num_interactions))
    if target == 0:
        return graph.copy(), np.empty(0, np.int64), np.empty(0, np.int64)

    existing = set(zip(*graph.edges()))
    fake_users, fake_items = [], []
    tries = 0
    while len(fake_users) < target and tries < max_tries:
        tries += 1
        need = target - len(fake_users)
        cand_u = rng.integers(0, graph.num_users, size=2 * need)
        cand_i = rng.integers(0, graph.num_items, size=2 * need)
        for u, i in zip(cand_u, cand_i):
            pair = (int(u), int(i))
            if pair in existing:
                continue
            existing.add(pair)
            fake_users.append(pair[0])
            fake_items.append(pair[1])
            if len(fake_users) >= target:
                break
    fake_users = np.asarray(fake_users, dtype=np.int64)
    fake_items = np.asarray(fake_items, dtype=np.int64)
    noisy = graph.with_extra_edges(fake_users, fake_items)
    return noisy, fake_users, fake_items
