"""``python -m repro`` — module entry point for the CLI.

Identical to the installed ``repro`` console script (see ``setup.py``):
both dispatch to :func:`repro.cli.main`.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
