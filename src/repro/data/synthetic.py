"""Synthetic implicit-feedback generators standing in for the paper's data.

The paper evaluates on Gowalla, Retail Rocket and Amazon (Table I).  Those
corpora are 50k+ users; this reproduction runs on one CPU core, so we
generate *statistically shaped* miniatures instead:

* a latent-factor ground truth (users/items in ``num_clusters`` interest
  groups) makes preferences learnable, so collaborative-filtering quality
  differences between models are actually measurable;
* user activity and item popularity follow truncated power laws, reproducing
  the long-tail skew that drives the paper's sparsity experiments (Table V);
* a per-profile noise fraction adds preference-incoherent interactions —
  the "misclicks" the paper's denoising story targets;
* profile knobs (user/item counts, mean degree, tail exponent, noise) are
  chosen so the *relative* statistics across the three datasets match
  Table I: Gowalla much denser than Retail Rocket ≈ Amazon, Retail Rocket
  the sparsest per-user, Amazon with more items per user than Retail Rocket.

Everything is deterministic given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .dataset import InteractionDataset
from .splits import holdout_split
from ..graph import InteractionGraph


@dataclass(frozen=True)
class SyntheticProfile:
    """Generator knobs for one paper dataset (scaled-down equivalent)."""

    name: str
    num_users: int
    num_items: int
    mean_degree: float          # mean train+test interactions per user
    power_law_alpha: float      # Pareto tail index for degrees (lower=skewer)
    num_clusters: int           # latent interest groups
    latent_dim: int             # ground-truth factor dimensionality
    noise_fraction: float       # fraction of preference-incoherent edges
    concentration: float        # softmax temperature of preference scores


#: Scaled-down equivalents of Table I.  Relative density ordering matches the
#: paper: gowalla >> amazon ~ retail_rocket; retail_rocket has the fewest
#: interactions per user, amazon the largest item catalogue relative to users.
PROFILES: Dict[str, SyntheticProfile] = {
    "gowalla": SyntheticProfile(
        name="gowalla", num_users=400, num_items=420, mean_degree=18.0,
        power_law_alpha=1.7, num_clusters=32, latent_dim=16,
        noise_fraction=0.15, concentration=3.5),
    "retail_rocket": SyntheticProfile(
        name="retail_rocket", num_users=400, num_items=280, mean_degree=5.0,
        power_law_alpha=1.5, num_clusters=24, latent_dim=16,
        noise_fraction=0.25, concentration=3.0),
    "amazon": SyntheticProfile(
        name="amazon", num_users=400, num_items=330, mean_degree=7.0,
        power_law_alpha=1.6, num_clusters=28, latent_dim=16,
        noise_fraction=0.20, concentration=3.2),
}


def _power_law_degrees(n: int, mean_degree: float, alpha: float,
                       low: int, high: int,
                       rng: np.random.Generator) -> np.ndarray:
    """Draw integer degrees with a Pareto tail, rescaled to ``mean_degree``."""
    raw = (1.0 + rng.pareto(alpha, size=n))
    raw = raw / raw.mean() * mean_degree
    return np.clip(np.round(raw), low, high).astype(np.int64)


def generate_synthetic(profile: SyntheticProfile, seed: int = 0,
                       test_fraction: float = 0.2) -> InteractionDataset:
    """Generate an :class:`InteractionDataset` from ``profile``.

    The generative process:

    1. Draw cluster centres; users get *mixed membership* over two interest
       groups, items a single category; latents are (mixtures of) centres
       plus Gaussian jitter (items tighter than users).
    2. Per user, draw a degree from the truncated power law and sample that
       many distinct items from ``softmax(concentration * u.v + log pop)``
       where ``pop`` is the item popularity propensity (also power-law).
    3. Replace a ``noise_fraction`` of each user's interactions with
       uniformly random items (preference-incoherent misclick noise).
    4. Hold out ``test_fraction`` of each user's interactions as the test
       set (at least one interaction always stays in train).
    """
    rng = np.random.default_rng(seed)
    num_users, num_items = profile.num_users, profile.num_items

    centres = rng.normal(0.0, 1.0, size=(profile.num_clusters,
                                         profile.latent_dim))
    # users have *mixed membership* over two interest groups (real users
    # hold multiple interests — the motivation behind DGCF/DGCL's intent
    # disentanglement); items belong to a single category
    primary = rng.integers(0, profile.num_clusters, size=num_users)
    secondary = rng.integers(0, profile.num_clusters, size=num_users)
    mix = rng.uniform(0.5, 0.9, size=(num_users, 1))
    item_cluster = rng.integers(0, profile.num_clusters, size=num_items)
    user_factors = (mix * centres[primary]
                    + (1.0 - mix) * centres[secondary]
                    + rng.normal(0.0, 0.45,
                                 size=(num_users, profile.latent_dim)))
    item_factors = centres[item_cluster] + rng.normal(
        0.0, 0.30, size=(num_items, profile.latent_dim))
    # normalize rows so the concentration knob has a consistent meaning
    user_factors /= np.linalg.norm(user_factors, axis=1, keepdims=True)
    item_factors /= np.linalg.norm(item_factors, axis=1, keepdims=True)

    popularity = 1.0 + rng.pareto(profile.power_law_alpha, size=num_items)
    log_pop = np.log(popularity / popularity.sum())

    degrees = _power_law_degrees(
        num_users, profile.mean_degree, profile.power_law_alpha,
        low=3, high=max(4, num_items // 2), rng=rng)

    affinity = profile.concentration * (user_factors @ item_factors.T)
    affinity += log_pop[None, :]

    users, items = [], []
    for u in range(num_users):
        logits = affinity[u]
        probs = np.exp(logits - logits.max())
        probs /= probs.sum()
        k = int(degrees[u])
        chosen = rng.choice(num_items, size=k, replace=False, p=probs)
        n_noise = int(round(profile.noise_fraction * k))
        if n_noise:
            # swap a slice for uniformly random items: preference-incoherent
            # misclick noise, the corruption GraphAug's augmentor targets
            noise_items = rng.choice(num_items, size=n_noise, replace=False)
            chosen = np.unique(np.concatenate(
                [chosen[n_noise:], noise_items]))
        users.append(np.full(len(chosen), u, dtype=np.int64))
        items.append(chosen.astype(np.int64))

    all_users = np.concatenate(users)
    all_items = np.concatenate(items)
    full = InteractionGraph.from_edges(all_users, all_items,
                                       num_users, num_items)
    train_graph, test_matrix = holdout_split(full, test_fraction, rng)
    return InteractionDataset(
        name=profile.name, train=train_graph, test_matrix=test_matrix,
        user_factors=user_factors, item_factors=item_factors,
        item_categories=item_cluster)


def load_profile(name: str, seed: int = 0,
                 test_fraction: float = 0.2) -> InteractionDataset:
    """Generate the scaled-down equivalent of a paper dataset by name."""
    if name not in PROFILES:
        raise KeyError(f"unknown dataset profile {name!r}; "
                       f"available: {sorted(PROFILES)}")
    return generate_synthetic(PROFILES[name], seed=seed,
                              test_fraction=test_fraction)


def tiny_dataset(seed: int = 0, num_users: int = 60, num_items: int = 50,
                 mean_degree: float = 8.0) -> InteractionDataset:
    """A very small dataset for unit tests (fast to train on)."""
    profile = SyntheticProfile(
        name="tiny", num_users=num_users, num_items=num_items,
        mean_degree=mean_degree, power_law_alpha=1.8, num_clusters=4,
        latent_dim=8, noise_fraction=0.05, concentration=4.0)
    return generate_synthetic(profile, seed=seed)
