"""``repro.data`` — datasets, synthetic generators, sampling and splits."""

from .dataset import InteractionDataset
from .synthetic import (SyntheticProfile, PROFILES, generate_synthetic,
                        load_profile, tiny_dataset)
from .splits import holdout_split, degree_groups, quantile_groups
from .sampler import BPRSampler, negative_sample_matrix
from .loaders import (save_npz, load_npz, load_tsv, save_tsv,
                      DATASET_REGISTRY, available_datasets, resolve_dataset)
from .preprocess import k_core, compact, popularity_statistics

__all__ = [
    "InteractionDataset",
    "SyntheticProfile", "PROFILES", "generate_synthetic", "load_profile",
    "tiny_dataset",
    "holdout_split", "degree_groups", "quantile_groups",
    "BPRSampler", "negative_sample_matrix",
    "save_npz", "load_npz", "load_tsv", "save_tsv",
    "DATASET_REGISTRY", "available_datasets", "resolve_dataset",
    "k_core", "compact", "popularity_statistics",
]
