"""Train/test splitting utilities."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from ..graph import InteractionGraph


def holdout_split(graph: InteractionGraph, test_fraction: float,
                  rng: np.random.Generator
                  ) -> Tuple[InteractionGraph, sp.csr_matrix]:
    """Per-user random holdout: ``test_fraction`` of each user's edges.

    Every user keeps at least one training interaction; users with a single
    interaction contribute nothing to the test set.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    csr = graph.matrix
    train_u: List[np.ndarray] = []
    train_i: List[np.ndarray] = []
    test_u: List[np.ndarray] = []
    test_i: List[np.ndarray] = []
    for u in range(graph.num_users):
        start, stop = csr.indptr[u:u + 2]
        items = csr.indices[start:stop]
        if len(items) == 0:
            continue
        n_test = int(np.floor(test_fraction * len(items)))
        n_test = min(n_test, len(items) - 1)
        perm = rng.permutation(len(items))
        test_idx, train_idx = perm[:n_test], perm[n_test:]
        train_u.append(np.full(len(train_idx), u, dtype=np.int64))
        train_i.append(items[train_idx])
        if n_test:
            test_u.append(np.full(n_test, u, dtype=np.int64))
            test_i.append(items[test_idx])

    train_graph = InteractionGraph.from_edges(
        np.concatenate(train_u), np.concatenate(train_i),
        graph.num_users, graph.num_items)
    if test_u:
        test_matrix = sp.csr_matrix(
            (np.ones(sum(len(t) for t in test_u)),
             (np.concatenate(test_u), np.concatenate(test_i))),
            shape=(graph.num_users, graph.num_items))
    else:
        test_matrix = sp.csr_matrix((graph.num_users, graph.num_items))
    return train_graph, test_matrix


def degree_groups(degrees: np.ndarray, bounds: Tuple[int, ...] = (10, 20, 30,
                                                                  40, 50)
                  ) -> Dict[str, np.ndarray]:
    """Bucket entities by interaction count, as in Table V.

    ``bounds = (10, 20, 30, 40, 50)`` yields groups labelled ``"0-10"``,
    ``"10-20"``, ..., ``"40-50"``; entities above the last bound fall into
    the final group, matching the paper's five-way split.
    """
    degrees = np.asarray(degrees)
    groups: Dict[str, np.ndarray] = {}
    lower = 0
    for idx, upper in enumerate(bounds):
        label = f"{lower}-{upper}"
        if idx == len(bounds) - 1:
            mask = degrees >= lower  # last bucket absorbs the heavy tail
        else:
            mask = (degrees >= lower) & (degrees < upper)
        groups[label] = np.where(mask)[0]
        lower = upper
    return groups


def quantile_groups(degrees: np.ndarray,
                    num_groups: int = 5) -> Dict[str, np.ndarray]:
    """Equal-population degree buckets (used when datasets are rescaled)."""
    degrees = np.asarray(degrees, dtype=np.float64)
    order = np.argsort(degrees, kind="stable")
    chunks = np.array_split(order, num_groups)
    return {f"q{idx + 1}": np.sort(chunk)
            for idx, chunk in enumerate(chunks)}
