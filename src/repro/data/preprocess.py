"""Dataset preprocessing: k-core filtering and popularity statistics.

The paper's datasets are distributed after standard k-core preprocessing
(every retained user and item has at least k interactions); this module
provides that filter plus the summary statistics the Table-I bench and the
long-tail analyses use.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph import InteractionGraph


def k_core(graph: InteractionGraph, k: int,
           max_rounds: int = 100) -> InteractionGraph:
    """Iteratively drop users/items with fewer than ``k`` interactions.

    Node ids are preserved (rows/columns stay in place, just emptied) so
    downstream id mappings remain valid; use :func:`compact` to re-index.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    current = graph
    for _ in range(max_rounds):
        user_deg = current.user_degrees()
        item_deg = current.item_degrees()
        bad_users = user_deg < k
        bad_items = item_deg < k
        # users/items with zero interactions are vacuously fine
        bad_users &= user_deg > 0
        bad_items &= item_deg > 0
        if not bad_users.any() and not bad_items.any():
            return current
        rows, cols = current.edges()
        keep = ~(bad_users[rows] | bad_items[cols])
        current = InteractionGraph.from_edges(
            rows[keep], cols[keep], current.num_users, current.num_items)
    return current


def compact(graph: InteractionGraph) -> InteractionGraph:
    """Drop empty rows/columns and re-index users/items densely."""
    rows, cols = graph.edges()
    user_ids, new_rows = np.unique(rows, return_inverse=True)
    item_ids, new_cols = np.unique(cols, return_inverse=True)
    return InteractionGraph.from_edges(new_rows, new_cols,
                                       len(user_ids), len(item_ids))


def popularity_statistics(graph: InteractionGraph) -> Dict[str, float]:
    """Long-tail summary: tail share, top-decile share, degree skew."""
    degrees = np.sort(graph.item_degrees())[::-1]
    total = max(degrees.sum(), 1.0)
    top_decile = max(1, len(degrees) // 10)
    tail_half = degrees[len(degrees) // 2:]
    mean = degrees.mean()
    std = degrees.std()
    skew = 0.0
    if std > 0:
        skew = float(np.mean(((degrees - mean) / std) ** 3))
    return {
        "top_decile_share": float(degrees[:top_decile].sum() / total),
        "tail_half_share": float(tail_half.sum() / total),
        "degree_skewness": skew,
        "max_degree": float(degrees[0]) if len(degrees) else 0.0,
        "median_degree": float(np.median(degrees)) if len(degrees)
        else 0.0,
    }
