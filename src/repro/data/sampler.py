"""Pairwise (BPR) triplet sampling.

The paper trains all models with the pairwise schema: triplets
``(u, v+, v-)`` with an observed positive and an unobserved negative
(Sec III-D, Eq 15).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..graph import InteractionGraph


class BPRSampler:
    """Uniform BPR triplet sampler over a training graph.

    Users are drawn proportionally to their interaction counts (equivalently:
    a uniformly random observed edge supplies ``(u, v+)``), then a negative
    is rejection-sampled uniformly from the items the user has not interacted
    with.
    """

    def __init__(self, graph: InteractionGraph, rng: np.random.Generator):
        self.graph = graph
        self.rng = rng
        self._rows, self._cols = graph.edges()
        if len(self._rows) == 0:
            raise ValueError("cannot sample from an empty graph")
        # Per-user positive sets for O(1) negative rejection tests.
        csr = graph.matrix
        self._indptr = csr.indptr
        self._indices = csr.indices

    def _is_positive(self, user: int, item: int) -> bool:
        start, stop = self._indptr[user:user + 2]
        pos = self._indices[start:stop]
        idx = np.searchsorted(pos, item)
        return idx < len(pos) and pos[idx] == item

    def sample(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray,
                                               np.ndarray]:
        """Return arrays ``(users, pos_items, neg_items)`` of the batch."""
        edge_idx = self.rng.integers(0, len(self._rows), size=batch_size)
        users = self._rows[edge_idx]
        pos = self._cols[edge_idx]
        neg = self.rng.integers(0, self.graph.num_items, size=batch_size)
        for i in range(batch_size):
            tries = 0
            while self._is_positive(users[i], neg[i]) and tries < 50:
                neg[i] = self.rng.integers(0, self.graph.num_items)
                tries += 1
        return users, pos, neg

    def epoch_batches(self, batch_size: int,
                      num_batches: int) -> Iterator[Tuple[np.ndarray,
                                                          np.ndarray,
                                                          np.ndarray]]:
        for _ in range(num_batches):
            yield self.sample(batch_size)


def negative_sample_matrix(graph: InteractionGraph, users: np.ndarray,
                           num_negatives: int,
                           rng: np.random.Generator) -> np.ndarray:
    """Sample ``num_negatives`` non-interacted items per user (with retry)."""
    out = np.empty((len(users), num_negatives), dtype=np.int64)
    csr = graph.matrix
    for row, user in enumerate(users):
        start, stop = csr.indptr[user:user + 2]
        positives = set(csr.indices[start:stop].tolist())
        drawn = []
        while len(drawn) < num_negatives:
            cand = int(rng.integers(0, graph.num_items))
            if cand not in positives:
                drawn.append(cand)
        out[row] = drawn
    return out
