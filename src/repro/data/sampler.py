"""Pairwise (BPR) triplet sampling.

The paper trains all models with the pairwise schema: triplets
``(u, v+, v-)`` with an observed positive and an unobserved negative
(Sec III-D, Eq 15).

Negative sampling is fully vectorized: every batch is drawn as whole
numpy arrays and only the still-colliding subset is redrawn each
rejection round.  Membership tests use a sorted array of encoded edges
(``user * num_items + item``), so a batch test is one ``searchsorted``
instead of ``batch_size`` Python-level probes.
"""

from __future__ import annotations

import warnings
from typing import Iterator, Tuple

import numpy as np

from ..graph import InteractionGraph

#: whole-batch rejection rounds before falling back to explicit
#: complement sampling (the seed code capped per-sample tries at 50)
MAX_REJECTION_ROUNDS = 50


def _ensure_sorted_indices(csr) -> None:
    """Canonicalize CSR column order in place.

    scipy does not guarantee ``indices`` are sorted within each row (e.g.
    after transposes or hand-built constructors), and ``np.searchsorted``
    on an unsorted row silently returns garbage — a true positive could
    pass the rejection test and leak into the loss as a "negative".
    """
    if not csr.has_sorted_indices:
        csr.sort_indices()


def _edge_keys(graph: InteractionGraph) -> np.ndarray:
    """Sorted int64 keys ``user * num_items + item`` of all observed edges."""
    csr = graph.matrix
    _ensure_sorted_indices(csr)
    counts = np.diff(csr.indptr)
    rows = np.repeat(np.arange(graph.num_users, dtype=np.int64), counts)
    keys = rows * np.int64(graph.num_items) + csr.indices.astype(np.int64)
    # row-major CSR traversal with sorted indices is already ascending
    return keys


def _membership(keys: np.ndarray, users: np.ndarray, items: np.ndarray,
                num_items: int) -> np.ndarray:
    """Vectorized ``(user, item) in edges`` test against sorted keys."""
    queries = users.astype(np.int64) * np.int64(num_items) + items
    idx = np.searchsorted(keys, queries)
    hit = idx < len(keys)
    out = np.zeros(len(queries), dtype=bool)
    out[hit] = keys[idx[hit]] == queries[hit]
    return out


def _rejection_sample(keys: np.ndarray, users: np.ndarray, num_items: int,
                      rng: np.random.Generator,
                      max_rounds: int) -> Tuple[np.ndarray, np.ndarray]:
    """Whole-batch rejection sampling of one candidate item per slot.

    Draws uniformly, then redraws only the still-colliding subset each
    round.  Returns ``(draws, pending)`` where ``pending`` indexes the
    slots that still collide after ``max_rounds`` (the caller decides the
    saturation policy: explicit complement sampling, keep, or raise).
    """
    draws = rng.integers(0, num_items, size=len(users))
    pending = np.flatnonzero(_membership(keys, users, draws, num_items))
    rounds = 0
    while pending.size and rounds < max_rounds:
        redraw = rng.integers(0, num_items, size=pending.size)
        draws[pending] = redraw
        still = _membership(keys, users[pending], redraw, num_items)
        pending = pending[still]
        rounds += 1
    return draws, pending


def _complement_negatives(csr, user: int, num_items: int,
                          size: int, rng: np.random.Generator) -> np.ndarray:
    """Draw uniformly from the explicit complement of one user's positives.

    Returns an empty array when the user has interacted with every item
    (no valid negative exists).
    """
    start, stop = csr.indptr[user], csr.indptr[user + 1]
    complement = np.setdiff1d(np.arange(num_items, dtype=np.int64),
                              csr.indices[start:stop].astype(np.int64),
                              assume_unique=True)
    if complement.size == 0:
        return complement
    return complement[rng.integers(0, complement.size, size=size)]


class BPRSampler:
    """Uniform BPR triplet sampler over a training graph.

    Users are drawn proportionally to their interaction counts (equivalently:
    a uniformly random observed edge supplies ``(u, v+)``), then negatives
    are rejection-sampled uniformly — whole batches at a time — from the
    items the user has not interacted with.
    """

    def __init__(self, graph: InteractionGraph, rng: np.random.Generator):
        self.graph = graph
        self.rng = rng
        _ensure_sorted_indices(graph.matrix)
        self._rows, self._cols = graph.edges()
        if len(self._rows) == 0:
            raise ValueError("cannot sample from an empty graph")
        csr = graph.matrix
        self._indptr = csr.indptr
        self._indices = csr.indices
        self._keys = _edge_keys(graph)
        self._warned_saturated = False

    def _is_positive(self, user: int, item: int) -> bool:
        start, stop = self._indptr[user:user + 2]
        pos = self._indices[start:stop]
        idx = np.searchsorted(pos, item)
        return idx < len(pos) and pos[idx] == item

    def _sample_negatives(self, users: np.ndarray) -> np.ndarray:
        """Whole-batch rejection sampling of one negative per user."""
        num_items = self.graph.num_items
        neg, pending = _rejection_sample(self._keys, users, num_items,
                                         self.rng, MAX_REJECTION_ROUNDS)
        for i in pending:
            drawn = _complement_negatives(self.graph.matrix, int(users[i]),
                                          num_items, 1, self.rng)
            if drawn.size:
                neg[i] = drawn[0]
            elif not self._warned_saturated:
                # no valid negative exists; keep the (positive) draw so an
                # epoch cannot crash, but say so — unlike
                # negative_sample_matrix, which raises for this condition
                self._warned_saturated = True
                warnings.warn(
                    f"user {int(users[i])} has interacted with every item; "
                    "emitting a positive as its BPR negative", RuntimeWarning)
        return neg

    def sample(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray,
                                               np.ndarray]:
        """Return arrays ``(users, pos_items, neg_items)`` of the batch."""
        edge_idx = self.rng.integers(0, len(self._rows), size=batch_size)
        users = self._rows[edge_idx]
        pos = self._cols[edge_idx]
        neg = self._sample_negatives(users)
        return users, pos, neg

    def epoch_batches(self, batch_size: int,
                      num_batches: int) -> Iterator[Tuple[np.ndarray,
                                                          np.ndarray,
                                                          np.ndarray]]:
        for _ in range(num_batches):
            yield self.sample(batch_size)


def negative_sample_matrix(graph: InteractionGraph, users: np.ndarray,
                           num_negatives: int,
                           rng: np.random.Generator,
                           max_rounds: int = MAX_REJECTION_ROUNDS
                           ) -> np.ndarray:
    """Sample ``num_negatives`` non-interacted items per user.

    All ``len(users) * num_negatives`` candidates are drawn and
    rejection-tested as one flat batch; only colliding slots are redrawn.
    After ``max_rounds`` rounds the remaining slots are filled by explicit
    complement sampling, so a user who has interacted with nearly every
    item cannot stall the loop.  A user with *no* non-interacted item at
    all raises ``ValueError`` (the seed code looped forever).
    """
    users = np.asarray(users, dtype=np.int64)
    num_items = graph.num_items
    keys = _edge_keys(graph)
    flat_users = np.repeat(users, num_negatives)
    flat, pending = _rejection_sample(keys, flat_users, num_items, rng,
                                      max_rounds)
    if pending.size:
        csr = graph.matrix
        for user in np.unique(flat_users[pending]):
            slots = pending[flat_users[pending] == user]
            drawn = _complement_negatives(csr, int(user), num_items,
                                          slots.size, rng)
            if drawn.size == 0:
                raise ValueError(
                    f"user {int(user)} has interacted with every item; "
                    "no negative sample exists")
            flat[slots] = drawn
    return flat.reshape(len(users), num_negatives)
