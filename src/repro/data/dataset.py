"""Implicit-feedback recommendation datasets.

:class:`InteractionDataset` bundles the train interaction graph, the held-out
test interactions and metadata.  All models consume this one type; all
evaluators rank against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..graph import InteractionGraph


@dataclass
class InteractionDataset:
    """Train/test split of a user-item implicit-feedback dataset.

    Attributes
    ----------
    name:
        Human-readable dataset id (e.g. ``"gowalla"``).
    train:
        :class:`InteractionGraph` of training interactions.
    test_matrix:
        ``(num_users, num_items)`` CSR of held-out positives.
    user_factors, item_factors:
        Ground-truth latent factors when the dataset is synthetic (used by
        the Fig 6 case-study bench to verify recovered item relations);
        ``None`` for datasets loaded from files.
    item_categories:
        Ground-truth item cluster labels for synthetic data, else ``None``.
    """

    name: str
    train: InteractionGraph
    test_matrix: sp.csr_matrix
    user_factors: Optional[np.ndarray] = None
    item_factors: Optional[np.ndarray] = None
    item_categories: Optional[np.ndarray] = None
    _test_items_cache: Optional[Dict[int, np.ndarray]] = field(
        default=None, repr=False, compare=False)

    def __post_init__(self):
        self.test_matrix = sp.csr_matrix(self.test_matrix, dtype=np.float64)
        if self.test_matrix.shape != self.train.matrix.shape:
            raise ValueError("train and test shapes disagree: "
                             f"{self.train.matrix.shape} vs "
                             f"{self.test_matrix.shape}")

    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        return self.train.num_users

    @property
    def num_items(self) -> int:
        return self.train.num_items

    @property
    def num_train_interactions(self) -> int:
        return self.train.num_interactions

    @property
    def num_test_interactions(self) -> int:
        return int(self.test_matrix.nnz)

    @property
    def density(self) -> float:
        total = self.num_train_interactions + self.num_test_interactions
        return total / float(self.num_users * self.num_items)

    def test_users(self) -> np.ndarray:
        """Users that have at least one held-out positive."""
        counts = np.diff(self.test_matrix.indptr)
        return np.where(counts > 0)[0]

    def test_items_of(self, user: int) -> np.ndarray:
        """Held-out positive item ids for ``user``."""
        start, stop = self.test_matrix.indptr[user:user + 2]
        return self.test_matrix.indices[start:stop]

    def train_items_of(self, user: int) -> np.ndarray:
        start, stop = self.train.matrix.indptr[user:user + 2]
        return self.train.matrix.indices[start:stop]

    def statistics(self) -> Dict[str, float]:
        """The Table-I style summary row for this dataset."""
        return {
            "users": self.num_users,
            "items": self.num_items,
            "interactions": (self.num_train_interactions
                             + self.num_test_interactions),
            "density": self.density,
        }

    def with_train_graph(self, graph: InteractionGraph) -> "InteractionDataset":
        """Return a copy using ``graph`` for training (e.g. a noisy graph)."""
        return InteractionDataset(
            name=self.name, train=graph, test_matrix=self.test_matrix,
            user_factors=self.user_factors, item_factors=self.item_factors,
            item_categories=self.item_categories)

    def __repr__(self) -> str:
        return (f"InteractionDataset(name={self.name!r}, "
                f"users={self.num_users}, items={self.num_items}, "
                f"train={self.num_train_interactions}, "
                f"test={self.num_test_interactions})")
