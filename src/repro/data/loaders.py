"""File round-trip for datasets (TSV edge lists and compressed NPZ).

Lets a downstream user bring their own Gowalla/Retail Rocket/Amazon dumps:
the standard distribution format for these corpora is a whitespace-separated
``user item`` edge list, which :func:`load_tsv` accepts directly.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np
import scipy.sparse as sp

from .dataset import InteractionDataset
from .splits import holdout_split
from ..graph import InteractionGraph


def save_npz(dataset: InteractionDataset, path: str) -> None:
    """Serialize a dataset (train + test + optional ground truth) to NPZ."""
    train = dataset.train.matrix.tocoo()
    test = dataset.test_matrix.tocoo()
    payload = {
        "name": np.array(dataset.name),
        "shape": np.array(train.shape),
        "train_row": train.row, "train_col": train.col,
        "test_row": test.row, "test_col": test.col,
    }
    if dataset.user_factors is not None:
        payload["user_factors"] = dataset.user_factors
        payload["item_factors"] = dataset.item_factors
    if dataset.item_categories is not None:
        payload["item_categories"] = dataset.item_categories
    np.savez_compressed(path, **payload)


def load_npz(path: str) -> InteractionDataset:
    """Inverse of :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as blob:
        num_users, num_items = (int(blob["shape"][0]), int(blob["shape"][1]))
        train = InteractionGraph.from_edges(
            blob["train_row"], blob["train_col"], num_users, num_items)
        test = sp.csr_matrix(
            (np.ones(len(blob["test_row"])),
             (blob["test_row"], blob["test_col"])),
            shape=(num_users, num_items))
        kwargs = {}
        if "user_factors" in blob:
            kwargs["user_factors"] = blob["user_factors"]
            kwargs["item_factors"] = blob["item_factors"]
        if "item_categories" in blob:
            kwargs["item_categories"] = blob["item_categories"]
        return InteractionDataset(name=str(blob["name"]), train=train,
                                  test_matrix=test, **kwargs)


def load_tsv(path: str, name: Optional[str] = None,
             test_fraction: float = 0.2, seed: int = 0,
             min_interactions: int = 1) -> InteractionDataset:
    """Load a ``user item`` whitespace-separated edge list and split it.

    Ids are remapped to a dense 0..n range.  Users with fewer than
    ``min_interactions`` edges are dropped (a k-core style filter, matching
    standard preprocessing for the paper's datasets).
    """
    users, items = [], []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed line in {path!r}: {line!r}")
            users.append(parts[0])
            items.append(parts[1])
    if not users:
        raise ValueError(f"no interactions found in {path!r}")

    user_ids, user_idx = np.unique(users, return_inverse=True)
    item_ids, item_idx = np.unique(items, return_inverse=True)

    if min_interactions > 1:
        counts = np.bincount(user_idx, minlength=len(user_ids))
        keep_users = counts >= min_interactions
        mask = keep_users[user_idx]
        user_ids, user_idx = np.unique(
            np.asarray(users)[mask], return_inverse=True)
        item_ids, item_idx = np.unique(
            np.asarray(items)[mask], return_inverse=True)

    graph = InteractionGraph.from_edges(
        user_idx, item_idx, len(user_ids), len(item_ids))
    rng = np.random.default_rng(seed)
    train, test = holdout_split(graph, test_fraction, rng)
    return InteractionDataset(
        name=name or os.path.splitext(os.path.basename(path))[0],
        train=train, test_matrix=test)


def save_tsv(dataset: InteractionDataset, path: str,
             include_test: bool = True) -> None:
    """Write the dataset back out as a ``user item`` edge list."""
    with open(path, "w") as handle:
        rows, cols = dataset.train.edges()
        for u, i in zip(rows, cols):
            handle.write(f"{u}\t{i}\n")
        if include_test:
            test = dataset.test_matrix.tocoo()
            for u, i in zip(test.row, test.col):
                handle.write(f"{u}\t{i}\n")
