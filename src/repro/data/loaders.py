"""File round-trip for datasets (TSV edge lists and compressed NPZ).

Lets a downstream user bring their own Gowalla/Retail Rocket/Amazon dumps:
the standard distribution format for these corpora is a whitespace-separated
``user item`` edge list, which :func:`load_tsv` accepts directly.

This module also owns the ``"dataset"`` component registry: every
synthetic profile is registered by name (plus ``"tiny"``, the unit-test
dataset), and :func:`resolve_dataset` is the one resolution rule the
experiment facade and the CLI share — registry name first, then file
path by extension (``.npz`` or edge-list TSV).
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np
import scipy.sparse as sp

from .dataset import InteractionDataset
from .splits import holdout_split
from .synthetic import PROFILES, load_profile, tiny_dataset
from ..graph import InteractionGraph
from ..utils import component_registry

DATASET_REGISTRY = component_registry("dataset")


def save_npz(dataset: InteractionDataset, path: str) -> None:
    """Serialize a dataset (train + test + optional ground truth) to NPZ."""
    train = dataset.train.matrix.tocoo()
    test = dataset.test_matrix.tocoo()
    payload = {
        "name": np.array(dataset.name),
        "shape": np.array(train.shape),
        "train_row": train.row, "train_col": train.col,
        "test_row": test.row, "test_col": test.col,
    }
    if dataset.user_factors is not None:
        payload["user_factors"] = dataset.user_factors
        payload["item_factors"] = dataset.item_factors
    if dataset.item_categories is not None:
        payload["item_categories"] = dataset.item_categories
    np.savez_compressed(path, **payload)


def load_npz(path: str) -> InteractionDataset:
    """Inverse of :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as blob:
        num_users, num_items = (int(blob["shape"][0]), int(blob["shape"][1]))
        train = InteractionGraph.from_edges(
            blob["train_row"], blob["train_col"], num_users, num_items)
        test = sp.csr_matrix(
            (np.ones(len(blob["test_row"])),
             (blob["test_row"], blob["test_col"])),
            shape=(num_users, num_items))
        kwargs = {}
        if "user_factors" in blob:
            kwargs["user_factors"] = blob["user_factors"]
            kwargs["item_factors"] = blob["item_factors"]
        if "item_categories" in blob:
            kwargs["item_categories"] = blob["item_categories"]
        return InteractionDataset(name=str(blob["name"]), train=train,
                                  test_matrix=test, **kwargs)


def load_tsv(path: str, name: Optional[str] = None,
             test_fraction: float = 0.2, seed: int = 0,
             min_interactions: int = 1) -> InteractionDataset:
    """Load a ``user item`` whitespace-separated edge list and split it.

    Ids are remapped to a dense 0..n range.  Users with fewer than
    ``min_interactions`` edges are dropped (a k-core style filter, matching
    standard preprocessing for the paper's datasets).
    """
    users, items = [], []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed line in {path!r}: {line!r}")
            users.append(parts[0])
            items.append(parts[1])
    if not users:
        raise ValueError(f"no interactions found in {path!r}")

    user_ids, user_idx = np.unique(users, return_inverse=True)
    item_ids, item_idx = np.unique(items, return_inverse=True)

    if min_interactions > 1:
        counts = np.bincount(user_idx, minlength=len(user_ids))
        keep_users = counts >= min_interactions
        mask = keep_users[user_idx]
        user_ids, user_idx = np.unique(
            np.asarray(users)[mask], return_inverse=True)
        item_ids, item_idx = np.unique(
            np.asarray(items)[mask], return_inverse=True)

    graph = InteractionGraph.from_edges(
        user_idx, item_idx, len(user_ids), len(item_ids))
    rng = np.random.default_rng(seed)
    train, test = holdout_split(graph, test_fraction, rng)
    return InteractionDataset(
        name=name or os.path.splitext(os.path.basename(path))[0],
        train=train, test_matrix=test)


def _register_profile(name: str) -> None:
    @DATASET_REGISTRY.register(name)
    def _loader(seed: int = 0, **options) -> InteractionDataset:
        return load_profile(name, seed=seed, **options)


for _name in PROFILES:
    _register_profile(_name)


@DATASET_REGISTRY.register("tiny")
def _load_tiny(seed: int = 0, **options) -> InteractionDataset:
    return tiny_dataset(seed=seed, **options)


def available_datasets() -> list:
    """Sorted list of registered dataset names."""
    return DATASET_REGISTRY.names()


def resolve_dataset(source: str, seed: int = 0,
                    **options) -> InteractionDataset:
    """Load a dataset from a registry name or a file path.

    Resolution order: a registered name (synthetic profiles plus
    ``"tiny"``) wins; otherwise the string is treated as a path —
    ``.npz`` artifacts go through :func:`load_npz`, anything else
    through :func:`load_tsv`.  ``options`` are forwarded to the loader
    (e.g. ``test_fraction`` for profiles and TSV files); an ``.npz``
    artifact is fully materialized (its split is baked in), so options
    for it are an error rather than silently ignored (``seed`` has no
    effect on it either).
    """
    if source in DATASET_REGISTRY:
        return DATASET_REGISTRY.get(source)(seed=seed, **options)
    if os.path.exists(source):
        if source.endswith(".npz"):
            if options:
                raise ValueError(
                    f"dataset options {sorted(options)} cannot apply to "
                    f"the .npz artifact {source!r}: its split is baked "
                    "in at save time")
            return load_npz(source)
        return load_tsv(source, seed=seed, **options)
    raise ValueError(
        f"cannot resolve dataset {source!r}: not a registered name "
        f"(available: {available_datasets()}) and no such file")


def save_tsv(dataset: InteractionDataset, path: str,
             include_test: bool = True) -> None:
    """Write the dataset back out as a ``user item`` edge list."""
    with open(path, "w") as handle:
        rows, cols = dataset.train.edges()
        for u, i in zip(rows, cols):
            handle.write(f"{u}\t{i}\n")
        if include_test:
            test = dataset.test_matrix.tocoo()
            for u, i in zip(test.row, test.col):
                handle.write(f"{u}\t{i}\n")
