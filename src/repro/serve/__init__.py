"""``repro.serve`` — the online recommendation-serving subsystem.

Training produces parameters; this package turns them into a service:
persist a trained model as a **snapshot**, stand a
:class:`RecommenderService` up from it without the training pipeline,
answer ``recommend(user_ids, k)`` requests through the chunked
block-ranking kernels, shard request batches across a worker pool, and
fold new interactions in online via ``partial_update``.

Snapshot format (``repro-serve-snapshot/v1``)
---------------------------------------------
One ``.npz`` artifact — **uncompressed** from format v3, which is what
makes ``load_snapshot(path, mmap=True)`` zero-copy (see
:mod:`repro.serve.snapshot`):

====================  ===================================================
entry                 contents
====================  ===================================================
``meta_json``         JSON: schema id, ``format_version`` (see
                      :data:`SNAPSHOT_FORMAT_VERSION`; absent =
                      version 1, v1/v2 migrated on load,
                      newer-than-supported rejected), model registry
                      name, :class:`~repro.train.ModelConfig` fields,
                      construction seed, parameter dtype,
                      ``num_users`` / ``num_items``, dataset name, and
                      the ``ann`` build config (v3 embedding snapshots)
``param::<name>``     every ``state_dict`` array of the model
``train_indptr`` /    the train-positive CSR — seen-item exclusion at
``train_indices``     serving time *and* the graph for registry rebuilds
``user_embeddings``,  final propagated arrays; present iff the model's
``item_embeddings``   scores are their dot product
                      (``serving_embeddings()`` in
                      :mod:`repro.models.base`)
``ann::centroids``,   the IVF retrieval index built from the embeddings
``ann::indptr``,      at snapshot time (v3 embedding snapshots); lets
``ann::items``        ``backend="ann"`` services skip the k-means
                      rebuild — older artifacts rebuild it on the fly
====================  ===================================================

Any of the registered models round-trips: snapshots with embeddings are
served from the arrays alone (no model object), and custom-scorer models
(``ncf``, ``autorec``, ``biasmf``) are rebuilt from the registry under
the saved dtype/seed and driven through ``score_users`` — in both cases
``RecommenderService.recommend`` reproduces ``top_k_lists`` of the live
model exactly.

Service / shard contract
------------------------
* ``recommend(user_ids, k, exclude_seen=True)`` returns a
  ``(len(user_ids), k)`` array of item ids, best first, with each user's
  seen items masked; ranking runs through
  :func:`repro.eval.rank_items_block`, the same kernel the chunked
  evaluator uses.
* Requests are partitioned into contiguous user-id chunks sized by the
  evaluator's memory-budget rule (:func:`repro.eval.auto_chunk_size`)
  and mapped over a :class:`ShardedExecutor` thread pool.  Chunk
  boundaries are independent of worker count, so N workers return
  bit-identical lists to 1 worker; workers scale throughput because the
  shard work is GIL-releasing numpy.
* ``partial_update(users, items)`` is idempotent, thread-safe against
  concurrent ``recommend`` calls, always extends the exclusion CSR, and
  on the embeddings backend refreshes affected users' cached vectors by
  a degree-weighted fold-in (documented in
  :mod:`repro.serve.service`).

Typical round trip::

    from repro.serve import RecommenderService, save_snapshot

    fit_model(model, dataset, config)           # or load a checkpoint
    save_snapshot(model, dataset, "model.npz")

    service = RecommenderService.from_snapshot("model.npz",
                                               num_workers=4)
    topk = service.recommend([3, 14, 15], k=20)
    service.partial_update([3], [topk[0, 0]])   # user 3 consumed an item
"""

from .ann import ANNConfig, IVFIndex, DEFAULT_RECALL_BUDGET, recall_at_k
from .snapshot import (SNAPSHOT_SCHEMA, SNAPSHOT_FORMAT_VERSION, Snapshot,
                       load_snapshot, resolve_snapshot_path,
                       save_embedding_snapshot, save_snapshot)
from .service import RecommenderService
from .sharding import ShardedExecutor, partition_users
from .front import AsyncRequestFront, BackpressureError

__all__ = [
    "SNAPSHOT_SCHEMA", "SNAPSHOT_FORMAT_VERSION", "Snapshot",
    "load_snapshot", "resolve_snapshot_path", "save_snapshot",
    "save_embedding_snapshot",
    "ANNConfig", "IVFIndex", "DEFAULT_RECALL_BUDGET", "recall_at_k",
    "AsyncRequestFront", "BackpressureError",
    "RecommenderService", "ShardedExecutor", "partition_users",
]
