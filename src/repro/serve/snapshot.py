"""Serving snapshots: persist a trained recommender, restore it without
its training pipeline.

One snapshot is a single ``.npz`` artifact whose entries are

* ``meta_json`` — a JSON document (stored as a zero-dim string array)
  with the schema id, model registry name, :class:`ModelConfig` fields,
  construction seed, parameter dtype, matrix shape, dataset name and —
  from format v3 — the ANN build config under ``"ann"``;
* ``param::<name>`` — every ``state_dict`` array of the model;
* ``train_indptr`` / ``train_indices`` — the train-positive CSR used for
  seen-item exclusion (and to rebuild the model's graph on restore);
* ``user_embeddings`` / ``item_embeddings`` — the final propagated
  arrays, present iff the model's scores are their dot product
  (``serving_embeddings()`` of the snapshot contract in
  :mod:`repro.models.base`);
* ``ann::centroids`` / ``ann::indptr`` / ``ann::items`` — the IVF
  retrieval index built from the embeddings at snapshot time (format
  v3, embedding snapshots only); lets ``backend="ann"`` services skip
  the k-means rebuild.

Format v3 artifacts are written **uncompressed** (``np.savez``, ZIP
stored members), which is what makes ``load_snapshot(path, mmap=True)``
possible: the embedding tables are returned as read-only
``np.memmap`` views straight into the page cache, so N serving
processes loading the same snapshot share one physical copy of the
tables instead of N.  v1/v2 artifacts are deflate-compressed and cannot
be mapped; ``mmap=True`` on one fails with a clear error (re-save under
v3 to get mapping).

Restore paths, in order of preference:

1. **embedding-only** — when the propagated arrays are present, a
   :class:`~repro.serve.service.RecommenderService` scores straight from
   them; no model object, no ``repro.models`` import, no propagation.
2. **registry round-trip** — :meth:`Snapshot.build_model` rebuilds the
   model from the registry under the saved dtype and seed, reconstructs
   its dataset from the stored CSR and loads the parameters; inference
   is bit-identical to the live model because ``propagate`` is
   deterministic given parameters and graph (the base-class contract).
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import dataclass, fields
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from .ann import ANNConfig, IVFIndex
from ..data import InteractionDataset
from ..graph import InteractionGraph
from ..train.config import ModelConfig, config_to_dict

#: schema id embedded in every snapshot's ``meta_json``
SNAPSHOT_SCHEMA = "repro-serve-snapshot/v1"

#: current snapshot format version, stamped into ``meta_json``.
#:
#: * **1** — the original artifact (no ``format_version`` field); its
#:   array layout is identical to v2, so loading migrates it in place by
#:   stamping the field.
#: * **2** — ``format_version`` present; deflate-compressed members.
#: * **3** — members stored uncompressed (memory-mappable via
#:   ``load_snapshot(..., mmap=True)``); embedding snapshots
#:   additionally carry the ``ann::*`` IVF index arrays and an ``ann``
#:   config block in ``meta_json``.  v1/v2 artifacts still load (the
#:   serving layer rebuilds the ANN index on the fly when asked for it)
#:   but cannot be memory-mapped.  Artifacts from a *newer* writer are
#:   rejected with a clear error instead of being misread.
SNAPSHOT_FORMAT_VERSION = 3

_PARAM_PREFIX = "param::"
_ANN_PREFIX = "ann::"

#: suffix of the temporary file :func:`save_snapshot` writes before the
#: atomic rename (the chaos suite asserts none of these outlive a save)
SNAPSHOT_TMP_SUFFIX = ".tmp.npz"


def _migrate_meta(meta: Dict, path: str) -> Dict:
    """Bring a loaded ``meta_json`` document up to the current version.

    Version-absent artifacts (written before versioning existed) are
    treated as v1 and migrated by stamping the field — their array
    layout already matches.  v2 artifacts differ from v3 only by member
    compression and the (optional) stored ANN index, so their metadata
    migrates by stamping too; the arrays they lack are rebuilt on
    demand.  Versions newer than this library's are an error: a rolling
    deployment must upgrade the reader before the writer.
    """
    version = meta.get("format_version", 1)
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"invalid snapshot format_version {version!r} "
                         f"in {path}")
    if version > SNAPSHOT_FORMAT_VERSION:
        raise ValueError(
            f"snapshot {path} has format_version {version}, but this "
            f"version of repro reads at most {SNAPSHOT_FORMAT_VERSION}; "
            "upgrade repro to load it")
    meta = dict(meta)
    meta["format_version"] = SNAPSHOT_FORMAT_VERSION
    return meta


def _config_from_dict(payload: Dict) -> ModelConfig:
    # deliberately lenient (unlike repro.train.config_from_dict): a
    # snapshot written by a newer same-format repro may carry config
    # fields this build doesn't know; ignoring them keeps old readers
    # working, which is the forward-compat half of the version contract
    known = {f.name for f in fields(ModelConfig)}
    kwargs = {k: (tuple(v) if isinstance(v, list) else v)
              for k, v in payload.items() if k in known}
    return ModelConfig(**kwargs)


def resolve_snapshot_path(path: str) -> str:
    """The on-disk name :func:`save_snapshot` will write ``path`` under.

    Snapshots always carry the ``.npz`` extension; callers that accept a
    user-supplied path (the CLI, the Trainer) resolve through this so
    existence checks and reloads name the same file the save did.
    """
    return path if path.endswith(".npz") else path + ".npz"


def _write_npz_atomic(path: str, arrays: Dict[str, np.ndarray]) -> None:
    """Write an uncompressed ``.npz`` atomically (tmp + ``os.replace``).

    A reader (or a memory-mapping service) never observes a
    half-written artifact, and a crash mid-save leaves only the
    ``*.tmp.npz`` file, which the next successful save of the same path
    replaces.
    """
    tmp = path + SNAPSHOT_TMP_SUFFIX
    try:
        # np.savez (not savez_compressed): ZIP_STORED members are the
        # precondition for load_snapshot(..., mmap=True)
        np.savez(tmp, **arrays)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise


def _snapshot_arrays(meta: Dict, train: sp.csr_matrix,
                     state: Dict[str, np.ndarray],
                     user_embeddings: Optional[np.ndarray],
                     item_embeddings: Optional[np.ndarray],
                     include_ann: bool,
                     ann_config: Optional[ANNConfig]) -> Dict:
    """Assemble the full ``.npz`` entry dict (and stamp the ANN meta)."""
    arrays = {"train_indptr": train.indptr.astype(np.int64),
              "train_indices": train.indices.astype(np.int64)}
    for name, value in state.items():
        arrays[_PARAM_PREFIX + name] = value
    if user_embeddings is not None:
        arrays["user_embeddings"] = user_embeddings
        arrays["item_embeddings"] = item_embeddings
        if include_ann:
            config = ann_config or ANNConfig()
            index = IVFIndex.build(item_embeddings, config)
            for name, value in index.arrays().items():
                arrays[_ANN_PREFIX + name] = value
            meta["ann"] = config.to_meta()
    arrays["meta_json"] = np.array(json.dumps(meta))
    return arrays


def save_snapshot(model, dataset: InteractionDataset, path: str,
                  include_ann: bool = True,
                  ann_config: Optional[ANNConfig] = None) -> str:
    """Persist ``model`` (trained on ``dataset``) as one ``.npz`` artifact.

    See the module docstring for the artifact layout.  For models under
    the embedding-dot contract the IVF retrieval index is built from the
    serving embeddings and stored alongside them (``include_ann=False``
    skips it; services then rebuild on demand).  The write is atomic.
    Returns the path written (``.npz`` appended when missing).
    """
    state = model.state_dict()
    try:
        dtype = next(iter(state.values())).dtype
    except StopIteration:
        dtype = np.dtype(np.float64)
    train = dataset.train.matrix
    if not train.has_sorted_indices:
        train = train.copy()
        train.sort_indices()
    meta = {
        "schema": SNAPSHOT_SCHEMA,
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "model": getattr(model, "name", type(model).__name__),
        "config": config_to_dict(model.config),
        "seed": int(getattr(model, "seed", 0)),
        "dtype": np.dtype(dtype).name,
        "num_users": int(dataset.num_users),
        "num_items": int(dataset.num_items),
        "dataset": dataset.name,
    }
    embeddings = model.serving_embeddings()
    user_emb, item_emb = (None, None) if embeddings is None else embeddings
    arrays = _snapshot_arrays(meta, train, state, user_emb, item_emb,
                              include_ann, ann_config)
    path = resolve_snapshot_path(path)
    _write_npz_atomic(path, arrays)
    return path


def save_embedding_snapshot(path: str, user_embeddings: np.ndarray,
                            item_embeddings: np.ndarray,
                            train_matrix: Optional[sp.spmatrix] = None,
                            model_name: str = "embeddings",
                            dataset_name: str = "embeddings",
                            include_ann: bool = True,
                            ann_config: Optional[ANNConfig] = None) -> str:
    """Persist bare embedding tables as a (model-free) serving snapshot.

    The load-test and chaos suites use this to build million-user-scale
    artifacts without training a model: the result is a perfectly
    ordinary v3 embedding snapshot — :func:`load_snapshot` (with or
    without ``mmap``) and ``RecommenderService.from_snapshot`` treat it
    like any other.  ``train_matrix=None`` means an empty exclusion CSR
    (no seen items).  The write is atomic.  Returns the path written.
    """
    user_embeddings = np.asarray(user_embeddings)
    item_embeddings = np.asarray(item_embeddings)
    if user_embeddings.ndim != 2 or item_embeddings.ndim != 2 \
            or user_embeddings.shape[1] != item_embeddings.shape[1]:
        raise ValueError("embedding tables must be 2-D with a shared "
                         f"dim, got {user_embeddings.shape} and "
                         f"{item_embeddings.shape}")
    num_users, num_items = len(user_embeddings), len(item_embeddings)
    if train_matrix is None:
        train = sp.csr_matrix((num_users, num_items))
    else:
        train = sp.csr_matrix(train_matrix)
        if train.shape != (num_users, num_items):
            raise ValueError(f"train matrix shape {train.shape} does not "
                             f"match ({num_users}, {num_items})")
        train.sort_indices()
    meta = {
        "schema": SNAPSHOT_SCHEMA,
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "model": model_name,
        "config": {},
        "seed": 0,
        "dtype": np.dtype(user_embeddings.dtype).name,
        "num_users": int(num_users),
        "num_items": int(num_items),
        "dataset": dataset_name,
    }
    arrays = _snapshot_arrays(meta, train, {}, user_embeddings,
                              item_embeddings, include_ann, ann_config)
    path = resolve_snapshot_path(path)
    _write_npz_atomic(path, arrays)
    return path


@dataclass
class Snapshot:
    """A loaded serving snapshot (see the module docstring for layout)."""

    meta: Dict
    state: Dict[str, np.ndarray]
    train_matrix: sp.csr_matrix
    user_embeddings: Optional[np.ndarray] = None
    item_embeddings: Optional[np.ndarray] = None
    ann_centroids: Optional[np.ndarray] = None
    ann_indptr: Optional[np.ndarray] = None
    ann_items: Optional[np.ndarray] = None
    #: True when the embedding tables are read-only ``np.memmap`` views
    mmap: bool = False

    @property
    def model_name(self) -> str:
        return self.meta["model"]

    @property
    def num_users(self) -> int:
        return int(self.meta["num_users"])

    @property
    def num_items(self) -> int:
        return int(self.meta["num_items"])

    @property
    def has_embeddings(self) -> bool:
        return self.user_embeddings is not None

    @property
    def has_ann(self) -> bool:
        """Whether the stored IVF index arrays are present (format v3)."""
        return self.ann_centroids is not None

    @property
    def ann_config(self) -> ANNConfig:
        """ANN build config from ``meta_json`` (defaults when absent)."""
        return ANNConfig.from_meta(self.meta.get("ann"))

    def build_ann_index(self) -> IVFIndex:
        """The snapshot's IVF retrieval index.

        Restored from the stored arrays when present (format v3);
        otherwise — v1/v2 artifacts, or saves with ``include_ann=False``
        — rebuilt deterministically from the item embeddings, which by
        construction yields the same index a v3 save would have stored.
        Requires an embedding snapshot.
        """
        if not self.has_embeddings:
            raise ValueError(
                f"snapshot of model {self.model_name!r} carries no "
                "serving embeddings; the ANN backend needs them")
        if self.has_ann:
            return IVFIndex.from_arrays(self.ann_centroids,
                                        self.ann_indptr, self.ann_items,
                                        self.ann_config)
        return IVFIndex.build(np.asarray(self.item_embeddings),
                              self.ann_config)

    def build_dataset(self) -> InteractionDataset:
        """Reconstruct the training-graph dataset (empty test split)."""
        empty_test = sp.csr_matrix((self.num_users, self.num_items))
        return InteractionDataset(
            name=self.meta.get("dataset", "snapshot"),
            train=InteractionGraph(self.train_matrix),
            test_matrix=empty_test)

    def build_model(self, dataset: Optional[InteractionDataset] = None):
        """Registry round-trip: rebuild the live model and load its state.

        The model is constructed under the snapshot's parameter dtype and
        seed so construction-time structural state (e.g. GraphAug's
        candidate edges) and inference arithmetic match the saved model
        exactly.
        """
        # imported here so embedding-only serving never pulls in the zoo
        from ..autograd import default_dtype
        from ..models import build_model

        if dataset is None:
            dataset = self.build_dataset()
        config = _config_from_dict(self.meta.get("config", {}))
        with default_dtype(self.meta.get("dtype", "float64")):
            model = build_model(self.model_name, dataset, config,
                                seed=int(self.meta.get("seed", 0)))
        model.load_state_dict(self.state)
        return model


#: entries eligible for zero-copy mapping — the tables that dominate a
#: snapshot's footprint; everything else is loaded eagerly as usual
_MMAP_ENTRIES = ("user_embeddings", "item_embeddings",
                 _ANN_PREFIX + "centroids", _ANN_PREFIX + "indptr",
                 _ANN_PREFIX + "items")


def _mmap_npz_entries(path: str, names) -> Dict[str, np.ndarray]:
    """Map ``.npy`` members of an uncompressed ``.npz`` as ``np.memmap``.

    ``np.load(..., mmap_mode=...)`` cannot map inside a zip, so this
    walks the archive itself: for each requested member it locates the
    payload (local file header + the ``.npy`` header parsed via
    :mod:`numpy.lib.format`) and hands the absolute file offset to
    :class:`np.memmap`.  Members written compressed (v1/v2 artifacts)
    raise a :class:`ValueError` naming the fix — there is no zero-copy
    view of deflate data.
    """
    out: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf, open(path, "rb") as raw:
        members = set(zf.namelist())
        for name in names:
            member = name + ".npy"
            if member not in members:
                continue
            info = zf.getinfo(member)
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(
                    f"snapshot {path} stores {name!r} compressed "
                    "(a pre-v3 artifact); mmap=True needs an "
                    "uncompressed format v3 snapshot — load it without "
                    "mmap and re-save to upgrade")
            # the central directory's name/extra lengths may differ from
            # the local header's, so read the local header to find the
            # payload start
            raw.seek(info.header_offset + 26)
            lengths = raw.read(4)
            name_len = int.from_bytes(lengths[0:2], "little")
            extra_len = int.from_bytes(lengths[2:4], "little")
            payload = info.header_offset + 30 + name_len + extra_len
            raw.seek(payload)
            version = np.lib.format.read_magic(raw)
            if version >= (2, 0):
                header = np.lib.format.read_array_header_2_0(raw)
            else:
                header = np.lib.format.read_array_header_1_0(raw)
            shape, fortran_order, dtype = header
            out[name] = np.memmap(path, dtype=dtype, mode="r",
                                  shape=shape, offset=raw.tell(),
                                  order="F" if fortran_order else "C")
    return out


def load_snapshot(path: str, mmap: bool = False) -> Snapshot:
    """Load a :func:`save_snapshot` artifact back into a :class:`Snapshot`.

    With ``mmap=True`` the embedding tables and stored ANN arrays come
    back as read-only :class:`np.memmap` views onto the file, so N
    processes loading the same snapshot share one resident copy through
    the page cache (metadata, parameters and the exclusion CSR are still
    loaded eagerly — they are small).  Requires an uncompressed format
    v3 artifact; pre-v3 (compressed) snapshots raise a clear error.
    """
    with np.load(path, allow_pickle=False) as blob:
        if "meta_json" not in blob.files:
            raise ValueError(f"{path} is not a serving snapshot "
                             "(missing meta_json)")
        meta = json.loads(str(blob["meta_json"]))
        if meta.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(f"unsupported snapshot schema "
                             f"{meta.get('schema')!r} in {path} "
                             f"(expected {SNAPSHOT_SCHEMA})")
        meta = _migrate_meta(meta, path)
        state = {name[len(_PARAM_PREFIX):]: blob[name]
                 for name in blob.files if name.startswith(_PARAM_PREFIX)}
        shape = (int(meta["num_users"]), int(meta["num_items"]))
        indptr = blob["train_indptr"]
        indices = blob["train_indices"]
        train = sp.csr_matrix(
            (np.ones(len(indices)), indices, indptr), shape=shape)
        present = [n for n in _MMAP_ENTRIES if n in blob.files]
        tables: Dict[str, np.ndarray] = {}
        if not mmap:
            tables = {n: blob[n] for n in present}
    if mmap:
        tables = _mmap_npz_entries(path, present)
    return Snapshot(meta=meta, state=state, train_matrix=train,
                    user_embeddings=tables.get("user_embeddings"),
                    item_embeddings=tables.get("item_embeddings"),
                    ann_centroids=tables.get(_ANN_PREFIX + "centroids"),
                    ann_indptr=tables.get(_ANN_PREFIX + "indptr"),
                    ann_items=tables.get(_ANN_PREFIX + "items"),
                    mmap=mmap)
