"""Serving snapshots: persist a trained recommender, restore it without
its training pipeline.

One snapshot is a single compressed ``.npz`` artifact whose entries are

* ``meta_json`` — a JSON document (stored as a zero-dim string array)
  with the schema id, model registry name, :class:`ModelConfig` fields,
  construction seed, parameter dtype, matrix shape and dataset name;
* ``param::<name>`` — every ``state_dict`` array of the model;
* ``train_indptr`` / ``train_indices`` — the train-positive CSR used for
  seen-item exclusion (and to rebuild the model's graph on restore);
* ``user_embeddings`` / ``item_embeddings`` — the final propagated
  arrays, present iff the model's scores are their dot product
  (``serving_embeddings()`` of the snapshot contract in
  :mod:`repro.models.base`).

Restore paths, in order of preference:

1. **embedding-only** — when the propagated arrays are present, a
   :class:`~repro.serve.service.RecommenderService` scores straight from
   them; no model object, no ``repro.models`` import, no propagation.
2. **registry round-trip** — :meth:`Snapshot.build_model` rebuilds the
   model from the registry under the saved dtype and seed, reconstructs
   its dataset from the stored CSR and loads the parameters; inference
   is bit-identical to the live model because ``propagate`` is
   deterministic given parameters and graph (the base-class contract).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from ..data import InteractionDataset
from ..graph import InteractionGraph
from ..train.config import ModelConfig, config_to_dict

#: schema id embedded in every snapshot's ``meta_json``
SNAPSHOT_SCHEMA = "repro-serve-snapshot/v1"

#: current snapshot format version, stamped into ``meta_json``.
#:
#: * **1** — the original artifact (no ``format_version`` field); its
#:   array layout is identical to v2, so loading migrates it in place by
#:   stamping the field.
#: * **2** — ``format_version`` present.  Future layout changes bump
#:   this and add a migration step in :func:`_migrate_meta`; artifacts
#:   from a *newer* writer are rejected with a clear error instead of
#:   being misread.
SNAPSHOT_FORMAT_VERSION = 2

_PARAM_PREFIX = "param::"


def _migrate_meta(meta: Dict, path: str) -> Dict:
    """Bring a loaded ``meta_json`` document up to the current version.

    Version-absent artifacts (written before versioning existed) are
    treated as v1 and migrated by stamping the field — their array
    layout already matches.  Versions newer than this library's are an
    error: a rolling deployment must upgrade the reader before the
    writer.
    """
    version = meta.get("format_version", 1)
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"invalid snapshot format_version {version!r} "
                         f"in {path}")
    if version > SNAPSHOT_FORMAT_VERSION:
        raise ValueError(
            f"snapshot {path} has format_version {version}, but this "
            f"version of repro reads at most {SNAPSHOT_FORMAT_VERSION}; "
            "upgrade repro to load it")
    meta = dict(meta)
    meta["format_version"] = SNAPSHOT_FORMAT_VERSION
    return meta


def _config_from_dict(payload: Dict) -> ModelConfig:
    # deliberately lenient (unlike repro.train.config_from_dict): a
    # snapshot written by a newer same-format repro may carry config
    # fields this build doesn't know; ignoring them keeps old readers
    # working, which is the forward-compat half of the version contract
    known = {f.name for f in fields(ModelConfig)}
    kwargs = {k: (tuple(v) if isinstance(v, list) else v)
              for k, v in payload.items() if k in known}
    return ModelConfig(**kwargs)


def resolve_snapshot_path(path: str) -> str:
    """The on-disk name :func:`save_snapshot` will write ``path`` under.

    Snapshots always carry the ``.npz`` extension; callers that accept a
    user-supplied path (the CLI, the Trainer) resolve through this so
    existence checks and reloads name the same file the save did.
    """
    return path if path.endswith(".npz") else path + ".npz"


def save_snapshot(model, dataset: InteractionDataset, path: str) -> str:
    """Persist ``model`` (trained on ``dataset``) as one ``.npz`` artifact.

    See the module docstring for the artifact layout.  Returns the path
    written (``.npz`` appended when missing).
    """
    state = model.state_dict()
    try:
        dtype = next(iter(state.values())).dtype
    except StopIteration:
        dtype = np.dtype(np.float64)
    train = dataset.train.matrix
    if not train.has_sorted_indices:
        train = train.copy()
        train.sort_indices()
    meta = {
        "schema": SNAPSHOT_SCHEMA,
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "model": getattr(model, "name", type(model).__name__),
        "config": config_to_dict(model.config),
        "seed": int(getattr(model, "seed", 0)),
        "dtype": np.dtype(dtype).name,
        "num_users": int(dataset.num_users),
        "num_items": int(dataset.num_items),
        "dataset": dataset.name,
    }
    arrays = {"meta_json": np.array(json.dumps(meta)),
              "train_indptr": train.indptr.astype(np.int64),
              "train_indices": train.indices.astype(np.int64)}
    for name, value in state.items():
        arrays[_PARAM_PREFIX + name] = value
    embeddings = model.serving_embeddings()
    if embeddings is not None:
        arrays["user_embeddings"], arrays["item_embeddings"] = embeddings
    path = resolve_snapshot_path(path)
    np.savez_compressed(path, **arrays)
    return path


@dataclass
class Snapshot:
    """A loaded serving snapshot (see the module docstring for layout)."""

    meta: Dict
    state: Dict[str, np.ndarray]
    train_matrix: sp.csr_matrix
    user_embeddings: Optional[np.ndarray] = None
    item_embeddings: Optional[np.ndarray] = None

    @property
    def model_name(self) -> str:
        return self.meta["model"]

    @property
    def num_users(self) -> int:
        return int(self.meta["num_users"])

    @property
    def num_items(self) -> int:
        return int(self.meta["num_items"])

    @property
    def has_embeddings(self) -> bool:
        return self.user_embeddings is not None

    def build_dataset(self) -> InteractionDataset:
        """Reconstruct the training-graph dataset (empty test split)."""
        empty_test = sp.csr_matrix((self.num_users, self.num_items))
        return InteractionDataset(
            name=self.meta.get("dataset", "snapshot"),
            train=InteractionGraph(self.train_matrix),
            test_matrix=empty_test)

    def build_model(self, dataset: Optional[InteractionDataset] = None):
        """Registry round-trip: rebuild the live model and load its state.

        The model is constructed under the snapshot's parameter dtype and
        seed so construction-time structural state (e.g. GraphAug's
        candidate edges) and inference arithmetic match the saved model
        exactly.
        """
        # imported here so embedding-only serving never pulls in the zoo
        from ..autograd import default_dtype
        from ..models import build_model

        if dataset is None:
            dataset = self.build_dataset()
        config = _config_from_dict(self.meta.get("config", {}))
        with default_dtype(self.meta.get("dtype", "float64")):
            model = build_model(self.model_name, dataset, config,
                                seed=int(self.meta.get("seed", 0)))
        model.load_state_dict(self.state)
        return model


def load_snapshot(path: str) -> Snapshot:
    """Load a :func:`save_snapshot` artifact back into a :class:`Snapshot`."""
    with np.load(path, allow_pickle=False) as blob:
        if "meta_json" not in blob.files:
            raise ValueError(f"{path} is not a serving snapshot "
                             "(missing meta_json)")
        meta = json.loads(str(blob["meta_json"]))
        if meta.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(f"unsupported snapshot schema "
                             f"{meta.get('schema')!r} in {path} "
                             f"(expected {SNAPSHOT_SCHEMA})")
        meta = _migrate_meta(meta, path)
        state = {name[len(_PARAM_PREFIX):]: blob[name]
                 for name in blob.files if name.startswith(_PARAM_PREFIX)}
        shape = (int(meta["num_users"]), int(meta["num_items"]))
        indptr = blob["train_indptr"]
        indices = blob["train_indices"]
        train = sp.csr_matrix(
            (np.ones(len(indices)), indices, indptr), shape=shape)
        user_emb = (blob["user_embeddings"]
                    if "user_embeddings" in blob.files else None)
        item_emb = (blob["item_embeddings"]
                    if "item_embeddings" in blob.files else None)
    return Snapshot(meta=meta, state=state, train_matrix=train,
                    user_embeddings=user_emb, item_embeddings=item_emb)
