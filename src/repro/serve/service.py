"""The online recommendation service.

:class:`RecommenderService` answers ``recommend(user_ids, k)`` requests
over a trained model's state through the same block-ranking kernel the
chunked evaluator uses (:func:`repro.eval.rank_items_block`), so a
service answer over a snapshot reproduces ``top_k_lists`` of the live
model exactly.

Two scoring backends (picked automatically):

* **embeddings** — the propagated user/item arrays (from a live model's
  ``serving_embeddings()`` or a snapshot).  Scoring a request block is
  one GEMM against the cached arrays; no model object is needed.
* **model** — models whose scores are not an embedding dot product
  (``ncf``, ``autorec``, ``biasmf``) are driven through their
  ``score_users`` contract, with ``inference_cache()`` held open per
  request batch.  Model scoring is serialized across shard threads (it
  toggles the process-global autograd mode); only the embeddings
  backend scores shards concurrently, though masking/top-k of other
  shards still overlaps model scoring.

On top of the embeddings backend sits a **retrieval** knob,
``backend="exact" | "ann"`` on :meth:`from_model` /
:meth:`from_snapshot`:

* ``"exact"`` (default) — the full GEMM against every item, the
  reference path everything else is tested against.
* ``"ann"`` — an :class:`~repro.serve.ann.IVFIndex` probes the best
  item clusters per user and scores only their members, under the
  recall@20 >= :data:`~repro.serve.ann.DEFAULT_RECALL_BUDGET` parity
  budget the benches assert.  Candidate scores are scattered into a
  full-width ``-inf``-filled block, so masking/ranking run through the
  same :func:`repro.eval.rank_items_block` kernel as the exact path.
  Requires serving embeddings (model-scored services raise).

Snapshots can be served zero-copy: ``from_snapshot(path, mmap=True)``
memory-maps the embedding tables (format v3 artifacts), so N serving
processes share one resident copy.  ``partial_update`` stays safe on
mapped tables because its embedding refresh is copy-on-write — it
replaces ``self._user_emb`` with a mutated private copy and never
writes through the read-only view.

Requests are partitioned into user-id shards by a
:class:`~repro.serve.sharding.ShardedExecutor` and served concurrently;
shard boundaries do not depend on worker count, so the N-worker path is
bit-identical to the single-worker path.

``partial_update(users, items)`` folds new interactions in without a
retrain: the seen-item exclusion CSR always absorbs the new edges (so
just-consumed items stop being recommended immediately), and on the
embeddings backend each affected user's cached vector is refreshed by a
degree-weighted fold-in toward their new items' vectors::

    u  <-  (deg(u) * u + sum_j q_j) / (deg(u) + |new items|)

— the online approximation of the MF view in which a user's vector
aggregates their items.  It is an approximation by design; the exact
refresh is retraining and re-snapshotting.  On the model backend only
the exclusion CSR changes (the model's training-graph state is not
mutated).
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from .ann import ANNConfig, IVFIndex
from .sharding import ShardedExecutor
from .snapshot import Snapshot, load_snapshot
from ..data import InteractionDataset
from ..eval import rank_items_block
from ..obs import counter, histogram, span


class RecommenderService:
    """Serve top-k recommendations from a model or a snapshot.

    Build one with :meth:`from_model` (a live, possibly just-trained
    model) or :meth:`from_snapshot` (a :func:`repro.serve.save_snapshot`
    artifact); the direct constructor is the embedding-backend plumbing
    both factories share.
    """

    def __init__(self, *, num_users: int, num_items: int,
                 exclusion: sp.csr_matrix,
                 user_embeddings: Optional[np.ndarray] = None,
                 item_embeddings: Optional[np.ndarray] = None,
                 model=None, model_name: str = "unknown",
                 num_workers: int = 1,
                 chunk_size: Optional[int] = None,
                 backend: str = "exact",
                 ann_index: Optional[IVFIndex] = None,
                 ann_config: Optional[ANNConfig] = None):
        if (user_embeddings is None) != (item_embeddings is None):
            raise ValueError("user and item embeddings must be given "
                             "together")
        if user_embeddings is None and model is None:
            raise ValueError("need either cached embeddings or a model "
                             "to score with")
        if backend not in ("exact", "ann"):
            raise ValueError(f"backend must be 'exact' or 'ann', "
                             f"got {backend!r}")
        if backend == "ann" and user_embeddings is None:
            raise ValueError(
                "backend='ann' needs serving embeddings; model "
                f"{model_name!r} is scored through score_users and has "
                "none — serve it with backend='exact'")
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.model_name = model_name
        self._user_emb = user_embeddings
        self._item_emb = item_embeddings
        self._model = model
        exclusion = sp.csr_matrix(exclusion, copy=True)
        if exclusion.shape != (self.num_users, self.num_items):
            raise ValueError(f"exclusion matrix shape {exclusion.shape} "
                             f"does not match ({num_users}, {num_items})")
        exclusion.sort_indices()
        self._exclusion = exclusion
        self._retrieval = backend
        self._ann_index: Optional[IVFIndex] = None
        if backend == "ann":
            index = ann_index
            if index is None:
                index = IVFIndex.build(np.asarray(self._item_emb),
                                       ann_config)
            if index.num_items != self.num_items:
                raise ValueError(f"ANN index covers {index.num_items} "
                                 f"items, service has {self.num_items}")
            index.enable_probe_cache(self.num_users)
            self._ann_index = index
        self._executor = ShardedExecutor(num_workers=num_workers,
                                         chunk_size=chunk_size)
        self._update_lock = threading.Lock()
        # model-backend scoring is serialized: score_users toggles the
        # process-global autograd mode (no_grad), which is not safe to
        # enter from several shard threads at once; masking and top-k of
        # other shards still overlap with it
        self._model_lock = threading.Lock()
        # always-on request latency histogram: histogram observation is a
        # couple of comparisons per request (no tracing flag needed), and
        # the serving microbench reads its p50/p95/p99 straight from here
        self._latency = histogram("serve.request_seconds",
                                  help="recommend() wall time in seconds")
        self._requests = counter("serve.requests",
                                 help="recommend() calls answered")
        self._users_served = counter("serve.users_served",
                                     help="user rows ranked across requests")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_model(cls, model, dataset: InteractionDataset,
                   num_workers: int = 1,
                   chunk_size: Optional[int] = None,
                   backend: str = "exact",
                   ann_config: Optional[ANNConfig] = None
                   ) -> "RecommenderService":
        """Serve a live model; ``dataset.train`` seeds the exclusion CSR.

        Models under the embedding-dot contract are frozen into cached
        arrays immediately (the model object is not retained); custom
        scorers keep the model and go through ``score_users``.  With
        ``backend="ann"`` the IVF index is built from the frozen arrays
        here (embedding-dot models only).
        """
        embeddings = model.serving_embeddings()
        users, items = (None, None) if embeddings is None else embeddings
        return cls(num_users=dataset.num_users,
                   num_items=dataset.num_items,
                   exclusion=dataset.train.matrix,
                   user_embeddings=users, item_embeddings=items,
                   model=None if embeddings is not None else model,
                   model_name=getattr(model, "name", type(model).__name__),
                   num_workers=num_workers, chunk_size=chunk_size,
                   backend=backend, ann_config=ann_config)

    @classmethod
    def from_snapshot(cls, snapshot, num_workers: int = 1,
                      chunk_size: Optional[int] = None,
                      backend: str = "exact",
                      ann_config: Optional[ANNConfig] = None,
                      mmap: bool = False) -> "RecommenderService":
        """Serve a snapshot (path or :class:`Snapshot`).

        Snapshots carrying propagated embeddings are served from the
        arrays alone; others take the registry round-trip
        (:meth:`Snapshot.build_model`) and serve the restored model.

        ``backend="ann"`` restores the snapshot's stored IVF index when
        present (format v3) and otherwise rebuilds it from the item
        embeddings — deterministically identical, so pre-v3 artifacts
        serve approximately too.  ``ann_config`` overrides the stored
        build config (forcing a rebuild).  ``mmap=True`` (paths only)
        memory-maps the embedding tables; see
        :func:`repro.serve.load_snapshot`.
        """
        if not isinstance(snapshot, Snapshot):
            snapshot = load_snapshot(snapshot, mmap=mmap)
        elif mmap and not snapshot.mmap:
            raise ValueError("mmap=True needs a snapshot path (or a "
                             "Snapshot loaded with mmap=True)")
        model = None if snapshot.has_embeddings else snapshot.build_model()
        index = None
        if backend == "ann" and snapshot.has_embeddings:
            if ann_config is None:
                index = snapshot.build_ann_index()
            else:
                index = IVFIndex.build(np.asarray(snapshot.item_embeddings),
                                       ann_config)
        return cls(num_users=snapshot.num_users,
                   num_items=snapshot.num_items,
                   exclusion=snapshot.train_matrix,
                   user_embeddings=snapshot.user_embeddings,
                   item_embeddings=snapshot.item_embeddings,
                   model=model, model_name=snapshot.model_name,
                   num_workers=num_workers, chunk_size=chunk_size,
                   backend=backend, ann_index=index)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> str:
        """``"ann"``, ``"embeddings"`` or ``"model"`` (module docstring)."""
        if self._ann_index is not None:
            return "ann"
        return "embeddings" if self._user_emb is not None else "model"

    def recommend(self, user_ids: Optional[np.ndarray] = None, k: int = 20,
                  exclude_seen: bool = True) -> np.ndarray:
        """``(len(user_ids), k)`` recommended item ids, best first.

        ``user_ids=None`` serves every user.  With ``exclude_seen`` (the
        default) each user's train-positive items — including any folded
        in by :meth:`partial_update` — are masked out before ranking.
        """
        if user_ids is None:
            user_ids = np.arange(self.num_users, dtype=np.int64)
        else:
            user_ids = np.asarray(user_ids, dtype=np.int64)
        if len(user_ids) and (user_ids.min() < 0
                              or user_ids.max() >= self.num_users):
            raise ValueError("user id out of range")
        if not 1 <= k <= self.num_items:
            raise ValueError(f"k must be in [1, {self.num_items}], got {k}")
        with self._latency.time(), span("serve.recommend",
                                        users=len(user_ids), k=k,
                                        backend=self.backend):
            # capture one consistent state generation for the whole
            # request: a partial_update landing mid-request must not mix
            # old and new embeddings/masks across this request's shards
            # (the lock pairs the exclusion CSR with its matching
            # embedding generation)
            with self._update_lock:
                exclusion = self._exclusion if exclude_seen else None
                user_emb, item_emb = self._user_emb, self._item_emb
                index = self._ann_index
                # the probe-cache generation travels with the embedding
                # tables: writes stamped with this value can never be
                # mistaken for post-update probes (partial_update bumps
                # the index generation under the same lock)
                generation = index.generation if index is not None else 0
            seen_per_user = (np.diff(exclusion.indptr)
                             if exclusion is not None and index is not None
                             else None)

            def shard_fn(chunk: np.ndarray) -> np.ndarray:
                if index is not None:
                    seen = (seen_per_user[chunk]
                            if seen_per_user is not None else None)
                    scores = index.candidate_scores(
                        user_emb, item_emb, chunk, k,
                        seen_counts=seen, generation=generation)
                elif user_emb is not None:
                    scores = user_emb[chunk] @ item_emb.T
                else:
                    with self._model_lock:
                        scores = self._model.score_users(chunk)
                return rank_items_block(scores, exclusion, chunk, k=k)

            itemsize = (user_emb.dtype.itemsize if user_emb is not None
                        else 8)
            cache = (self._model.inference_cache()
                     if self._model is not None
                     and hasattr(self._model, "inference_cache")
                     else nullcontext())
            with cache:
                blocks = self._executor.map_chunks(shard_fn, user_ids,
                                                   self.num_items,
                                                   itemsize=itemsize)
            self._requests.inc()
            self._users_served.inc(len(user_ids))
            if not blocks:
                return np.empty((0, k), dtype=np.int64)
            return np.concatenate(blocks, axis=0)

    # ------------------------------------------------------------------ #
    # incremental updates
    # ------------------------------------------------------------------ #
    def partial_update(self, users: np.ndarray, items: np.ndarray,
                       refresh_embeddings: bool = True) -> Dict[str, int]:
        """Fold new ``(user, item)`` interactions into the service.

        Always extends the seen-item exclusion CSR (idempotently — edges
        already known are no-ops); on the embeddings backend the affected
        users' cached vectors are additionally refreshed by the
        degree-weighted fold-in described in the module docstring (skip
        with ``refresh_embeddings=False``).

        Returns ``{"new_edges": ..., "refreshed_users": ...}``.
        """
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        items = np.atleast_1d(np.asarray(items, dtype=np.int64))
        if users.shape != items.shape:
            raise ValueError("users and items must have the same length")
        if len(users) == 0:
            return {"new_edges": 0, "refreshed_users": 0}
        if users.min() < 0 or users.max() >= self.num_users:
            raise ValueError("user id out of range")
        if items.min() < 0 or items.max() >= self.num_items:
            raise ValueError("item id out of range")

        with self._update_lock, span("serve.partial_update",
                                     edges=len(users)):
            old = self._exclusion
            known = np.asarray(old[users, items]).ravel() != 0
            users, items = users[~known], items[~known]
            # dedupe repeats within this batch
            if len(users):
                keys = users * self.num_items + items
                _, first = np.unique(keys, return_index=True)
                users, items = users[np.sort(first)], items[np.sort(first)]
            if len(users) == 0:
                return {"new_edges": 0, "refreshed_users": 0}

            refreshed = 0
            if self._user_emb is not None and refresh_embeddings:
                # copy-on-write: mutate a private copy, never the shared
                # (possibly memory-mapped, read-only) table — concurrent
                # requests keep scoring their captured generation and
                # mmap'd snapshots stay pristine on disk
                degrees = np.diff(old.indptr)
                affected, inverse = np.unique(users, return_inverse=True)
                dim = self._item_emb.shape[1]
                sums = np.zeros((len(affected), dim),
                                dtype=self._item_emb.dtype)
                np.add.at(sums, inverse, self._item_emb[items])
                counts = np.bincount(inverse,
                                     minlength=len(affected)).astype(
                                         self._user_emb.dtype)
                deg = degrees[affected].astype(self._user_emb.dtype)
                old_vecs = self._user_emb[affected]
                # np.asarray first: .copy() alone would keep the memmap
                # subclass on mapped tables even though the data moved
                self._user_emb = np.asarray(self._user_emb).copy()
                self._user_emb[affected] = ((deg[:, None] * old_vecs + sums)
                                            / (deg + counts)[:, None])
                refreshed = len(affected)
                if self._ann_index is not None:
                    # user vectors moved: drop every cached probe row.
                    # In-flight requests hold the pre-bump generation,
                    # so even a late cache write of theirs stays dead
                    self._ann_index.invalidate()

            extra = sp.csr_matrix(
                (np.ones(len(users)), (users, items)),
                shape=(self.num_users, self.num_items))
            updated = (old + extra).tocsr()
            updated.data = np.ones_like(updated.data)
            updated.sort_indices()
            self._exclusion = updated
            counter("serve.partial_updates",
                    help="partial_update() calls that added edges").inc()
            return {"new_edges": len(users), "refreshed_users": refreshed}

    # ------------------------------------------------------------------ #
    def seen_items_of(self, user: int) -> np.ndarray:
        """Current exclusion-list item ids for one user."""
        start, stop = self._exclusion.indptr[user:user + 2]
        return self._exclusion.indices[start:stop].copy()

    def stats(self) -> Dict[str, object]:
        """Operational summary (CLI / monitoring).

        ``requests_served`` / ``latency_seconds`` come from the
        process-wide :mod:`repro.obs` metrics registry, so they aggregate
        over every service instance in the process (the registry is a
        process-level sink by design).
        """
        stats = {
            "model": self.model_name,
            "backend": self.backend,
            "num_users": self.num_users,
            "num_items": self.num_items,
            "seen_interactions": int(self._exclusion.nnz),
            "num_workers": self._executor.num_workers,
            "chunk_size": self._executor.resolve_chunk_size(
                self.num_items,
                itemsize=(self._user_emb.dtype.itemsize
                          if self._user_emb is not None else 8)),
            "requests_served": int(self._requests.value),
            "latency_seconds": self._latency.percentiles(),
        }
        if self._ann_index is not None:
            stats["ann"] = self._ann_index.stats()
        return stats

    def close(self) -> None:
        """Release the shard executor's thread pool."""
        self._executor.close()

    def __enter__(self) -> "RecommenderService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
