"""Approximate top-k retrieval: an IVF index over the item embeddings.

The exact serving path scores a request block with one GEMM against
*every* item — fine at gowalla scale, a dead end at millions of items
under heavy traffic.  :class:`IVFIndex` is the approximate alternative
behind ``RecommenderService(backend="ann")``:

* **Build** (at snapshot time, or on the fly for pre-v3 artifacts):
  seeded Lloyd k-means partitions the item embeddings into ``nlist``
  clusters; the index stores the centroid table plus a CSR-style member
  list (``indptr`` / ``items``).  Everything is deterministic given
  ``(item_embeddings, ANNConfig)``, so an index rebuilt from a snapshot
  equals the one stored in it.
* **Search**: a request block scores its users against the centroids
  (one small GEMM), probes the best clusters per user, and computes
  exact dot products only for the member items of the probed clusters —
  the returned block is a full-width score matrix with ``-inf`` outside
  the candidate set, so ranking, seen-item masking and tie handling go
  through the very same :func:`repro.eval.rank_items_block` kernel the
  exact path uses.
* **Adaptive probing**: clusters are probed deepest-first until the
  candidate pool covers ``max(min_candidates, k + max seen items in the
  block)``.  The floor guarantees two things: at small catalogs the
  index degrades gracefully toward exact scanning (an approximation is
  pointless below ~``min_candidates`` items), and after masking there
  are always at least ``k`` finite candidates per user, so an ANN top-k
  can never leak a seen item ahead of a real candidate.  Users whose
  probed pool still falls short (pathological cluster skew) fall back to
  an exact full-width row — correctness never depends on cluster
  balance.
* **Probe cache**: the per-user "which clusters to probe" row depends
  only on the user's embedding and the centroids, so repeat queries for
  hot users skip the centroid GEMM.  Cache rows are stamped with the
  index **generation**; ``invalidate()`` bumps the generation, which
  atomically invalidates every cached row — this is how
  ``partial_update``'s fold-in (which moves user vectors) keeps the
  index from answering with pre-update probes.  Writers stamp rows with
  the generation they captured *before* computing, so a fold-in racing
  a request can never resurrect a stale row.

Recall is pinned by tests, not hope: the bench asserts recall@20 >=
:data:`DEFAULT_RECALL_BUDGET` against the exact path on the gowalla
profile, the property suite (``tests/test_property_serve.py``) checks
the containment/exclusion invariants on random snapshots, and the
latency load test records exact-vs-ANN percentiles in
``BENCH_hotpath.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

#: recall@k parity budget the ANN backend commits to against the exact
#: path (asserted by the serving benches and the million-user load test)
DEFAULT_RECALL_BUDGET = 0.95

#: widest per-user probe row the cache will hold; deeper probes are
#: computed fresh (and not cached) — keeps the cache O(16 ints)/user
DEFAULT_PROBE_CACHE_WIDTH = 16

#: the probe cache is skipped entirely above this user count (the table
#: would cost more resident memory than the centroid GEMMs it saves)
MAX_PROBE_CACHE_USERS = 4_000_000


@dataclass(frozen=True)
class ANNConfig:
    """Build/search knobs for :class:`IVFIndex`.

    ``nlist=None`` sizes the cluster count as ``round(sqrt(num_items))``
    (the classic IVF balance point: probing cost ~ scanning cost);
    ``min_candidates=None`` floors the per-query candidate pool at
    ``max(128, 14 * k)`` — sized so the default clears the recall@20
    budget with margin on trained gowalla-scale embeddings, and below
    that many items the index degrades to an exact scan by
    construction, which is what makes tiny catalogs safe.
    """

    nlist: Optional[int] = None
    nprobe: int = 1
    min_candidates: Optional[int] = None
    kmeans_iters: int = 8
    seed: int = 0

    def resolve_nlist(self, num_items: int) -> int:
        """Cluster count actually used for a catalog of ``num_items``."""
        nlist = self.nlist
        if nlist is None:
            nlist = int(round(np.sqrt(num_items)))
        return max(1, min(int(nlist), int(num_items)))

    def resolve_min_candidates(self, k: int) -> int:
        """Candidate-pool floor for a top-``k`` query."""
        if self.min_candidates is not None:
            return max(int(self.min_candidates), int(k))
        return max(128, 14 * int(k))

    def to_meta(self) -> Dict:
        """JSON-ready form stored in the snapshot ``meta_json``."""
        return {"nlist": self.nlist, "nprobe": self.nprobe,
                "min_candidates": self.min_candidates,
                "kmeans_iters": self.kmeans_iters, "seed": self.seed}

    @classmethod
    def from_meta(cls, payload: Optional[Dict]) -> "ANNConfig":
        """Inverse of :meth:`to_meta` (missing/None payload = defaults)."""
        payload = payload or {}
        known = {f: payload[f] for f in ("nlist", "nprobe",
                                         "min_candidates", "kmeans_iters",
                                         "seed") if f in payload
                 and payload[f] is not None}
        return cls(**known)


def _kmeans(points: np.ndarray, nlist: int, iters: int,
            rng: np.random.Generator) -> np.ndarray:
    """Seeded Lloyd k-means; returns ``(nlist, dim)`` centroids.

    Deterministic given ``(points, nlist, iters, rng state)``.  Empty
    clusters keep their previous centroid (they simply hold no members
    and are never probed), so the iteration never diverges on degenerate
    inputs.
    """
    n = len(points)
    centroids = points[rng.choice(n, size=nlist, replace=False)].copy()
    if nlist == 1:
        return points.mean(axis=0, keepdims=True).astype(points.dtype)
    for _ in range(max(0, int(iters))):
        # argmin ||x - c||^2 == argmin (||c||^2 - 2 x.c); ||x||^2 is
        # constant per row and drops out
        affinity = points @ centroids.T
        norms = np.einsum("ij,ij->i", centroids, centroids)
        assign = np.argmax(affinity - 0.5 * norms[None, :], axis=1)
        counts = np.bincount(assign, minlength=nlist)
        sums = np.zeros_like(centroids, dtype=np.float64)
        np.add.at(sums, assign, points.astype(np.float64, copy=False))
        occupied = counts > 0
        centroids[occupied] = (sums[occupied]
                               / counts[occupied, None]).astype(
                                   centroids.dtype)
    return centroids


def _assign_members(item_embeddings: np.ndarray, centroids: np.ndarray):
    """Final cluster assignment as a CSR member list ``(indptr, items)``."""
    norms = np.einsum("ij,ij->i", centroids, centroids)
    assign = np.argmax(item_embeddings @ centroids.T
                       - 0.5 * norms[None, :], axis=1)
    order = np.argsort(assign, kind="stable")
    counts = np.bincount(assign, minlength=len(centroids))
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return indptr, order.astype(np.int64)


class IVFIndex:
    """Inverted-file ANN index over item embeddings (module docstring).

    Construct with :meth:`build` (runs k-means) or :meth:`from_arrays`
    (restores the arrays a snapshot stored).  The index holds only the
    centroid table and the member CSR — item vectors themselves are
    passed at query time, so a memory-mapped item table stays zero-copy.
    """

    def __init__(self, centroids: np.ndarray, indptr: np.ndarray,
                 items: np.ndarray, config: ANNConfig):
        self.centroids = np.ascontiguousarray(centroids)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.items = np.asarray(items, dtype=np.int64)
        self.sizes = np.diff(self.indptr)
        self.config = config
        self.num_items = int(len(self.items))
        #: bumped by :meth:`invalidate`; probe-cache rows from an older
        #: generation are dead (see the module docstring's race note)
        self.generation = 0
        self._cache_ids: Optional[np.ndarray] = None
        self._cache_gen: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, item_embeddings: np.ndarray,
              config: Optional[ANNConfig] = None) -> "IVFIndex":
        """K-means the item table into an index (deterministic per config)."""
        config = config or ANNConfig()
        item_embeddings = np.ascontiguousarray(item_embeddings)
        nlist = config.resolve_nlist(len(item_embeddings))
        rng = np.random.default_rng(config.seed)
        centroids = _kmeans(item_embeddings, nlist, config.kmeans_iters,
                            rng)
        indptr, items = _assign_members(item_embeddings, centroids)
        return cls(centroids, indptr, items, config)

    @classmethod
    def from_arrays(cls, centroids: np.ndarray, indptr: np.ndarray,
                    items: np.ndarray,
                    config: Optional[ANNConfig] = None) -> "IVFIndex":
        """Restore an index from snapshot arrays (no k-means)."""
        return cls(centroids, indptr, items, config or ANNConfig())

    def arrays(self) -> Dict[str, np.ndarray]:
        """The persistable arrays (snapshot entries ``ann::<name>``)."""
        return {"centroids": self.centroids, "indptr": self.indptr,
                "items": self.items}

    @property
    def nlist(self) -> int:
        """Number of clusters (including empty ones)."""
        return int(len(self.centroids))

    # ------------------------------------------------------------------ #
    # probe cache
    # ------------------------------------------------------------------ #
    def enable_probe_cache(self, num_users: int) -> None:
        """Allocate the per-user probe cache (no-op above the size cap)."""
        if num_users <= 0 or num_users > MAX_PROBE_CACHE_USERS:
            return
        width = min(self.nlist, DEFAULT_PROBE_CACHE_WIDTH)
        self._cache_ids = np.zeros((int(num_users), width), dtype=np.int32)
        self._cache_gen = np.full(int(num_users), -1, dtype=np.int64)

    def invalidate(self) -> None:
        """Drop every cached probe row (user embeddings changed).

        A single generation bump: rows written by requests that captured
        the old generation can never validate again, even if their write
        lands after this call.
        """
        self.generation += 1

    @property
    def probe_cache_enabled(self) -> bool:
        """Whether the per-user probe cache is allocated."""
        return self._cache_ids is not None

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #
    def _probe_ids(self, user_vecs: np.ndarray, user_ids: np.ndarray,
                   probes: int, generation: int) -> np.ndarray:
        """Top-``probes`` cluster ids per user, cache-assisted.

        ``generation`` is the index generation captured with the
        embedding tables at request start; cache rows are only read and
        written under that stamp.
        """
        cache_ids, cache_gen = self._cache_ids, self._cache_gen
        cacheable = (cache_ids is not None
                     and probes <= cache_ids.shape[1])
        if cacheable:
            fresh = cache_gen[user_ids] != generation
        else:
            fresh = np.ones(len(user_ids), dtype=bool)
        sel = np.empty((len(user_ids), probes), dtype=np.int64)
        if cacheable and not fresh.all():
            sel[~fresh] = cache_ids[user_ids[~fresh], :probes]
        if fresh.any():
            vecs = user_vecs[fresh]
            scores = vecs @ self.centroids.T
            depth = (min(self.nlist, cache_ids.shape[1]) if cacheable
                     else probes)
            depth = max(depth, probes)
            order = np.argsort(-scores, kind="stable", axis=1)[:, :depth]
            sel[fresh] = order[:, :probes]
            if cacheable:
                rows = user_ids[fresh]
                cache_ids[rows, :order.shape[1]] = order
                # stamp only after the row content is in place; an
                # invalidate() racing this write bumped the index
                # generation already, so this stamp stays dead
                cache_gen[rows] = generation
        return sel

    def candidate_scores(self, user_embeddings: np.ndarray,
                         item_embeddings: np.ndarray,
                         user_ids: np.ndarray, k: int,
                         seen_counts: Optional[np.ndarray] = None,
                         generation: Optional[int] = None) -> np.ndarray:
        """``(len(user_ids), num_items)`` scores, ``-inf`` off-candidate.

        ``seen_counts`` (per-user exclusion sizes for the block) widens
        the pool so masking can never starve the top-k; ``generation``
        is the stamp captured with the embedding tables (defaults to the
        current one).  The returned block feeds straight into
        :func:`repro.eval.rank_items_block`.
        """
        if generation is None:
            generation = self.generation
        user_ids = np.asarray(user_ids, dtype=np.int64)
        batch = len(user_ids)
        dtype = user_embeddings.dtype
        out = np.full((batch, self.num_items), -np.inf, dtype=dtype)
        if batch == 0:
            return out
        user_vecs = np.ascontiguousarray(user_embeddings[user_ids])

        k = int(k)
        need = self.config.resolve_min_candidates(k)
        max_seen = int(np.max(seen_counts)) if seen_counts is not None \
            and len(seen_counts) else 0
        need = max(need, k + max_seen)
        if need >= self.num_items:
            # the floor covers the catalog: exact scan, not approximation
            out[:] = user_vecs @ item_embeddings.T
            return out

        avg = max(1.0, self.num_items / max(1, self.nlist))
        probes = int(np.ceil(need / avg)) + 1
        probes = min(self.nlist, max(probes, int(self.config.nprobe)))

        sel = self._probe_ids(user_vecs, user_ids, probes, generation)
        lens = self.sizes[sel.ravel()]                    # (batch*probes,)
        per_user = lens.reshape(batch, probes).sum(axis=1)
        total = int(lens.sum())
        if total:
            starts = self.indptr[sel.ravel()]
            bounds = np.concatenate([[0], np.cumsum(lens)])
            flat = (np.arange(total)
                    - np.repeat(bounds[:-1], lens)
                    + np.repeat(starts, lens))
            cols = self.items[flat]
            rows = np.repeat(np.arange(batch), per_user)
            vals = np.einsum("nd,nd->n", user_vecs[rows],
                             item_embeddings[cols])
            out[rows, cols] = vals

        floor = k + (np.asarray(seen_counts, dtype=np.int64)
                     if seen_counts is not None else 0)
        short = np.flatnonzero(per_user < floor)
        if len(short):
            # cluster skew starved these users' pools; exact rows keep
            # the never-leak-a-seen-item guarantee unconditional
            out[short] = user_vecs[short] @ item_embeddings.T
        return out

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Operational summary (surfaces in ``RecommenderService.stats``)."""
        occupied = int(np.count_nonzero(self.sizes))
        return {"nlist": self.nlist, "occupied_clusters": occupied,
                "num_items": self.num_items,
                "probe_cache": self.probe_cache_enabled,
                "generation": self.generation}


def recall_at_k(approx: np.ndarray, exact: np.ndarray) -> float:
    """Mean fraction of the exact top-k recovered by the approximate lists.

    Both arguments are ``(num_users, k)`` item-id arrays (same k); this
    is the recall@k parity metric the ANN budget is asserted on.
    """
    approx = np.asarray(approx)
    exact = np.asarray(exact)
    if approx.shape != exact.shape:
        raise ValueError(f"shape mismatch {approx.shape} vs {exact.shape}")
    if approx.size == 0:
        return 1.0
    hits = 0
    for row_a, row_e in zip(approx, exact):
        hits += len(np.intersect1d(row_a, row_e, assume_unique=False))
    return hits / exact.size
