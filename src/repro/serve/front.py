"""Async request front: batching window + backpressure for a service.

A :class:`RecommenderService` is fastest when requests arrive in blocks
— one GEMM (or one index probe) amortizes over many users.  Production
traffic arrives as many small requests instead.
:class:`AsyncRequestFront` bridges the two:

* ``submit(user_ids)`` enqueues a request and immediately returns a
  :class:`concurrent.futures.Future`; a background dispatcher thread
  collects everything that arrives within a **batching window**
  (``window_ms``, measured with ``time.monotonic``), concatenates the
  user ids, answers them with *one* ``service.recommend`` call and
  slices the block back onto the per-request futures.
* **Backpressure**: at most ``max_pending_users`` user rows may be
  queued or in flight; a ``submit`` that would exceed the cap fails
  fast with :class:`BackpressureError` (and bumps the
  ``serve.front.rejected`` counter) instead of growing an unbounded
  queue.  Callers are expected to retry with jitter or shed load.
* **Observability** (:mod:`repro.obs`): per-request queue-to-answer
  latency lands in the ``serve.front.request_seconds`` histogram (the
  load test reads its p50/p95/p99), batch shapes in
  ``serve.front.batch_users``, and the dispatcher keeps the
  ``serve.front.queue_depth`` gauge current.  The underlying
  ``service.recommend`` time still lands in ``serve.request_seconds``
  as always.

The front preserves the service's answer semantics exactly — batching
changes *when* a request is answered, never *what* it is answered with:
requests are never split across batches and results are sliced from the
batched block in submission order.  ``k`` and ``exclude_seen`` are
front-level knobs because every request in a batch must share them.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import List, Optional, Sequence

import numpy as np

from ..obs import counter, gauge, histogram

__all__ = ["AsyncRequestFront", "BackpressureError"]


class BackpressureError(RuntimeError):
    """Raised by ``submit`` when the pending-user cap would be exceeded."""


class _Pending:
    """One enqueued request: its user ids, future, and enqueue time."""

    __slots__ = ("user_ids", "future", "enqueued_at")

    def __init__(self, user_ids: np.ndarray, future: Future,
                 enqueued_at: float):
        self.user_ids = user_ids
        self.future = future
        self.enqueued_at = enqueued_at


class AsyncRequestFront:
    """Batching/backpressure front over a :class:`RecommenderService`.

    Parameters
    ----------
    service:
        The service to answer through (not owned; closing the front
        does not close the service).
    window_ms:
        Batching window: after the first request of a batch arrives,
        the dispatcher waits at most this long for more before
        answering.  ``0`` answers every wakeup immediately (lowest
        latency, least batching).
    max_batch_users:
        Per-batch user cap; the dispatcher answers early once the
        queued requests cover at least this many users.
    max_pending_users:
        Backpressure cap on user rows queued + in flight.
    k, exclude_seen:
        Passed through to every ``service.recommend`` call (all
        requests of a batch necessarily share them).
    """

    def __init__(self, service, *, window_ms: float = 2.0,
                 max_batch_users: int = 8192,
                 max_pending_users: int = 65536,
                 k: int = 20, exclude_seen: bool = True):
        if window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {window_ms}")
        if max_batch_users < 1 or max_pending_users < 1:
            raise ValueError("batch and pending caps must be >= 1")
        self._service = service
        self._window = window_ms / 1000.0
        self._max_batch_users = int(max_batch_users)
        self._max_pending_users = int(max_pending_users)
        self._k = int(k)
        self._exclude_seen = bool(exclude_seen)
        self._queue: deque = deque()
        self._pending_users = 0
        self._closed = False
        self._cond = threading.Condition()
        self._latency = histogram(
            "serve.front.request_seconds",
            help="submit()-to-answer wall time in seconds")
        self._batch_sizes = histogram(
            "serve.front.batch_users",
            help="user rows answered per dispatched batch",
            buckets=(1, 8, 64, 256, 1024, 4096, 16384, 65536))
        self._rejected = counter(
            "serve.front.rejected",
            help="submits refused by the backpressure cap")
        self._depth = gauge("serve.front.queue_depth",
                            help="user rows queued or in flight")
        self._thread = threading.Thread(target=self._dispatch_loop,
                                        name="serve-front", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    def submit(self, user_ids: Sequence[int]) -> Future:
        """Enqueue one request; the future resolves to a ``(n, k)`` block.

        Raises :class:`BackpressureError` when accepting the request
        would put more than ``max_pending_users`` user rows in the
        queue, and :class:`RuntimeError` after :meth:`close`.
        """
        user_ids = np.atleast_1d(np.asarray(user_ids, dtype=np.int64))
        future: Future = Future()
        if len(user_ids) == 0:
            future.set_result(np.empty((0, self._k), dtype=np.int64))
            return future
        with self._cond:
            if self._closed:
                raise RuntimeError("front is closed")
            if self._pending_users + len(user_ids) > self._max_pending_users:
                self._rejected.inc()
                raise BackpressureError(
                    f"{self._pending_users} user rows pending, request "
                    f"for {len(user_ids)} more exceeds the cap of "
                    f"{self._max_pending_users}")
            self._queue.append(_Pending(user_ids, future,
                                        time.monotonic()))
            self._pending_users += len(user_ids)
            self._depth.set(self._pending_users)
            self._cond.notify()
        return future

    def recommend(self, user_ids: Sequence[int]) -> np.ndarray:
        """Synchronous convenience: ``submit(user_ids).result()``."""
        return self.submit(user_ids).result()

    @property
    def pending_users(self) -> int:
        """User rows currently queued or in flight."""
        with self._cond:
            return self._pending_users

    # ------------------------------------------------------------------ #
    # dispatcher side
    # ------------------------------------------------------------------ #
    def _collect_batch(self) -> Optional[List[_Pending]]:
        """Block for the next batch (None = closed and drained)."""
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if not self._queue:
                return None
            # the window opens at the first queued request; keep
            # collecting arrivals until it closes or the batch is full
            deadline = time.monotonic() + self._window
            while not self._closed:
                queued = sum(len(p.user_ids) for p in self._queue)
                remaining = deadline - time.monotonic()
                if queued >= self._max_batch_users or remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            batch: List[_Pending] = []
            users = 0
            while self._queue:
                nxt = len(self._queue[0].user_ids)
                if batch and users + nxt > self._max_batch_users:
                    break
                pending = self._queue.popleft()
                batch.append(pending)
                users += nxt
            return batch

    def _answer(self, batch: List[_Pending]) -> None:
        """Answer one batch with a single ``service.recommend`` call."""
        ids = np.concatenate([p.user_ids for p in batch])
        self._batch_sizes.observe(len(ids))
        try:
            block = self._service.recommend(ids, k=self._k,
                                            exclude_seen=self._exclude_seen)
        except BaseException as exc:
            for pending in batch:
                pending.future.set_exception(exc)
            return
        finally:
            with self._cond:
                self._pending_users -= len(ids)
                self._depth.set(self._pending_users)
        offset = 0
        done = time.monotonic()
        for pending in batch:
            n = len(pending.user_ids)
            pending.future.set_result(block[offset:offset + n])
            self._latency.observe(done - pending.enqueued_at)
            offset += n

    def _dispatch_loop(self) -> None:
        """Dispatcher thread body: collect, answer, repeat until drained."""
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._answer(batch)

    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting requests, answer what is queued, join the thread."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "AsyncRequestFront":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
