"""The sharded request executor: a worker pool over user-id chunks.

The chunked scoring contract (``scorer(user_ids) -> (len(user_ids),
num_items)``) makes a block of request users the natural shard unit —
the same unit the chunked evaluator ranks in.  :class:`ShardedExecutor`
partitions a request's user ids into contiguous chunks and maps a shard
function over them, either inline (``num_workers=1``) or on a persistent
thread pool.  Chunk boundaries are **identical regardless of worker
count**, and results are reassembled in request order, so the N-worker
path returns exactly what the single-worker path returns.

Threads (not processes) are the right pool here: the shard work is
numpy scoring / masking / top-k, which releases the GIL inside BLAS and
the C ufunc loops, and the cached embedding arrays are shared read-only
without pickling.

Chunk sizing defaults to the same memory-budget rule the evaluator uses
(:func:`repro.eval.auto_chunk_size`): ``chunk = budget_bytes /
(num_items * itemsize)``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..eval import auto_chunk_size


class ShardedExecutor:
    """Map a shard function over user-id chunks, optionally in parallel.

    Parameters
    ----------
    num_workers:
        Thread-pool width; ``1`` (the default) runs shards inline with
        zero pool overhead.
    chunk_size:
        Users per shard.  ``None`` auto-sizes from the memory budget via
        :func:`repro.eval.auto_chunk_size` at call time (when the item
        count is known).
    """

    def __init__(self, num_workers: int = 1,
                 chunk_size: Optional[int] = None):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self.chunk_size = chunk_size
        self._pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ #
    def resolve_chunk_size(self, num_items: int, itemsize: int = 8) -> int:
        """The shard width used for a catalog of ``num_items`` items."""
        if self.chunk_size is not None:
            return max(1, int(self.chunk_size))
        return auto_chunk_size(num_items, itemsize=itemsize)

    def shard(self, user_ids: np.ndarray, num_items: int,
              itemsize: int = 8) -> List[np.ndarray]:
        """Partition ``user_ids`` into contiguous chunks (request order)."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        chunk = self.resolve_chunk_size(num_items, itemsize=itemsize)
        return [user_ids[start:start + chunk]
                for start in range(0, len(user_ids), chunk)]

    def map_chunks(self, fn: Callable[[np.ndarray], np.ndarray],
                   user_ids: np.ndarray, num_items: int,
                   itemsize: int = 8) -> List[np.ndarray]:
        """``[fn(chunk) for chunk in shards]``, possibly concurrently.

        Results come back in shard order; with ``num_workers == 1`` (or a
        single shard) everything runs inline on the calling thread.
        """
        chunks = self.shard(user_ids, num_items, itemsize=itemsize)
        if self.num_workers == 1 or len(chunks) <= 1:
            return [fn(chunk) for chunk in chunks]
        return list(self._ensure_pool().map(fn, chunks))

    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="repro-serve")
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent); the executor stays usable."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def partition_users(user_ids: Sequence[int], num_shards: int
                    ) -> List[np.ndarray]:
    """Split ``user_ids`` into ``num_shards`` near-equal contiguous shards.

    A convenience for offline fan-out (e.g. precomputing recommendation
    lists shard-by-shard); online serving uses the memory-budget chunks
    of :class:`ShardedExecutor` instead.
    """
    user_ids = np.asarray(user_ids, dtype=np.int64)
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return [shard for shard in np.array_split(user_ids, num_shards)
            if len(shard)]
