"""Differentiable graph sampling with reparameterization (paper Eq 5).

Given per-edge keep logits from the augmentor, draw a *relaxed Bernoulli*
score per edge:

    ā = σ( (logit(p) + log ε' - log(1-ε')) / τ1 ),  ε' ~ Uniform(0,1)

then hard-threshold at ``ξ``: edges with ``ā > ξ`` stay in the augmented
view *with their soft weight* (a straight-through style estimator — the
surviving weights keep the gradient path to the augmentor), others are
dropped.  The kept weights are then symmetrically degree-normalized with
degrees computed from the current detached weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .augmentor import CandidateEdges
from ..autograd import Tensor, functional as F, weighted_spmm
from ..graph import normalized_edge_weights


@dataclass
class SampledView:
    """One sampled augmented graph ``G'`` in unified-node COO form."""

    rows: np.ndarray            # both directions (symmetric)
    cols: np.ndarray
    weights: Tensor             # normalized soft weights, grad -> augmentor
    keep_mask: np.ndarray       # which candidates survived thresholding
    soft_scores: np.ndarray     # detached relaxed-Bernoulli scores ā
    num_nodes: int

    def propagate_fn(self):
        """Return ``h -> Ã' h`` for this view (used by the mixhop encoder)."""
        rows, cols, weights, n = (self.rows, self.cols, self.weights,
                                  self.num_nodes)

        def fn(h: Tensor) -> Tensor:
            return weighted_spmm(rows, cols, weights, (n, n), h)

        return fn


def sample_view(edge_logits: Tensor, candidates: CandidateEdges,
                num_nodes: int, rng: np.random.Generator,
                threshold: float = 0.2,
                gumbel_temperature: float = 0.5) -> SampledView:
    """Draw one reparameterized augmented graph from edge keep logits.

    Notes
    -----
    * If thresholding would drop *every* edge, the highest-scoring edge is
      retained so the view never degenerates to an empty graph.
    * The returned COO pattern contains both directions of each kept edge
      (the unified adjacency is symmetric).
    """
    relaxed = F.gumbel_sigmoid(edge_logits, rng,
                               temperature=gumbel_temperature)
    keep = relaxed.data > threshold
    if not keep.any():
        keep[int(np.argmax(relaxed.data))] = True
    kept_idx = np.where(keep)[0]

    kept_weights = relaxed.take_rows(kept_idx)
    u = candidates.user_nodes[kept_idx]
    v = candidates.item_nodes[kept_idx]

    # symmetric normalization with detached degrees
    norm = normalized_edge_weights(u, v, kept_weights.data, num_nodes)
    scale = np.divide(norm, kept_weights.data,
                      out=np.zeros_like(norm),
                      where=kept_weights.data > 1e-12)
    normalized = kept_weights * scale

    rows = np.concatenate([u, v])
    cols = np.concatenate([v, u])
    from ..autograd import concat as tensor_concat
    weights = tensor_concat([normalized, normalized], axis=0)
    return SampledView(rows=rows, cols=cols, weights=weights,
                       keep_mask=keep, soft_scores=relaxed.data.copy(),
                       num_nodes=num_nodes)
