"""``repro.core`` — the paper's contribution: GraphAug and its components."""

from .augmentor import (CandidateEdges, LearnableAugmentor,
                        build_candidate_edges)
from .gib import gib_kl_term, gib_prediction_term, pool_gaussian_parameters
from .mixhop import MixhopEncoder, MixhopLayer, MixingLayer
from .sampling import SampledView, sample_view
from .graphaug import GraphAug, make_graphaug_variant

__all__ = [
    "CandidateEdges", "LearnableAugmentor", "build_candidate_edges",
    "gib_kl_term", "gib_prediction_term", "pool_gaussian_parameters",
    "MixhopEncoder", "MixhopLayer", "MixingLayer",
    "SampledView", "sample_view",
    "GraphAug", "make_graphaug_variant",
]
