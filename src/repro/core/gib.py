"""The GIB-regularized objective (paper Sec III-B.3, Eqs 6-10).

``L_GIB = -I(Z'; Y) + β I(Z'; A)`` is intractable; the paper optimizes

* a **lower bound** on ``I(Z'; Y)`` — the variational prediction term
  ``E[log q(Y | Z')]`` (Lemma 2).  With Y the interaction labels and the
  pairwise training schema, ``-log q(Y|Z')`` is the BPR negative
  log-likelihood evaluated with the *view* embeddings ``Z'``;
* an **upper bound** on ``I(Z'; A)`` — the Gaussian KL between
  ``N(μ(A), η(A)²)`` and the marginal ``r(Z') = N(0, I)`` (Lemma 1), where
  ``(μ, η)`` come from mean-pooling the embeddings of the three views
  ``{Z, Z', Z''}`` and splitting the feature dimension in half (Eq 10).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..autograd import Tensor, functional as F


def pool_gaussian_parameters(views: Sequence[Tensor]
                             ) -> Tuple[Tensor, Tensor]:
    """Eq 10: mean-pool view embeddings; split features into (mu, log_var).

    The second half of the pooled features parameterizes the *log-variance*
    (the paper's η is a standard deviation; working in log-variance keeps
    the KL numerically stable and positive-definite by construction).
    """
    if not views:
        raise ValueError("need at least one view")
    dim = views[0].shape[1]
    if dim % 2 != 0:
        raise ValueError("embedding dim must be even to split into (mu, eta)")
    pooled = sum(views[1:], views[0]) * (1.0 / len(views))
    half = dim // 2
    mu = pooled[:, np.arange(half)]
    log_var = pooled[:, np.arange(half, dim)].clamp(low=-6.0, high=6.0)
    return mu, log_var


def gib_kl_term(views: Sequence[Tensor]) -> Tensor:
    """The upper bound on ``I(Z'; A)``: KL(N(mu, var) || N(0, I))."""
    mu, log_var = pool_gaussian_parameters(views)
    return F.gaussian_kl(mu, log_var)


def gib_prediction_term(user_view: Tensor, item_view: Tensor,
                        users: np.ndarray, pos: np.ndarray,
                        neg: np.ndarray) -> Tensor:
    """The lower bound on ``I(Z'; Y)``: ``-log q(Y | Z')`` as pairwise NLL."""
    u = user_view.take_rows(users)
    vp = item_view.take_rows(pos)
    vn = item_view.take_rows(neg)
    return F.bpr_loss((u * vp).sum(axis=1), (u * vn).sum(axis=1))
