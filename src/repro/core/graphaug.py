"""GraphAug — the paper's model (Sec III, Algorithm 1).

Wiring of the three components:

1. :class:`~repro.core.augmentor.LearnableAugmentor` scores candidate edges
   from mixhop-encoded, noise-perturbed node embeddings (Eq 4);
2. :func:`~repro.core.sampling.sample_view` draws two differentiable
   augmented graphs ``G'``/``G''`` via Gumbel reparameterization and
   thresholding at ``ξ`` (Eq 5);
3. the :class:`~repro.core.mixhop.MixhopEncoder` encodes the original graph
   and both views (Eqs 11-13);
4. the joint objective (Eq 16) combines BPR on the original graph, the GIB
   surrogate ``-log q(Y|Z') + β KL`` on the views (Eq 9), InfoNCE between
   the views (Eq 14), and weight decay.

Ablation switches (used by the Fig 2 / Table III benches):

* ``use_mixhop=False`` — vanilla LightGCN-style propagation ("w/o Mixhop");
* ``use_gib=False`` — drop the GIB surrogate ("w/o GIB");
* ``use_cl=False`` — drop the InfoNCE term; GIB still regularizes the BPR
  optimization, exactly the paper's "w/o CL" variant.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from .augmentor import CandidateEdges, LearnableAugmentor, \
    build_candidate_edges
from .gib import gib_kl_term, gib_prediction_term
from .mixhop import MixhopEncoder
from .sampling import SampledView, sample_view
from ..autograd import Tensor, no_grad, spmm, functional as F
from ..graph import symmetric_normalize
from ..models.base import GraphRecommender, light_gcn_propagate
from ..models.registry import MODEL_REGISTRY


@MODEL_REGISTRY.register("graphaug")
class GraphAug(GraphRecommender):
    """The paper's model: learnable GIB-regularized graph augmentation."""
    name = "graphaug"

    #: Eq 16 weight on the whole GIB surrogate (β inside Eq 9 is
    #: ``config.gib_weight``, the Lagrange multiplier the paper tunes).
    gib_term_weight = 1.0
    #: fraction of |E| of higher-order candidate edges offered to the
    #: augmentor (the "additional edges" of Sec III-A).
    higher_order_budget = 0.5
    #: weight of the structure prior BCE(edge logits, observed) — the
    #: ``p(G)`` factor of the paper's augmented-graph probability
    #: decomposition (Sec III-B.1).  Without it, alignment-style contrast
    #: admits the degenerate optimum of dropping every edge.
    prior_weight = 0.2

    def __init__(self, dataset, config=None, seed: int = 0,
                 use_mixhop: bool = True, use_gib: bool = True,
                 use_cl: bool = True):
        super().__init__(dataset, config, seed)
        self.use_mixhop = use_mixhop
        self.use_gib = use_gib
        self.use_cl = use_cl
        dim = self.config.embedding_dim
        # In light mode hop 0 already carries the self signal, so the
        # propagation matrix omits self-loops (the LightGCN convention);
        # the dense Eq-11 encoder keeps them, per the paper's Sec III-C.
        self.mixhop_adj = symmetric_normalize(
            self.adjacency,
            add_self_loops=(self.config.mixhop_mode == "dense"))
        self.encoder = MixhopEncoder(dim, self.config.num_layers,
                                     self.config.mixhop_hops, self.init_rng,
                                     leaky_slope=self.config.leaky_slope,
                                     mode=self.config.mixhop_mode)
        self.augmentor = LearnableAugmentor(dim, self.init_rng)
        self.candidates = build_candidate_edges(
            dataset.train, self.aug_rng,
            higher_order_budget=self.higher_order_budget)

    # ------------------------------------------------------------------ #
    # encoding
    # ------------------------------------------------------------------ #
    def _encode(self, propagate_fn: Callable[[Tensor], Tensor]) -> Tensor:
        """Encode the unified node set over an arbitrary propagation op."""
        ego = self.ego_embeddings()
        if self.use_mixhop:
            return self.encoder(ego, propagate_fn)
        # "w/o Mixhop": LightGCN-style mean-of-layers propagation
        outputs = [ego]
        current = ego
        for _ in range(self.config.num_layers):
            current = propagate_fn(current)
            outputs.append(current)
        return sum(outputs[1:], outputs[0]) * (1.0 / len(outputs))

    def _encode_original(self) -> Tensor:
        adj = self.mixhop_adj if self.use_mixhop else self.norm_adj
        return self._encode(lambda h: spmm(adj, h))

    def propagate(self):
        return self.split_nodes(self._encode_original())

    # ------------------------------------------------------------------ #
    # augmentation
    # ------------------------------------------------------------------ #
    def sample_augmented_views(self, node_embeddings: Tensor
                               ) -> Tuple[SampledView, SampledView]:
        """Draw ``G'`` and ``G''`` from the augmentor's edge distribution."""
        logits = self.augmentor.edge_logits(node_embeddings,
                                            self.candidates, self.aug_rng)
        num_nodes = self.num_users + self.num_items
        view_a = sample_view(logits, self.candidates, num_nodes,
                             self.aug_rng,
                             threshold=self.config.edge_threshold,
                             gumbel_temperature=self.config
                             .gumbel_temperature)
        view_b = sample_view(logits, self.candidates, num_nodes,
                             self.aug_rng,
                             threshold=self.config.edge_threshold,
                             gumbel_temperature=self.config
                             .gumbel_temperature)
        return view_a, view_b

    def edge_keep_probabilities(self) -> np.ndarray:
        """Noise-free keep probabilities per candidate edge (Fig 6 probe)."""
        with no_grad():
            embeddings = self._encode_original()
            probs = self.augmentor.edge_probabilities(
                embeddings, self.candidates, self.aug_rng)
            return probs.data.copy()

    # ------------------------------------------------------------------ #
    # objective (Eq 16)
    # ------------------------------------------------------------------ #
    def loss(self, users, pos, neg):
        embeddings = self._encode_original()
        user_final, item_final = self.split_nodes(embeddings)
        total = (self.bpr_loss(user_final, item_final, users, pos, neg)
                 + self.embedding_reg(users, pos, neg))
        if not (self.use_gib or self.use_cl):
            return total

        logits = self.augmentor.edge_logits(embeddings, self.candidates,
                                            self.aug_rng)
        num_nodes = self.num_users + self.num_items
        view_a = sample_view(logits, self.candidates, num_nodes,
                             self.aug_rng, self.config.edge_threshold,
                             self.config.gumbel_temperature)
        view_b = sample_view(logits, self.candidates, num_nodes,
                             self.aug_rng, self.config.edge_threshold,
                             self.config.gumbel_temperature)
        z_a = self._encode(view_a.propagate_fn())
        z_b = self._encode(view_b.propagate_fn())

        # structure prior: the p(G) factor of Eq 4's decomposition —
        # observed edges anchor towards keep, higher-order candidates
        # towards drop, preventing the empty-graph degenerate optimum
        prior = F.binary_cross_entropy_with_logits(
            logits, self.candidates.observed.astype(np.float64))
        total = total + self.prior_weight * prior

        if self.use_gib:
            ua, ia = self.split_nodes(z_a)
            ub, ib = self.split_nodes(z_b)
            prediction = 0.5 * (
                gib_prediction_term(ua, ia, users, pos, neg)
                + gib_prediction_term(ub, ib, users, pos, neg))
            kl = gib_kl_term([embeddings, z_a, z_b])
            total = total + self.gib_term_weight * (
                prediction + self.config.gib_weight * kl)

        if self.use_cl:
            # contrast over the full node set: at this scale a full pass is
            # cheap and gives every node a consistency signal each step
            contrastive = F.decomposed_infonce_loss(
                z_a, z_b, self.config.temperature,
                self.config.negative_weight)
            total = total + self.config.ssl_weight * contrastive
        return total


def make_graphaug_variant(variant: str):
    """Factory for the paper's ablation variants (Fig 2 / Table III).

    ``variant`` is one of ``"full"``, ``"wo_mixhop"``, ``"wo_gib"``,
    ``"wo_cl"``; returns a constructor with the Recommender signature.
    """
    flags = {
        "full": {},
        "wo_mixhop": {"use_mixhop": False},
        "wo_gib": {"use_gib": False},
        "wo_cl": {"use_cl": False},
    }
    if variant not in flags:
        raise KeyError(f"unknown GraphAug variant {variant!r}; "
                       f"available: {sorted(flags)}")
    overrides = flags[variant]

    def build(dataset, config=None, seed: int = 0) -> GraphAug:
        return GraphAug(dataset, config=config, seed=seed, **overrides)

    build.__name__ = f"graphaug_{variant}"
    return build
