"""The learnable graph augmentor (paper Sec III-B.1, Eq 4).

Scores every *candidate* edge with an MLP over noise-perturbed, masked
endpoint embeddings:

    h~_u = (h̄_u - ε_u) ⊙ m_u + ε_u,   ε ~ N(0, I),  m ~ Bernoulli(keep)
    p((u,v) | H̄) = σ( MLP([h~_u ‖ h~_v]) )

The candidate set is the observed edges plus a budget of sampled
*higher-order* user-item pairs (3-hop reachable pairs), realizing the
paper's "additional edges that capture higher-order collaborative signals".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from ..autograd import MLP, Module, Tensor, cast_like, concat
from ..graph import InteractionGraph


@dataclass(frozen=True)
class CandidateEdges:
    """COO candidate edges over the unified (user+item) node space."""

    user_nodes: np.ndarray      # node ids in [0, I)
    item_nodes: np.ndarray      # node ids in [I, I+J)
    observed: np.ndarray        # bool mask: True for edges present in G

    def __len__(self) -> int:
        return len(self.user_nodes)


def build_candidate_edges(graph: InteractionGraph,
                          rng: np.random.Generator,
                          higher_order_budget: float = 0.25,
                          max_candidates_per_user: int = 5
                          ) -> CandidateEdges:
    """Observed edges + sampled 3-hop (u, i) pairs not already observed.

    ``higher_order_budget`` is a fraction of ``|E|``; the extra pairs come
    from ``A A^T A`` (user -> item -> co-user -> item), the shortest
    bipartite path that proposes *new* user-item edges.
    """
    rows, cols = graph.edges()
    n_extra = int(round(higher_order_budget * len(rows)))
    extra_u, extra_i = [], []
    if n_extra > 0:
        reach = (graph.matrix @ graph.matrix.T @ graph.matrix).tocsr()
        reach = reach - reach.multiply(graph.matrix)  # drop observed pairs
        reach.eliminate_zeros()
        users = rng.permutation(graph.num_users)
        for u in users:
            if len(extra_u) >= n_extra:
                break
            start, stop = reach.indptr[u:u + 2]
            items = reach.indices[start:stop]
            weights = reach.data[start:stop]
            if len(items) == 0:
                continue
            k = min(max_candidates_per_user, len(items),
                    n_extra - len(extra_u))
            top = items[np.argsort(-weights)[:k]]
            extra_u.extend([u] * len(top))
            extra_i.extend(top.tolist())
    user_nodes = np.concatenate([rows, np.asarray(extra_u, dtype=np.int64)])
    item_nodes = np.concatenate([cols, np.asarray(extra_i, dtype=np.int64)])
    observed = np.zeros(len(user_nodes), dtype=bool)
    observed[:len(rows)] = True
    return CandidateEdges(user_nodes=user_nodes,
                          item_nodes=item_nodes + graph.num_users,
                          observed=observed)


class LearnableAugmentor(Module):
    """MLP edge scorer with reparameterized embedding perturbation (Eq 4)."""

    def __init__(self, dim: int, rng: np.random.Generator,
                 hidden_dim: int = 32, mask_keep: float = 0.8):
        super().__init__()
        if not 0.0 < mask_keep <= 1.0:
            raise ValueError("mask_keep must be in (0, 1]")
        self.mask_keep = mask_keep
        # input: [h_u ‖ h_v ‖ h_u ⊙ h_v] — the product block makes the
        # dot-product affinity (the natural denoising feature) linearly
        # learnable by the first layer
        self.scorer = MLP([3 * dim, hidden_dim, 1], rng,
                          activation=Tensor.relu)

    def perturb(self, embeddings: Tensor,
                rng: np.random.Generator) -> Tensor:
        """``(h̄ - ε) ⊙ m + ε`` — noise-anchored feature masking (Eq 4).

        The noise is scaled to the embeddings' own standard deviation so
        masked positions carry comparable magnitude to kept ones; unit
        noise would drown the signal at the 0.1-std embedding scale this
        substrate initializes with.
        """
        scale = float(embeddings.data.std()) or 1.0
        noise = cast_like(rng.normal(0.0, scale, size=embeddings.shape),
                          embeddings)
        mask = cast_like(rng.random(embeddings.shape) < self.mask_keep,
                         embeddings)
        return (embeddings - noise) * mask + noise

    def edge_logits(self, node_embeddings: Tensor,
                    candidates: CandidateEdges,
                    rng: np.random.Generator) -> Tensor:
        """Raw (pre-sigmoid) keep scores for every candidate edge."""
        perturbed = self.perturb(node_embeddings, rng)
        head = perturbed.take_rows(candidates.user_nodes)
        tail = perturbed.take_rows(candidates.item_nodes)
        features = concat([head, tail, head * tail], axis=1)
        return self.scorer(features).reshape(-1)

    def edge_probabilities(self, node_embeddings: Tensor,
                           candidates: CandidateEdges,
                           rng: np.random.Generator) -> Tensor:
        return self.edge_logits(node_embeddings, candidates, rng).sigmoid()
