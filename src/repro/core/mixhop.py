"""The Graph Mixhop encoder (paper Sec III-C, Eqs 11-13).

The paper describes mixhop propagation twice, at two levels of machinery:

* **Eq 11-13 ("dense" mode)**: each layer concatenates propagated
  embeddings from a set of hops ``M`` (default ``{0, 1, 2}``), with a
  per-hop learnable transform ``W_m`` and a LeakyReLU (slope 0.5).
  Following the Eq 12 simplification, ``W_0`` of the *first* layer is fixed
  to zero.
* **"High-Order Smoothing via Mixhop Propagation" ("light" mode)**: the
  ``(l+1)``-order embedding is "a weighted mixture of the l-order
  embeddings ... the weights of the mixture are determined by ... a mixing
  matrix M [that] is learned to optimize the downstream task".  That is a
  learnable per-layer mixing vector over hop powers, with no dense
  transforms — it stays in the embedding space of the id-embedding tables,
  which is what dot-product scoring needs at small training budgets.

Both are implemented; :class:`MixhopEncoder` defaults to ``mode="light"``
(the one the GraphAug model uses), while ``mode="dense"`` realizes Eq 11-13
literally.  In both modes hop powers are computed iteratively as
``A(A(...(AH)))`` so ``A^m`` is never materialized (Sec III-E).

The adjacency is abstracted as a ``propagate_fn`` callable so the same
encoder runs over a constant scipy matrix (original graph, via ``spmm``) or
a learnable-weight augmented view (via ``weighted_spmm``) — that is what
lets augmentor gradients flow through message passing.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from ..autograd import Module, Parameter, Tensor, concat
from ..autograd import functional as F
from ..autograd import init as init_schemes


class MixhopLayer(Module):
    """One dense-mode mixhop layer: ``h' = δ(||_m A^m h W_m)`` (Eq 11)."""

    def __init__(self, dim: int, hops: Sequence[int],
                 rng: np.random.Generator, leaky_slope: float = 0.5,
                 freeze_hop0: bool = False):
        super().__init__()
        self.hops = tuple(hops)
        self.leaky_slope = leaky_slope
        self.freeze_hop0 = freeze_hop0
        # output widths per hop sum to dim (last hop absorbs the remainder)
        base = dim // len(self.hops)
        widths = [base] * len(self.hops)
        widths[-1] += dim - base * len(self.hops)
        self.widths = widths
        self._transforms: List[Parameter] = []
        for idx, width in enumerate(widths):
            if freeze_hop0 and self.hops[idx] == 0:
                weight = Parameter(np.zeros((dim, width)))
                weight.requires_grad = False  # W_0 = 0, per Eq 12
            else:
                weight = Parameter(
                    init_schemes.xavier_uniform((dim, width), rng))
            setattr(self, f"w_hop{self.hops[idx]}", weight)
            self._transforms.append(weight)

    def forward(self, h: Tensor,
                propagate_fn: Callable[[Tensor], Tensor]) -> Tensor:
        pieces = []
        current = h
        reached = 0
        for hop, weight in zip(self.hops, self._transforms):
            # advance the iterated propagation up to this hop count
            while reached < hop:
                current = propagate_fn(current)
                reached += 1
            pieces.append(current @ weight)
        return concat(pieces, axis=1).leaky_relu(self.leaky_slope)


class MixingLayer(Module):
    """One light-mode mixhop layer: ``h' = Σ_m softmax(g)_m A^m h``.

    The learnable gate vector ``g`` is the per-layer row of the paper's
    mixing matrix ``M``; softmax keeps the mixture convex so propagation
    stays a contraction and embeddings stay in the id-embedding space.
    """

    #: initial gate logit for hop 0 — starting the self-hop low makes the
    #: initial mixture behave like a vanilla GCN layer (mostly hops 1-2);
    #: the gates then learn how much self-signal to re-inject.
    HOP0_INIT = -4.0

    def __init__(self, hops: Sequence[int], rng: np.random.Generator):
        super().__init__()
        self.hops = tuple(hops)
        init = np.array([self.HOP0_INIT if hop == 0 else 0.0
                         for hop in self.hops])
        self.gates = Parameter(init)

    def forward(self, h: Tensor,
                propagate_fn: Callable[[Tensor], Tensor]) -> Tensor:
        mix = F.softmax(self.gates.reshape(1, -1)).reshape(-1)
        out = None
        current = h
        reached = 0
        for idx, hop in enumerate(self.hops):
            while reached < hop:
                current = propagate_fn(current)
                reached += 1
            term = current * mix[np.array([idx])]
            out = term if out is None else out + term
        return out


class MixhopEncoder(Module):
    """Stacked mixhop layers; final embedding averages all layer outputs.

    Averaging (rather than taking only ``H^{(L)}``) mirrors the LightGCN
    aggregation every baseline uses, which keeps the "w/o Mixhop" ablation
    an encoder-for-encoder swap — the comparison the paper's Table III
    makes.  Hops must be sorted ascending (they share the iterated
    propagation state).

    Parameters
    ----------
    mode:
        ``"light"`` (default) — learnable hop-mixing gates, no transforms;
        ``"dense"`` — the literal Eq 11-13 encoder with per-hop ``W_m``.
    """

    def __init__(self, dim: int, num_layers: int, hops: Sequence[int],
                 rng: np.random.Generator, leaky_slope: float = 0.5,
                 mode: str = "light"):
        super().__init__()
        hops = tuple(sorted(hops))
        if not hops:
            raise ValueError("need at least one hop")
        if mode not in ("light", "dense"):
            raise ValueError(f"unknown mixhop mode {mode!r}")
        self.mode = mode
        self.num_layers = num_layers
        self.layers: List[Module] = []
        for i in range(num_layers):
            if mode == "dense":
                layer = MixhopLayer(dim, hops, rng, leaky_slope,
                                    freeze_hop0=(i == 0))
            else:
                layer = MixingLayer(hops, rng)
            setattr(self, f"mixhop_{i}", layer)
            self.layers.append(layer)

    def forward(self, ego: Tensor,
                propagate_fn: Callable[[Tensor], Tensor]) -> Tensor:
        outputs = [ego]
        current = ego
        for layer in self.layers:
            current = layer(current, propagate_fn)
            outputs.append(current)
        return sum(outputs[1:], outputs[0]) * (1.0 / len(outputs))
