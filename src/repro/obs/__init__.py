"""Unified observability layer: structured tracing + metrics registry.

``repro.obs`` is the one substrate every layer instruments against
(enforced by the ``tests/test_obs_lint.py`` AST lint -- no ad-hoc
``print`` / ``time.perf_counter`` timing elsewhere in ``src/repro``):

- **Tracing** (:mod:`repro.obs.trace`): ``span()`` / ``traced()`` record
  wall-time spans with parent links into a per-process ring buffer,
  exported as Chrome-trace ``trace.json`` run-dir artifacts; spans from
  spawn workers merge into the parent buffer at pool shutdown.  Off by
  default and zero-cost when disabled; turned on per run via
  ``TrainConfig.trace``.
- **Metrics** (:mod:`repro.obs.metrics`): process-wide counters, gauges
  and fixed-bucket histograms, snapshotted into ``metrics.json`` and
  exportable as Prometheus text.

See ``docs/OBSERVABILITY.md`` for the full tour (artifact schemas, how
to open traces in Perfetto, measured overhead).
"""

from repro.obs.trace import (
    TRACE_SCHEMA,
    DEFAULT_TRACE_CAPACITY,
    span,
    traced,
    counter_event,
    instant_event,
    set_process_label,
    enable_tracing,
    tracing_enabled,
    trace_scope,
    reset_tracing,
    current_seq,
    events_since,
    snapshot_events,
    drain_events,
    absorb_events,
    dropped_event_count,
    chrome_trace,
    export_trace,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    METRICS_SCHEMA,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    counter,
    gauge,
    histogram,
    get_metric,
    metrics_snapshot,
    write_metrics,
    prometheus_text,
    reset_metrics,
)

__all__ = [
    # trace
    "TRACE_SCHEMA",
    "DEFAULT_TRACE_CAPACITY",
    "span",
    "traced",
    "counter_event",
    "instant_event",
    "set_process_label",
    "enable_tracing",
    "tracing_enabled",
    "trace_scope",
    "reset_tracing",
    "current_seq",
    "events_since",
    "snapshot_events",
    "drain_events",
    "absorb_events",
    "dropped_event_count",
    "chrome_trace",
    "export_trace",
    "validate_chrome_trace",
    # metrics
    "METRICS_SCHEMA",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "gauge",
    "histogram",
    "get_metric",
    "metrics_snapshot",
    "write_metrics",
    "prometheus_text",
    "reset_metrics",
    "console",
]


def console(message: str) -> None:
    """The sanctioned stdout sink for user-facing progress lines.

    Library code routes verbose/progress output through here instead of
    calling ``print`` directly (the obs lint bans bare ``print`` outside
    ``repro.obs`` and the CLI), keeping one interception point for
    future log routing.
    """
    print(message, flush=True)
