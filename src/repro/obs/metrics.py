"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The metrics half of :mod:`repro.obs`.  Metrics are named, get-or-create
singletons held in one process-wide table (the same shape as
``repro.utils.component_registry``): calling :func:`counter` twice with
the same name returns the same object, and asking for an existing name
with a different kind raises.  Unlike tracing there is no enable flag --
metric updates are a few hundred nanoseconds and happen at epoch /
request granularity, so they are always on.

Snapshots serialize to the ``metrics.json`` run-dir artifact
(:func:`metrics_snapshot` / :func:`write_metrics`) and to the Prometheus
text exposition format (:func:`prometheus_text`) for scraping.
Histograms use fixed upper-bound buckets and estimate percentiles by
linear interpolation inside the winning bucket -- good enough for the
p50/p95/p99 latency reporting the serving microbench records.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "METRICS_SCHEMA",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "gauge",
    "histogram",
    "get_metric",
    "metrics_snapshot",
    "write_metrics",
    "prometheus_text",
    "reset_metrics",
]

METRICS_SCHEMA = "repro-metrics/v1"
"""Schema tag stamped into ``metrics.json`` snapshots."""

DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)
"""Default histogram bucket upper bounds (seconds), 10us .. 10s."""

_registry_lock = threading.Lock()
_registry: "Dict[str, _Metric]" = {}


class _Metric:
    """Common base: a named metric with a help string and its own lock."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable state; extended by each subclass."""
        return {"kind": self.kind, "help": self.help}


class Counter(_Metric):
    """Monotonically increasing count (requests served, epochs run)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current cumulative count."""
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        state = super().snapshot()
        state["value"] = self.value
        return state


class Gauge(_Metric):
    """A value that goes up and down (last loss, live workers)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current gauge value."""
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        state = super().snapshot()
        state["value"] = self.value
        return state


class Histogram(_Metric):
    """Fixed-bucket histogram with interpolated percentile estimates."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help)
        if buckets is None:
            buckets = DEFAULT_LATENCY_BUCKETS
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be strictly increasing and non-empty")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed seconds of its block."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the buckets.

        Linear interpolation within the bucket containing the target
        rank; observations beyond the last bound clamp to the observed
        maximum.  Returns 0.0 for an empty histogram.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            counts = list(self._counts)
            observed_min = self._min
            observed_max = self._max
        rank = q * total
        cumulative = 0.0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index == len(self.buckets):
                    return observed_max
                lower = self.buckets[index - 1] if index > 0 else min(0.0, observed_min)
                upper = self.buckets[index]
                lower = max(lower, observed_min) if observed_min <= upper else lower
                fraction = (rank - cumulative) / bucket_count
                return min(lower + (upper - lower) * fraction, observed_max)
            cumulative += bucket_count
        return observed_max

    def percentiles(self, qs: Iterable[float] = (0.5, 0.95, 0.99)) -> Dict[str, float]:
        """Map ``{"p50": ..., "p95": ...}`` for the requested quantiles."""
        return {f"p{round(q * 100):d}": self.percentile(q) for q in qs}

    def snapshot(self) -> Dict[str, Any]:
        state = super().snapshot()
        with self._lock:
            counts = list(self._counts)
            state.update(
                count=self._count,
                sum=self._sum,
                min=self._min if self._count else 0.0,
                max=self._max if self._count else 0.0,
            )
        state["buckets"] = [
            [bound, count] for bound, count in zip(self.buckets, counts)
        ] + [["+Inf", counts[-1]]]
        state.update({k: v for k, v in self.percentiles().items()})
        return state


class _HistogramTimer:
    """``with histogram.time():`` -- observes elapsed seconds on exit."""

    __slots__ = ("_histogram", "_t0")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._t0 = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._histogram.observe(time.perf_counter() - self._t0)
        return False


def _get_or_create(name: str, kind: type, **kwargs: Any) -> Any:
    with _registry_lock:
        existing = _registry.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"not {kind.kind}"
                )
            return existing
        metric = kind(name, **kwargs)
        _registry[name] = metric
        return metric


def counter(name: str, help: str = "") -> Counter:
    """Get-or-create the :class:`Counter` registered under ``name``."""
    return _get_or_create(name, Counter, help=help)


def gauge(name: str, help: str = "") -> Gauge:
    """Get-or-create the :class:`Gauge` registered under ``name``."""
    return _get_or_create(name, Gauge, help=help)


def histogram(
    name: str, help: str = "", buckets: Optional[Sequence[float]] = None
) -> Histogram:
    """Get-or-create the :class:`Histogram` registered under ``name``."""
    return _get_or_create(name, Histogram, help=help, buckets=buckets)


def get_metric(name: str) -> Optional[_Metric]:
    """Look up a registered metric by name (None when absent)."""
    with _registry_lock:
        return _registry.get(name)


def metrics_snapshot() -> Dict[str, Any]:
    """JSON-serializable snapshot of every registered metric."""
    with _registry_lock:
        metrics = sorted(_registry.items())
    return {
        "schema": METRICS_SCHEMA,
        "metrics": {name: metric.snapshot() for name, metric in metrics},
    }


def write_metrics(path: str) -> str:
    """Write :func:`metrics_snapshot` as JSON to ``path``; returns it."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics_snapshot(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _prom_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "repro_" + cleaned


def prometheus_text() -> str:
    """Render every registered metric in Prometheus text exposition format."""
    with _registry_lock:
        metrics = sorted(_registry.items())
    lines: List[str] = []
    for name, metric in metrics:
        prom = _prom_name(name)
        if metric.help:
            lines.append(f"# HELP {prom} {metric.help}")
        lines.append(f"# TYPE {prom} {metric.kind}")
        if isinstance(metric, Histogram):
            state = metric.snapshot()
            cumulative = 0
            for bound, count in state["buckets"]:
                cumulative += count
                label = "+Inf" if bound == "+Inf" else repr(float(bound))
                lines.append(f'{prom}_bucket{{le="{label}"}} {cumulative}')
            lines.append(f"{prom}_sum {state['sum']}")
            lines.append(f"{prom}_count {state['count']}")
        else:
            lines.append(f"{prom} {metric.value}")
    return "\n".join(lines) + "\n"


def reset_metrics() -> None:
    """Drop every registered metric (tests and bench isolation)."""
    with _registry_lock:
        _registry.clear()
