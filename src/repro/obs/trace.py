"""Structured tracing: spans, counter events, and Chrome-trace export.

This module is the tracing half of :mod:`repro.obs`.  It records
wall-time **spans** (named intervals with parent links and free-form
attributes) into a fixed-capacity per-process ring buffer and exports
them in the Chrome trace event format understood by ``chrome://tracing``
and `Perfetto <https://ui.perfetto.dev>`_.

Design constraints, in order:

1. **Zero cost when disabled.**  Tracing is off by default.  A disabled
   ``span(...)`` call is one module-global check plus returning a shared
   no-op singleton -- no allocation, no locking, no timestamps.  The
   hot-path benchmark asserts this stays unmeasurable.
2. **Cross-process mergeable.**  Every event carries ``pid``/``tid`` and
   a timestamp anchored to the shared wall clock (``time.time``), so
   events recorded in spawn workers (sweep cells, ``StaleGradientPool``
   batch workers) can be shipped back as plain dicts and absorbed into
   the parent's buffer with :func:`absorb_events` -- the same rendezvous
   the per-primitive autograd profile already uses.
3. **Bounded memory.**  The buffer is a ring: once ``capacity`` events
   are held, the oldest are overwritten and counted in
   :func:`dropped_event_count`.

The public surface is re-exported by :mod:`repro.obs`; see
``docs/OBSERVABILITY.md`` for the artifact schema and a usage tour.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "TRACE_SCHEMA",
    "DEFAULT_TRACE_CAPACITY",
    "span",
    "traced",
    "counter_event",
    "instant_event",
    "set_process_label",
    "enable_tracing",
    "tracing_enabled",
    "trace_scope",
    "reset_tracing",
    "current_seq",
    "events_since",
    "snapshot_events",
    "drain_events",
    "absorb_events",
    "dropped_event_count",
    "chrome_trace",
    "export_trace",
    "validate_chrome_trace",
]

TRACE_SCHEMA = "chrome-trace/v1"
"""Schema tag stamped into exported ``trace.json`` payloads."""

DEFAULT_TRACE_CAPACITY = 65536
"""Default ring-buffer capacity (events per process)."""

_enabled = False
_lock = threading.RLock()
_capacity = DEFAULT_TRACE_CAPACITY
_ring: List[Any] = []  # entries are (seq, event) tuples
_next_slot = 0  # overwrite cursor, meaningful once the ring is full
_seq_counter = itertools.count(1)
_last_seq = 0
_dropped = 0

_span_ids = itertools.count(1)
_tls = threading.local()

# Anchor perf_counter to the wall clock once per process so timestamps
# from different processes land on one comparable timeline.
_ANCHOR = time.time() - time.perf_counter()


def _now_us() -> float:
    """Wall-clock-anchored timestamp in microseconds."""
    return (_ANCHOR + time.perf_counter()) * 1e6


def _append_event(event: Dict[str, Any]) -> None:
    global _next_slot, _dropped, _last_seq
    with _lock:
        seq = next(_seq_counter)
        _last_seq = seq
        if len(_ring) < _capacity:
            _ring.append((seq, event))
        else:
            _ring[_next_slot] = (seq, event)
            _next_slot = (_next_slot + 1) % _capacity
            _dropped += 1


def _ordered_entries() -> List[Any]:
    # insertion order: the ring is contiguous until full, then wraps
    if len(_ring) < _capacity or _next_slot == 0:
        return list(_ring)
    return _ring[_next_slot:] + _ring[:_next_slot]


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        """Ignore attribute updates on the disabled fast path."""
        return self


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: records one complete ("X") trace event on exit."""

    __slots__ = ("name", "attrs", "span_id", "_t0", "_pushed")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = next(_span_ids)
        self._t0 = 0.0
        self._pushed = False

    def set(self, **attrs: Any) -> "_Span":
        """Attach or update attributes while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        stack.append(self.span_id)
        self._pushed = True
        self._t0 = _now_us()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        t1 = _now_us()
        stack = _tls.stack
        if self._pushed:
            stack.pop()
            self._pushed = False
        args = dict(self.attrs)
        args["span_id"] = self.span_id
        args["parent_id"] = stack[-1] if stack else 0
        if exc_type is not None:
            args["error"] = exc_type.__name__
        _append_event(
            {
                "name": self.name,
                "cat": "repro",
                "ph": "X",
                "ts": self._t0,
                "dur": t1 - self._t0,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": args,
            }
        )
        return False


def span(name: str, **attrs: Any):
    """Open a traced span: ``with span("train.epoch", epoch=3): ...``.

    Returns a shared no-op singleton when tracing is disabled, so the
    call costs one global check on the hot path.  When enabled, the
    span records a Chrome ``"X"`` (complete) event on exit, carrying
    ``pid``/``tid``, the given attributes, and a ``parent_id`` link to
    the enclosing span on the same thread.
    """
    if not _enabled:
        return _NOOP_SPAN
    return _Span(name, attrs)


def traced(name: Optional[str] = None, **attrs: Any) -> Callable:
    """Decorator form of :func:`span`, evaluated lazily per call.

    ``@traced("stage.load")`` wraps the function so each invocation runs
    under a span *iff tracing is enabled at call time* -- decorating at
    import time (when tracing is always off) still traces later runs.
    When ``name`` is omitted the function's qualified name is used.
    """

    def decorate(func: Callable) -> Callable:
        label = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return func(*args, **kwargs)
            with span(label, **attrs):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def counter_event(name: str, **values: float) -> None:
    """Record a Chrome ``"C"`` counter sample (one series per kwarg).

    Used to re-expose cumulative gauges over time -- e.g. the autograd
    per-primitive profiler's seconds -- as plottable counter tracks.
    No-op while tracing is disabled.
    """
    if not _enabled:
        return
    _append_event(
        {
            "name": name,
            "cat": "repro",
            "ph": "C",
            "ts": _now_us(),
            "pid": os.getpid(),
            "tid": 0,
            "args": {key: float(value) for key, value in values.items()},
        }
    )


def instant_event(name: str, **attrs: Any) -> None:
    """Record a Chrome ``"i"`` instant event (a point-in-time marker)."""
    if not _enabled:
        return
    _append_event(
        {
            "name": name,
            "cat": "repro",
            "ph": "i",
            "s": "p",
            "ts": _now_us(),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": dict(attrs),
        }
    )


def set_process_label(label: str) -> None:
    """Name this process in the trace viewer (an ``"M"`` metadata event).

    Workers call this right after enabling tracing so merged traces read
    ``sweep-worker`` / ``train-worker-1`` instead of bare pids.  No-op
    while tracing is disabled.
    """
    if not _enabled:
        return
    _append_event(
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": os.getpid(),
            "tid": 0,
            "args": {"name": str(label)},
        }
    )


def enable_tracing(enabled: bool = True) -> bool:
    """Turn tracing on/off process-wide; returns the previous state."""
    global _enabled
    with _lock:
        previous = _enabled
        _enabled = bool(enabled)
    return previous


def tracing_enabled() -> bool:
    """True when spans are currently being recorded in this process."""
    return _enabled


class _TraceScope:
    """Context manager that enables tracing and restores the prior state.

    When constructed with a falsy ``enabled`` it leaves the global state
    completely untouched (so a caller's already-enabled tracing is never
    force-disabled by a nested component whose config says ``False``).
    """

    __slots__ = ("_enable", "_previous")

    def __init__(self, enable: bool):
        self._enable = bool(enable)
        self._previous = False

    def __enter__(self) -> "_TraceScope":
        if self._enable:
            self._previous = enable_tracing(True)
        return self

    def __exit__(self, *exc: Any) -> bool:
        if self._enable:
            enable_tracing(self._previous)
        return False


def trace_scope(enabled: bool = True) -> _TraceScope:
    """Scoped :func:`enable_tracing`: ``with trace_scope(cfg.trace): ...``.

    Falsy ``enabled`` is a pure no-op (it does **not** disable tracing a
    caller already turned on); truthy enables tracing for the scope and
    restores the previous state on exit.
    """
    return _TraceScope(enabled)


def reset_tracing(capacity: Optional[int] = None) -> None:
    """Clear the event buffer (and optionally resize it).

    Leaves the enabled/disabled state alone; used by tests and at the
    start of traced runs that want a buffer of their own.
    """
    global _ring, _next_slot, _dropped, _capacity
    with _lock:
        if capacity is not None:
            if capacity < 1:
                raise ValueError("trace capacity must be >= 1")
            _capacity = int(capacity)
        _ring = []
        _next_slot = 0
        _dropped = 0


def current_seq() -> int:
    """Monotonic sequence number of the most recently recorded event.

    Capture it before a unit of work, then slice that unit's events out
    with :func:`events_since` -- the mechanism run/sweep layers use to
    attribute events to a cell without draining unrelated ones.
    """
    with _lock:
        return _last_seq


def events_since(seq: int) -> List[Dict[str, Any]]:
    """Events recorded after sequence point ``seq``, oldest first."""
    with _lock:
        return [event for s, event in _ordered_entries() if s > seq]


def snapshot_events() -> List[Dict[str, Any]]:
    """Copy of all buffered events, oldest first."""
    with _lock:
        return [event for _, event in _ordered_entries()]


def drain_events() -> List[Dict[str, Any]]:
    """Return all buffered events and clear the buffer.

    Workers call this at shutdown to ship their events to the parent in
    one message; pairing it with :func:`absorb_events` on the parent
    side gives exactly-once merge semantics.
    """
    global _ring, _next_slot
    with _lock:
        events = [event for _, event in _ordered_entries()]
        _ring = []
        _next_slot = 0
    return events


def absorb_events(events: Iterable[Dict[str, Any]]) -> int:
    """Merge events recorded in another process into this buffer.

    Accepts the plain dicts produced by :func:`drain_events` /
    :func:`events_since`; entries without the minimal ``name``/``ph``
    keys are skipped.  Returns the number of events absorbed.  Works
    whether or not tracing is currently enabled, so a parent can collect
    worker traces even after its own scope closed.
    """
    absorbed = 0
    for event in events:
        if not isinstance(event, dict):
            continue
        if "name" not in event or "ph" not in event:
            continue
        _append_event(event)
        absorbed += 1
    return absorbed


def dropped_event_count() -> int:
    """Events overwritten because the ring buffer was full."""
    with _lock:
        return _dropped


def _synthesize_metadata(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Add ``process_name`` metadata for pids that never labelled themselves."""
    labelled = {
        event.get("pid")
        for event in events
        if event.get("ph") == "M" and event.get("name") == "process_name"
    }
    synthesized = []
    for pid in sorted({event.get("pid") for event in events} - labelled):
        if pid is None:
            continue
        synthesized.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    return synthesized


def chrome_trace(
    events: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Build a Chrome trace payload (``{"traceEvents": [...]}``).

    Uses the current buffer when ``events`` is None.  Metadata events
    sort first, the rest by timestamp, so the export is deterministic
    for a given event set.
    """
    if events is None:
        events = snapshot_events()
    events = list(events) + _synthesize_metadata(list(events))
    events.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "dropped_events": dropped_event_count()},
    }


def export_trace(
    path: str, events: Optional[List[Dict[str, Any]]] = None
) -> str:
    """Write :func:`chrome_trace` as JSON to ``path``; returns ``path``."""
    payload = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return path


def validate_chrome_trace(payload: Dict[str, Any]) -> List[str]:
    """Check a trace payload against the Chrome trace event schema.

    Returns a list of human-readable problems (empty when valid).  This
    is the validator behind the acceptance test and ``repro trace``; it
    enforces the subset of the format this module emits: a
    ``traceEvents`` list whose entries all carry ``name``/``ph``/``pid``,
    with ``ts`` (numeric) on non-metadata events and ``dur`` on ``"X"``
    events.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid"):
            if key not in event:
                problems.append(f"{where}: missing '{key}'")
        phase = event.get("ph")
        if phase != "M":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: non-numeric 'ts'")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: 'X' event without numeric 'dur'")
        if phase == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: 'C' event without args mapping")
    return problems
