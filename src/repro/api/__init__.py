"""``repro.api`` — the declarative experiment facade.

One typed spec describes a whole experiment; one call runs it through
the registries and the shared pipeline::

    from repro.api import Experiment, ExperimentSpec

    spec = ExperimentSpec(model="lightgcn", dataset="gowalla",
                          train_config={"epochs": 60, "eval_every": 20})
    result = Experiment(spec).run(run_dir="runs/lightgcn-gowalla")
    print(result.metrics["recall@20"])

Every component is resolved by name through the process-wide component
registries (:func:`repro.utils.component_registry`):

==========  ============================  ==============================
kind        registered by                 spec field
==========  ============================  ==============================
model       ``repro.models``              ``model``
dataset     ``repro.data`` (profiles,     ``dataset`` (names or file
            ``tiny``; file paths resolve  paths)
            by extension)
metric      ``repro.eval.metrics``        ``eval.metrics``
probe       ``repro.eval`` (groups,       ``probes``
            beyond-accuracy, robustness)
callback    ``repro.train.callbacks``     ``artifacts``
==========  ============================  ==============================

Specs round-trip losslessly through plain dicts / JSON files (strict
parsing: unknown keys raise, naming the bad field), runs persist a
replayable run directory (:mod:`repro.api.rundir`), and
:func:`run_sweep` grid-runs many specs with shared dataset loading.
The CLI (``repro train/evaluate/recommend/run``) is a thin shell over
this module.
"""

from .spec import ArtifactSpec, EvalSpec, ExperimentSpec
from .experiment import (Experiment, RunResult, expand_grid,
                         recommend_topk, run_experiment, run_sweep)
from .rundir import environment_stamp, read_run_dir, write_run_dir

__all__ = [
    "ArtifactSpec", "EvalSpec", "ExperimentSpec",
    "Experiment", "RunResult", "expand_grid", "recommend_topk",
    "run_experiment", "run_sweep",
    "environment_stamp", "read_run_dir", "write_run_dir",
]
