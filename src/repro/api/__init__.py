"""``repro.api`` — the declarative experiment facade.

One typed spec describes a whole experiment; one call runs it through
the registries and the shared pipeline::

    from repro.api import Experiment, ExperimentSpec

    spec = ExperimentSpec(model="lightgcn", dataset="gowalla",
                          train_config={"epochs": 60, "eval_every": 20})
    result = Experiment(spec).run(run_dir="runs/lightgcn-gowalla")
    print(result.metrics["recall@20"])

Every component is resolved by name through the process-wide component
registries (:func:`repro.utils.component_registry`):

==========  ============================  ==============================
kind        registered by                 spec field
==========  ============================  ==============================
model       ``repro.models``              ``model``
dataset     ``repro.data`` (profiles,     ``dataset`` (names or file
            ``tiny``; file paths resolve  paths)
            by extension)
metric      ``repro.eval.metrics``        ``eval.metrics``
probe       ``repro.eval`` (groups,       ``probes``
            beyond-accuracy, robustness)
callback    ``repro.train.callbacks``     ``artifacts``
==========  ============================  ==============================

Specs round-trip losslessly through plain dicts / JSON files (strict
parsing: unknown keys raise, naming the bad field), runs persist a
replayable run directory (:mod:`repro.api.rundir`), and the sweep
engine (:mod:`repro.api.sweep`) grid-runs many specs — sequentially or
over a process pool (``workers=N``), with per-cell failure isolation,
``SweepRunner.resume`` for partially-run sweeps, and
:func:`aggregate_results` leaderboards.  The CLI
(``repro train/evaluate/recommend/run``) is a thin shell over this
module.
"""

from .spec import ArtifactSpec, EvalSpec, ExperimentSpec
from .experiment import (Experiment, RunResult, recommend_topk, run_cell,
                         run_experiment)
from .rundir import (environment_stamp, read_run_dir, run_dir_fingerprint,
                     run_dir_is_complete, write_run_dir)
from .sweep import (SweepReport, SweepRunner, aggregate_results,
                    claim_run_dir, expand_grid, merge_sweep_manifest,
                    read_sweep_manifest, run_sweep, write_sweep_manifest)

__all__ = [
    "ArtifactSpec", "EvalSpec", "ExperimentSpec",
    "Experiment", "RunResult", "expand_grid", "recommend_topk",
    "run_cell", "run_experiment", "run_sweep",
    "SweepReport", "SweepRunner", "aggregate_results", "claim_run_dir",
    "merge_sweep_manifest", "read_sweep_manifest", "write_sweep_manifest",
    "environment_stamp", "read_run_dir", "run_dir_fingerprint",
    "run_dir_is_complete", "write_run_dir",
]
