"""The run-directory contract: every run is replayable from its artifact.

:func:`write_run_dir` lays one experiment's outputs down as

::

    <run_dir>/
      spec.json          # exact ExperimentSpec echo (from_dict loads it)
      metrics.jsonl      # one JSON object per event: every epoch record
                         # ({"event": "epoch", ...}) and the final best
                         # ({"event": "best", ...})
      timing.json        # train/sampler/spmm/eval wall-clock seconds
      environment.json   # python/numpy/scipy versions, platform,
                         # repro version, autograd default dtype
      probes.json        # probe outputs (only when probes ran)
      history.csv        # plot-ready per-epoch curve (train runs only)
      <artifacts>        # checkpoint / snapshot / ... as the spec asked

``spec.json`` is the replay key: ``Experiment.from_run_dir(run_dir)``
reconstructs the exact experiment, and re-running it with the same seed
reproduces the recorded metrics bit-identically.  The other files are
the record of what this run measured and under which toolchain.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Dict, Optional

SPEC_FILE = "spec.json"
METRICS_FILE = "metrics.jsonl"
TIMING_FILE = "timing.json"
ENVIRONMENT_FILE = "environment.json"
PROBES_FILE = "probes.json"
HISTORY_FILE = "history.csv"


def environment_stamp() -> Dict[str, str]:
    """Toolchain fingerprint stored with every run (reproducibility aid)."""
    import numpy
    import scipy

    from .. import __version__
    from ..autograd import get_default_dtype

    return {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "platform": platform.platform(),
        "repro": __version__,
        "default_dtype": numpy.dtype(get_default_dtype()).name,
    }


def _write_json(path: str, payload) -> str:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_run_dir(run_dir: str, spec, fit=None,
                  metrics: Optional[Dict[str, float]] = None,
                  best_epoch: int = -1,
                  timing: Optional[Dict[str, float]] = None,
                  probes: Optional[Dict] = None) -> Dict[str, str]:
    """Write the run-directory files; returns ``{file role: path}``."""
    os.makedirs(run_dir, exist_ok=True)
    paths = {
        "spec": spec.save(os.path.join(run_dir, SPEC_FILE)),
        "environment": _write_json(os.path.join(run_dir, ENVIRONMENT_FILE),
                                   environment_stamp()),
    }

    events = []
    if fit is not None:
        for record in fit.history:
            events.append({"event": "epoch", "epoch": record.epoch,
                           "loss": record.loss,
                           "wall_time": record.wall_time,
                           "metrics": record.metrics})
    events.append({"event": "best", "epoch": int(best_epoch),
                   "metrics": dict(metrics or {})})
    metrics_path = os.path.join(run_dir, METRICS_FILE)
    with open(metrics_path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    paths["metrics"] = metrics_path

    if timing is None and fit is not None:
        timing = {"train_seconds": fit.train_seconds,
                  "sampler_seconds": fit.sampler_seconds,
                  "spmm_seconds": fit.spmm_seconds,
                  "eval_seconds": fit.eval_seconds}
    paths["timing"] = _write_json(os.path.join(run_dir, TIMING_FILE),
                                  dict(timing or {}))

    if probes:
        paths["probes"] = _write_json(os.path.join(run_dir, PROBES_FILE),
                                      probes)
    if fit is not None:
        from ..train import history_to_csv
        history_path = os.path.join(run_dir, HISTORY_FILE)
        history_to_csv(fit, history_path)
        paths["history"] = history_path
    return paths


def read_run_dir(run_dir: str) -> Dict:
    """Load the replayable pieces of a run directory back.

    Returns ``{"spec": dict, "metrics": dict, "best_epoch": int,
    "timing": dict, "probes": dict, "environment": dict}``; raises
    ``FileNotFoundError`` when ``run_dir`` holds no ``spec.json``.
    """
    spec_path = os.path.join(run_dir, SPEC_FILE)
    if not os.path.exists(spec_path):
        raise FileNotFoundError(f"{run_dir!r} is not a run directory "
                                f"(no {SPEC_FILE})")
    with open(spec_path) as handle:
        spec = json.load(handle)

    metrics: Dict[str, float] = {}
    best_epoch = -1
    metrics_path = os.path.join(run_dir, METRICS_FILE)
    if os.path.exists(metrics_path):
        with open(metrics_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if event.get("event") == "best":
                    metrics = event.get("metrics", {})
                    best_epoch = int(event.get("epoch", -1))

    def _load(name, default):
        path = os.path.join(run_dir, name)
        if not os.path.exists(path):
            return default
        with open(path) as handle:
            return json.load(handle)

    return {"spec": spec, "metrics": metrics, "best_epoch": best_epoch,
            "timing": _load(TIMING_FILE, {}),
            "probes": _load(PROBES_FILE, {}),
            "environment": _load(ENVIRONMENT_FILE, {})}
