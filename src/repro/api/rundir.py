"""The run-directory contract: every run is replayable from its artifact.

:func:`write_run_dir` lays one experiment's outputs down as

::

    <run_dir>/
      spec.json          # exact ExperimentSpec echo (from_dict loads it)
      status.json        # {"status": "completed"} — or "failed" with the
                         # error + traceback when the cell crashed
      metrics.jsonl      # one JSON object per event: every epoch record
                         # ({"event": "epoch", ...}) and the final best
                         # ({"event": "best", ...}); streamed crash-safe
                         # during the fit (flush + fsync per epoch via
                         # MetricsStreamWriter), canonicalized at the end
      timing.json        # train/sampler/spmm/eval wall-clock seconds
      environment.json   # python/numpy/scipy versions, platform,
                         # repro version, autograd default dtype
      probes.json        # probe outputs (only when probes ran)
      history.csv        # plot-ready per-epoch curve (train runs only)
      metrics.json       # repro.obs metrics-registry snapshot (only when
                         # any metric was recorded in this process)
      trace.json         # Chrome-trace span export (only for runs with
                         # TrainConfig.trace on)
      <artifacts>        # checkpoint / snapshot / ... as the spec asked

While a fit is in flight, ``status.json`` reads ``{"status": "running",
"last_heartbeat": <unix time>}`` — re-stamped every epoch
(:func:`write_heartbeat`) so operators and the future dispatch layer can
tell a hung cell from a slow one.  The terminal write then replaces it
with ``completed`` / ``failed``.

``spec.json`` is the replay key: ``Experiment.from_run_dir(run_dir)``
reconstructs the exact experiment, and re-running it with the same seed
reproduces the recorded metrics bit-identically.  The other files are
the record of what this run measured and under which toolchain.

A run that *crashed* still leaves a valid record: ``spec.json`` plus a
``status.json`` carrying ``{"status": "failed", "error": ...,
"traceback": ...}`` (:func:`write_failed_run_dir`).  The sweep engine
(:mod:`repro.api.sweep`) leans on this: :func:`run_dir_is_complete`
decides which cells a resumed sweep may skip, and
:func:`run_dir_fingerprint` hashes the *deterministic* content of a run
directory — everything except wall-clock fields — so N-worker and
sequential sweeps can be compared bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

SPEC_FILE = "spec.json"
STATUS_FILE = "status.json"
METRICS_FILE = "metrics.jsonl"
TIMING_FILE = "timing.json"
ENVIRONMENT_FILE = "environment.json"
PROBES_FILE = "probes.json"
HISTORY_FILE = "history.csv"
METRICS_JSON_FILE = "metrics.json"
TRACE_FILE = "trace.json"

#: terminal states a ``status.json`` may record
STATUS_COMPLETED = "completed"
STATUS_FAILED = "failed"
#: the in-flight state stamped by the per-epoch heartbeat
STATUS_RUNNING = "running"


def environment_stamp() -> Dict[str, str]:
    """Toolchain fingerprint stored with every run (reproducibility aid)."""
    import numpy
    import scipy

    from .. import __version__
    from ..autograd import get_default_dtype

    return {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "platform": platform.platform(),
        "repro": __version__,
        "default_dtype": numpy.dtype(get_default_dtype()).name,
    }


def _write_json(path: str, payload) -> str:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


class MetricsStreamWriter:
    """Crash-safe ``metrics.jsonl`` streaming: flush + fsync per event.

    The experiment layer opens one of these at fit start and appends
    each epoch record the moment it exists, so a worker killed mid-fit
    (OOM, preemption, SIGKILL) leaves a run dir holding every *completed*
    epoch — the buffered single-pass write used to drop the whole tail.
    :func:`write_run_dir` rewrites the canonical file on success, so a
    finished run's content (and its fingerprint) is unchanged by the
    streaming.  Usable as a context manager; ``close`` is idempotent.
    """

    def __init__(self, run_dir: str):
        os.makedirs(run_dir, exist_ok=True)
        self.path = os.path.join(run_dir, METRICS_FILE)
        self._handle = open(self.path, "w")

    def write_event(self, event: Dict) -> None:
        """Append one JSON event and force it to disk."""
        if self._handle is None:
            raise ValueError("MetricsStreamWriter is closed")
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the stream (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "MetricsStreamWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def write_run_dir(run_dir: str, spec, fit=None,
                  metrics: Optional[Dict[str, float]] = None,
                  best_epoch: int = -1,
                  timing: Optional[Dict[str, float]] = None,
                  probes: Optional[Dict] = None,
                  trace_events: Optional[List[Dict]] = None
                  ) -> Dict[str, str]:
    """Write the run-directory files; returns ``{file role: path}``.

    ``trace_events`` (when given) lands as a Chrome-trace ``trace.json``;
    a ``metrics.json`` snapshot of the :mod:`repro.obs` metrics registry
    is written whenever any metric has been recorded in this process.
    Neither artifact feeds :func:`run_dir_fingerprint` — they are
    wall-clock observability data, not replayable results.
    """
    os.makedirs(run_dir, exist_ok=True)
    paths = {
        "spec": spec.save(os.path.join(run_dir, SPEC_FILE)),
        "environment": _write_json(os.path.join(run_dir, ENVIRONMENT_FILE),
                                   environment_stamp()),
    }

    events = []
    if fit is not None:
        for record in fit.history:
            events.append({"event": "epoch", "epoch": record.epoch,
                           "loss": record.loss,
                           "wall_time": record.wall_time,
                           "metrics": record.metrics})
    events.append({"event": "best", "epoch": int(best_epoch),
                   "metrics": dict(metrics or {})})
    metrics_path = os.path.join(run_dir, METRICS_FILE)
    with open(metrics_path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    paths["metrics"] = metrics_path

    if timing is None and fit is not None:
        timing = {"train_seconds": fit.train_seconds,
                  "sampler_seconds": fit.sampler_seconds,
                  "spmm_seconds": fit.spmm_seconds,
                  "eval_seconds": fit.eval_seconds}
    paths["timing"] = _write_json(os.path.join(run_dir, TIMING_FILE),
                                  dict(timing or {}))

    if probes:
        paths["probes"] = _write_json(os.path.join(run_dir, PROBES_FILE),
                                      probes)
    if fit is not None:
        from ..train import history_to_csv
        history_path = os.path.join(run_dir, HISTORY_FILE)
        history_to_csv(fit, history_path)
        paths["history"] = history_path

    from ..obs import export_trace, metrics_snapshot, write_metrics
    if metrics_snapshot()["metrics"]:
        paths["obs_metrics"] = write_metrics(
            os.path.join(run_dir, METRICS_JSON_FILE))
    if trace_events:
        paths["trace"] = export_trace(os.path.join(run_dir, TRACE_FILE),
                                      trace_events)
    paths["status"] = write_status(run_dir, STATUS_COMPLETED,
                                   extra=_carry_heartbeat(run_dir))
    return paths


def write_status(run_dir: str, status: str, error: Optional[str] = None,
                 traceback: Optional[str] = None,
                 extra: Optional[Dict] = None) -> str:
    """Write ``status.json`` (the run's current state); returns its path.

    ``extra`` merges additional fields (heartbeat timestamps, epoch
    counters) into the payload; the reserved ``status`` / ``error`` /
    ``traceback`` keys always win.
    """
    payload: Dict = dict(extra or {})
    payload["status"] = status
    if error is not None:
        payload["error"] = error
    if traceback is not None:
        payload["traceback"] = traceback
    return _write_json(os.path.join(run_dir, STATUS_FILE), payload)


def _carry_heartbeat(run_dir: str) -> Dict:
    """Heartbeat fields of the current ``status.json``, for carrying
    into a terminal status — a completed/failed record keeps the last
    time (and epoch at which) the run proved liveness."""
    status = read_status(run_dir) or {}
    return {key: status[key]
            for key in ("last_heartbeat", "heartbeat_monotonic", "epoch")
            if key in status}


#: default heartbeat cadence in seconds; 0 = stamp on every epoch (the
#: historical behaviour).  Overridable per process via the
#: ``REPRO_HEARTBEAT_SECONDS`` environment variable and per spec via
#: ``TrainConfig.heartbeat_seconds``.
DEFAULT_HEARTBEAT_SECONDS = 0.0

#: registered ``fn(run_dir, epoch)`` callbacks invoked after every
#: heartbeat stamp (see :func:`add_heartbeat_listener`)
_HEARTBEAT_LISTENERS: List[Callable[[str, Optional[int]], None]] = []


def heartbeat_cadence(configured: Optional[float] = None) -> float:
    """Resolve the heartbeat cadence for a run, in seconds.

    Precedence: an explicit ``TrainConfig.heartbeat_seconds`` value,
    then the ``REPRO_HEARTBEAT_SECONDS`` environment variable, then
    :data:`DEFAULT_HEARTBEAT_SECONDS`.  ``0`` means "stamp on every
    epoch"; larger values rate-limit the ``status.json`` rewrite (and
    any registered listeners) to at most one per cadence window —
    measured on the *monotonic* clock, so a wall-clock jump can neither
    flood nor suppress heartbeats.
    """
    if configured is not None:
        return max(0.0, float(configured))
    env = os.environ.get("REPRO_HEARTBEAT_SECONDS")
    if env is not None:
        try:
            return max(0.0, float(env))
        except ValueError:
            raise ValueError(
                f"REPRO_HEARTBEAT_SECONDS={env!r} is not a number")
    return DEFAULT_HEARTBEAT_SECONDS


def add_heartbeat_listener(fn: Callable[[str, Optional[int]], None]
                           ) -> Callable:
    """Register ``fn(run_dir, epoch)`` to run after each heartbeat stamp.

    This is the hook the dispatch layer (:mod:`repro.dispatch`) renews
    its queue leases from: proving liveness to the run directory and to
    the broker are the same event, so a worker that stops heartbeating
    loses its lease exactly when its cell looks hung.  Returns ``fn``
    so the caller can hand it straight to
    :func:`remove_heartbeat_listener`.
    """
    _HEARTBEAT_LISTENERS.append(fn)
    return fn


def remove_heartbeat_listener(fn: Callable) -> None:
    """Unregister a :func:`add_heartbeat_listener` callback (idempotent)."""
    try:
        _HEARTBEAT_LISTENERS.remove(fn)
    except ValueError:
        pass


def write_heartbeat(run_dir: str, epoch: Optional[int] = None) -> str:
    """Stamp ``status.json`` as running, with a fresh ``last_heartbeat``.

    Called by the experiment layer on the :func:`heartbeat_cadence`
    schedule: a cell whose heartbeat is stale is hung, one whose
    heartbeat is fresh is merely slow.  The stamp is a *pair* of
    timestamps — ``last_heartbeat`` (wall clock, human-readable) and
    ``heartbeat_monotonic`` (``time.monotonic()``) — so liveness checks
    comparing two stamps from the same process never trust the wall
    clock alone (NTP steps / clock skew cannot fake or hide progress;
    the dispatch broker additionally arbitrates lease staleness on the
    shared filesystem's own mtime clock).  Only the status *value*
    feeds :func:`run_dir_fingerprint`, so the stamps never break
    determinism comparisons — and a killed run's leftover ``running``
    state correctly fails :func:`run_dir_is_complete`, forcing a re-run
    on resume.  Registered heartbeat listeners fire after the stamp.
    """
    extra: Dict = {"last_heartbeat": time.time(),
                   "heartbeat_monotonic": time.monotonic()}
    if epoch is not None:
        extra["epoch"] = int(epoch)
    path = write_status(run_dir, STATUS_RUNNING, extra=extra)
    for listener in list(_HEARTBEAT_LISTENERS):
        listener(run_dir, epoch)
    return path


def read_status(run_dir: str) -> Optional[Dict[str, str]]:
    """The ``status.json`` payload, or ``None`` when the file is absent
    (run directories written before status stamping existed)."""
    path = os.path.join(run_dir, STATUS_FILE)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def write_failed_run_dir(run_dir: str, spec, error: str,
                         traceback_text: str) -> Dict[str, str]:
    """Record a crashed run: spec echo + ``status: failed`` + traceback.

    This is the failure half of the run-directory contract — a sweep
    cell that raises mid-fit must leave enough behind that (a) the
    failure is diagnosable (``error`` / ``traceback``) and (b) a resumed
    sweep recognizes the cell as needing a re-run.  ``spec`` may be an
    ``ExperimentSpec`` or a plain dict — the latter covers cells whose
    spec never parsed (the raw payload is still echoed for diagnosis).
    """
    os.makedirs(run_dir, exist_ok=True)
    spec_path = os.path.join(run_dir, SPEC_FILE)
    if isinstance(spec, dict):
        _write_json(spec_path, spec)
    else:
        spec.save(spec_path)
    return {
        "spec": spec_path,
        "status": write_status(run_dir, STATUS_FAILED, error=error,
                               traceback=traceback_text,
                               extra=_carry_heartbeat(run_dir)),
    }


def run_dir_is_complete(run_dir: str, spec=None) -> bool:
    """Whether ``run_dir`` holds a finished run (resume skips these).

    A directory validates when its ``spec.json`` parses, its
    ``status.json`` says ``completed`` — directories from before status
    stamping validate through a recorded best epoch instead — and, when
    ``spec`` is given, the recorded spec matches it exactly (a cell
    whose definition changed must re-run, not be skipped).
    """
    try:
        payload = read_run_dir(run_dir)
    except FileNotFoundError:
        return False
    if spec is not None:
        expected = spec if isinstance(spec, dict) else spec.to_dict()
        if payload["spec"] != expected:
            return False
    status = read_status(run_dir)
    if status is not None:
        return status.get("status") == STATUS_COMPLETED
    return payload["best_epoch"] >= 0


def _strip_wall_time(event: Dict) -> Dict:
    return {k: v for k, v in event.items() if k != "wall_time"}

#: train_config keys that choose *how* a fit is scheduled or observed,
#: never *what* it computes — the ordered worker pool is bit-identical
#: to sequential by construction, so the fingerprint treats
#: ``train_workers`` exactly like the sweep's ``workers`` argument
#: (which is not in the spec at all), ``trace`` only records spans
#: (tested observationally inert), and ``heartbeat_seconds`` only
#: rate-limits the status.json liveness stamp.  ``propagate_every`` and
#: ``async_updates`` DO change the math and stay in the hash.
_SCHEDULE_ONLY_TRAIN_KEYS = ("train_workers", "trace",
                             "heartbeat_seconds")


def _schedule_free_spec(spec: Dict) -> Dict:
    train = spec.get("train_config")
    if not isinstance(train, dict) or not any(
            k in train for k in _SCHEDULE_ONLY_TRAIN_KEYS):
        return spec
    spec = dict(spec)
    spec["train_config"] = {k: v for k, v in train.items()
                            if k not in _SCHEDULE_ONLY_TRAIN_KEYS}
    return spec


def run_dir_fingerprint(run_dir: str) -> str:
    """SHA-256 over the *deterministic* content of a run directory.

    Two runs of the same spec under the same toolchain produce the same
    fingerprint no matter how they were scheduled — sequentially, on any
    worker of a process-parallel sweep, or with any ``train_workers``
    batch-pool size (a schedule-only knob, normalized out of the spec
    echo before hashing).  Covered: the spec echo, the
    status, every ``metrics.jsonl`` event, ``probes.json``,
    ``history.csv`` and the set of timing keys.  Excluded (the only
    nondeterministic fields a run records): wall-clock values —
    ``timing.json`` values, the ``wall_time`` of each epoch event, and
    the ``wall_time`` column of ``history.csv``.
    """
    digest = hashlib.sha256()

    def feed(tag: str, payload) -> None:
        digest.update(tag.encode())
        digest.update(json.dumps(payload, sort_keys=True).encode())

    payload = read_run_dir(run_dir)
    feed("spec", _schedule_free_spec(payload["spec"]))
    feed("probes", payload["probes"])
    status = read_status(run_dir)
    feed("status", (status or {}).get("status"))
    feed("timing_keys", sorted(payload["timing"]))

    metrics_path = os.path.join(run_dir, METRICS_FILE)
    if os.path.exists(metrics_path):
        with open(metrics_path) as handle:
            events = [_strip_wall_time(json.loads(line))
                      for line in handle if line.strip()]
        feed("events", events)

    history_path = os.path.join(run_dir, HISTORY_FILE)
    if os.path.exists(history_path):
        import csv
        with open(history_path, newline="") as handle:
            rows = list(csv.reader(handle))
        if rows:
            keep = [i for i, name in enumerate(rows[0])
                    if name != "wall_time"]
            rows = [[row[i] for i in keep] for row in rows]
        feed("history", rows)
    return digest.hexdigest()


def read_run_dir(run_dir: str) -> Dict:
    """Load the replayable pieces of a run directory back.

    Returns ``{"spec": dict, "metrics": dict, "best_epoch": int,
    "timing": dict, "probes": dict, "environment": dict}``; raises
    ``FileNotFoundError`` when ``run_dir`` holds no ``spec.json``.
    """
    spec_path = os.path.join(run_dir, SPEC_FILE)
    if not os.path.exists(spec_path):
        raise FileNotFoundError(f"{run_dir!r} is not a run directory "
                                f"(no {SPEC_FILE})")
    with open(spec_path) as handle:
        spec = json.load(handle)

    metrics: Dict[str, float] = {}
    best_epoch = -1
    metrics_path = os.path.join(run_dir, METRICS_FILE)
    if os.path.exists(metrics_path):
        with open(metrics_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if event.get("event") == "best":
                    metrics = event.get("metrics", {})
                    best_epoch = int(event.get("epoch", -1))

    def _load(name, default):
        path = os.path.join(run_dir, name)
        if not os.path.exists(path):
            return default
        with open(path) as handle:
            return json.load(handle)

    return {"spec": spec, "metrics": metrics, "best_epoch": best_epoch,
            "timing": _load(TIMING_FILE, {}),
            "probes": _load(PROBES_FILE, {}),
            "environment": _load(ENVIRONMENT_FILE, {})}
