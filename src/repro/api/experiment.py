"""The experiment pipeline: spec in, run directory and results out.

:class:`Experiment` resolves every component of an
:class:`~repro.api.ExperimentSpec` through the process-wide component
registries — dataset (``repro.data``), model (``repro.models``), metric
names (``repro.eval``), probes (``repro.eval``) and post-fit artifact
callbacks (``repro.train``) — and drives the shared Trainer and chunked
evaluator exactly the way the CLI always did, so ``Experiment.run(spec)``
reproduces the historical ``repro train`` path bit-identically for the
same seed and budgets.

:func:`run_sweep` runs many specs with one shared dataset cache (each
``(dataset, seed, options)`` cell is loaded once per sweep) and writes
one replayable run directory per spec under a base directory.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .rundir import read_run_dir, write_run_dir
from .spec import ExperimentSpec
from ..data import InteractionDataset, resolve_dataset
from ..train import Trainer, FitResult, CALLBACK_REGISTRY


@dataclass
class RunResult:
    """Everything one experiment run produced.

    ``fit`` (the full per-epoch history) is only present on live runs;
    results reloaded from a run directory carry the persisted summary —
    spec, best metrics, timing, probe outputs and artifact paths.
    """

    spec: ExperimentSpec
    metrics: Dict[str, float]
    best_epoch: int = -1
    timing: Dict[str, float] = field(default_factory=dict)
    probes: Dict[str, object] = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)
    run_dir: Optional[str] = None
    fit: Optional[FitResult] = None

    @property
    def train_seconds(self) -> float:
        return float(self.timing.get("train_seconds", 0.0))

    @property
    def eval_seconds(self) -> float:
        return float(self.timing.get("eval_seconds", 0.0))

    @classmethod
    def load(cls, run_dir: str) -> "RunResult":
        """Reload a persisted run (inverse of the run-directory write)."""
        payload = read_run_dir(run_dir)
        return cls(spec=ExperimentSpec.from_dict(payload["spec"]),
                   metrics=payload["metrics"],
                   best_epoch=payload["best_epoch"],
                   timing=payload["timing"],
                   probes=payload["probes"],
                   run_dir=run_dir)


def _dataset_cache_key(spec: ExperimentSpec) -> tuple:
    options = tuple(sorted(spec.dataset_options.items()))
    return (spec.dataset, spec.seed, options)


class Experiment:
    """One declarative experiment, resolvable end to end from its spec.

    Usage::

        spec = ExperimentSpec(model="lightgcn", dataset="gowalla",
                              train_config={"epochs": 60})
        result = Experiment(spec).run(run_dir="runs/lightgcn-gowalla")
        result.metrics["recall@20"]

    ``run()`` trains, evaluates (through the trainer's chunked eval
    cadence), executes the spec's probes on the trained model, writes
    the requested artifacts through the callback registry, and — when a
    run directory is given — persists the replayable run record
    (:mod:`repro.api.rundir`).
    """

    def __init__(self, spec, dataset: Optional[InteractionDataset] = None):
        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        self.spec = spec
        self._dataset = dataset
        #: the trained model of the most recent :meth:`run` (for
        #: model-internals case studies; None before the first run)
        self.model = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_file(cls, path: str) -> "Experiment":
        return cls(ExperimentSpec.from_file(path))

    @classmethod
    def from_run_dir(cls, run_dir: str) -> "Experiment":
        """Rebuild the exact experiment a run directory records."""
        return cls(ExperimentSpec.from_dict(read_run_dir(run_dir)["spec"]))

    # ------------------------------------------------------------------ #
    def dataset(self, cache: Optional[Dict] = None) -> InteractionDataset:
        """Resolve (and memoize) the spec's dataset."""
        if self._dataset is None:
            key = _dataset_cache_key(self.spec)
            if cache is not None and key in cache:
                self._dataset = cache[key]
            else:
                self._dataset = resolve_dataset(self.spec.dataset,
                                                seed=self.spec.seed,
                                                **self.spec.dataset_options)
                if cache is not None:
                    cache[key] = self._dataset
        return self._dataset

    def build_model(self, dataset: Optional[InteractionDataset] = None):
        """Registry-resolve and construct the spec's model (untrained)."""
        # deferred: importing the zoo is the heaviest import in the tree
        from ..models import build_model
        dataset = dataset if dataset is not None else self.dataset()
        return build_model(self.spec.model, dataset,
                           self.spec.resolved_model_config(),
                           seed=self.spec.seed)

    # ------------------------------------------------------------------ #
    def run(self, run_dir: Optional[str] = None,
            dataset_cache: Optional[Dict] = None,
            verbose: Optional[bool] = None) -> RunResult:
        """Train -> evaluate -> probe -> persist; returns a `RunResult`."""
        spec = self.spec
        dataset = self.dataset(cache=dataset_cache)
        model = self.build_model(dataset)
        train_config = spec.resolved_train_config()
        if verbose is not None:
            train_config = train_config.with_overrides(verbose=verbose)
        fit = Trainer(model, dataset, train_config, seed=spec.seed).fit()
        self.model = model

        probes: Dict[str, object] = {}
        if spec.probes:
            from ..eval import PROBE_REGISTRY
            for name, options in spec.probes.items():
                probes[name] = PROBE_REGISTRY.get(name)(model, dataset,
                                                        **options)

        artifacts = self._write_artifacts(model, dataset, fit, run_dir)
        timing = {"train_seconds": fit.train_seconds,
                  "sampler_seconds": fit.sampler_seconds,
                  "spmm_seconds": fit.spmm_seconds,
                  "eval_seconds": fit.eval_seconds}
        if run_dir is not None:
            paths = write_run_dir(run_dir, spec, fit=fit,
                                  metrics=fit.best_metrics,
                                  best_epoch=fit.best_epoch,
                                  timing=timing, probes=probes)
            artifacts.update(paths)
        return RunResult(spec=spec, metrics=dict(fit.best_metrics),
                         best_epoch=fit.best_epoch, timing=timing,
                         probes=probes, artifacts=artifacts,
                         run_dir=run_dir, fit=fit)

    def _write_artifacts(self, model, dataset, fit,
                         run_dir: Optional[str]) -> Dict[str, str]:
        """Resolve the spec's artifact paths through the callback registry."""
        artifacts: Dict[str, str] = {}
        for role, callback_name in self.spec.artifacts.CALLBACKS.items():
            path = getattr(self.spec.artifacts, role)
            if not path:
                continue
            if run_dir is not None and not os.path.isabs(path):
                path = os.path.join(run_dir, path)
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            callback = CALLBACK_REGISTRY.get(callback_name)
            artifacts[role] = callback(model, dataset, fit, path)
        return artifacts

    # ------------------------------------------------------------------ #
    def evaluate(self, checkpoint: Optional[str] = None,
                 dataset_cache: Optional[Dict] = None) -> Dict[str, float]:
        """Evaluate the spec's (optionally checkpointed) model, no training.

        Builds the model from the registry, loads ``checkpoint`` when
        given (a :func:`repro.train.save_state` artifact), and runs the
        spec's evaluation protocol through the chunked ranking engine.
        """
        from ..eval import evaluate_model
        from ..train import load_state

        dataset = self.dataset(cache=dataset_cache)
        model = self.build_model(dataset)
        if checkpoint:
            model.load_state_dict(load_state(checkpoint))
        return evaluate_model(model, dataset, ks=self.spec.eval.ks,
                              metrics=self.spec.eval.metrics,
                              chunk_size=self.spec.eval.chunk_size)


def run_experiment(spec, run_dir: Optional[str] = None,
                   **run_kwargs) -> RunResult:
    """One-call convenience: ``Experiment(spec).run(run_dir)``."""
    return Experiment(spec).run(run_dir=run_dir, **run_kwargs)


# --------------------------------------------------------------------- #
# sweeps
# --------------------------------------------------------------------- #

def expand_grid(base, models: Optional[Sequence[str]] = None,
                datasets: Optional[Sequence[str]] = None,
                seeds: Optional[Sequence[int]] = None
                ) -> List[ExperimentSpec]:
    """Grid-expand a base spec over models x datasets x seeds.

    Every cell is the base spec with the axis fields replaced (and its
    ``name`` cleared, so each cell gets its own derived ``run_name``).
    Axes default to the base spec's own value.
    """
    if isinstance(base, dict):
        base = ExperimentSpec.from_dict(base)
    models = tuple(models) if models else (base.model,)
    datasets = tuple(datasets) if datasets else (base.dataset,)
    seeds = tuple(seeds) if seeds else (base.seed,)
    return [base.with_overrides(model=model, dataset=dataset, seed=seed,
                                name=None)
            for model, dataset, seed in product(models, datasets, seeds)]


def run_sweep(specs: Iterable, base_dir: Optional[str] = None,
              verbose: Optional[bool] = None) -> List[RunResult]:
    """Run many specs with shared dataset loading.

    Each ``(dataset, seed, options)`` cell is resolved once and reused
    by every spec that names it.  With ``base_dir`` set, every run
    writes a replayable run directory ``<base_dir>/<run_name>`` (name
    collisions get a numeric suffix, so repeated cells never clobber
    each other).  Returns one :class:`RunResult` per spec, in order.
    """
    dataset_cache: Dict = {}
    used_names: Dict[str, int] = {}
    results: List[RunResult] = []
    for spec in specs:
        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        run_dir = None
        if base_dir is not None:
            name = spec.run_name
            count = used_names.get(name, 0)
            used_names[name] = count + 1
            if count:
                name = f"{name}-{count + 1}"
            run_dir = os.path.join(base_dir, name)
        results.append(Experiment(spec).run(run_dir=run_dir,
                                            dataset_cache=dataset_cache,
                                            verbose=verbose))
    return results


# --------------------------------------------------------------------- #
# serving facade
# --------------------------------------------------------------------- #

def recommend_topk(snapshot: str, users: Optional[np.ndarray] = None,
                   k: int = 20, num_workers: int = 1,
                   exclude_seen: bool = True,
                   train_spec: Optional[ExperimentSpec] = None,
                   run_dir: Optional[str] = None) -> Dict:
    """Serve top-k lists from a snapshot, training one first if missing.

    When ``snapshot`` does not exist yet, ``train_spec`` describes the
    run that produces it (its ``artifacts.snapshot`` is forced to the
    snapshot path, so the served lists always come from the artifact —
    proving the round trip).  Returns a JSON-ready payload::

        {"model": ..., "backend": ..., "k": ..., "exclude_seen": ...,
         "num_users": ..., "recommendations": {"<user>": [item, ...]}}
    """
    from ..serve import RecommenderService, resolve_snapshot_path

    path = resolve_snapshot_path(snapshot)
    if not os.path.exists(path):
        if train_spec is None:
            raise FileNotFoundError(
                f"snapshot {path!r} does not exist; pass train_spec (an "
                "ExperimentSpec) to train and write one")
        if isinstance(train_spec, dict):
            train_spec = ExperimentSpec.from_dict(train_spec)
        # absolute, so a run_dir never relocates the snapshot away from
        # where the serving step below will look for it
        train_spec = train_spec.with_overrides(
            artifacts=train_spec.artifacts.__class__(
                checkpoint=train_spec.artifacts.checkpoint,
                history=train_spec.artifacts.history,
                snapshot=os.path.abspath(path)))
        Experiment(train_spec).run(run_dir=run_dir)

    with RecommenderService.from_snapshot(path,
                                          num_workers=num_workers) as service:
        stats = service.stats()
        if users is not None:
            users = np.asarray(users, dtype=np.int64)
        lists = service.recommend(users, k=k, exclude_seen=exclude_seen)
        if users is None:
            users = np.arange(service.num_users, dtype=np.int64)
    return {
        "model": stats["model"],
        "backend": stats["backend"],
        "num_workers": stats["num_workers"],
        "k": k,
        "exclude_seen": exclude_seen,
        "num_users": int(len(users)),
        "recommendations": {str(int(u)): [int(i) for i in row]
                            for u, row in zip(users, lists)},
    }
