"""The experiment pipeline: spec in, run directory and results out.

:class:`Experiment` resolves every component of an
:class:`~repro.api.ExperimentSpec` through the process-wide component
registries — dataset (``repro.data``), model (``repro.models``), metric
names (``repro.eval``), probes (``repro.eval``) and post-fit artifact
callbacks (``repro.train``) — and drives the shared Trainer and chunked
evaluator exactly the way the CLI always did, so ``Experiment.run(spec)``
reproduces the historical ``repro train`` path bit-identically for the
same seed and budgets.

:func:`run_cell` is the module-level, picklable single-cell entry point
the process-parallel sweep engine (:mod:`repro.api.sweep`) dispatches to
its workers: spec dict in (the strict JSON round trip is the wire
format), JSON-compatible result summary out, every exception converted
into a ``status: failed`` record instead of propagating.
"""

from __future__ import annotations

import os
import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .rundir import (SPEC_FILE, STATUS_COMPLETED, STATUS_FAILED,
                     MetricsStreamWriter, heartbeat_cadence, read_run_dir,
                     read_status, write_failed_run_dir, write_heartbeat,
                     write_run_dir)
from .spec import ExperimentSpec
from ..data import InteractionDataset, resolve_dataset
from ..obs import current_seq, events_since, span, trace_scope
from ..train import Trainer, FitResult, CALLBACK_REGISTRY


@dataclass
class RunResult:
    """Everything one experiment run produced.

    ``fit`` (the full per-epoch history) is only present on live
    in-process runs; results reloaded from a run directory — and results
    returned by parallel sweep workers — carry the persisted summary:
    spec, best metrics, timing, probe outputs and artifact paths.

    ``status`` is ``"completed"`` for a finished run and ``"failed"``
    (with ``error`` carrying the exception) for a sweep cell that
    crashed — see :mod:`repro.api.sweep` for the failure-isolation
    contract.

    Example::

        >>> from repro.api import Experiment, ExperimentSpec
        >>> spec = ExperimentSpec(model="biasmf", dataset="tiny",
        ...                       model_config={"embedding_dim": 8},
        ...                       train_config={"epochs": 2,
        ...                                     "eval_every": 2})
        >>> result = Experiment(spec).run()
        >>> sorted(result.metrics)
        ['ndcg@20', 'ndcg@40', 'recall@20', 'recall@40']
        >>> result.status
        'completed'
    """

    spec: ExperimentSpec
    metrics: Dict[str, float]
    best_epoch: int = -1
    timing: Dict[str, float] = field(default_factory=dict)
    probes: Dict[str, object] = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)
    run_dir: Optional[str] = None
    fit: Optional[FitResult] = None
    status: str = STATUS_COMPLETED
    error: Optional[str] = None
    #: the run's repro.obs trace events (None unless TrainConfig.trace
    #: was on) — plain Chrome-trace dicts, so they survive the summary
    #: wire format and let a sweep parent absorb worker spans exactly
    #: once into its own buffer
    trace_events: Optional[List[Dict]] = None

    @property
    def failed(self) -> bool:
        """True when this run crashed (``status == "failed"``)."""
        return self.status == STATUS_FAILED

    @property
    def train_seconds(self) -> float:
        return float(self.timing.get("train_seconds", 0.0))

    @property
    def eval_seconds(self) -> float:
        return float(self.timing.get("eval_seconds", 0.0))

    @classmethod
    def load(cls, run_dir: str) -> "RunResult":
        """Reload a persisted run (inverse of the run-directory write)."""
        payload = read_run_dir(run_dir)
        status = read_status(run_dir) or {"status": STATUS_COMPLETED}
        return cls(spec=ExperimentSpec.from_dict(payload["spec"]),
                   metrics=payload["metrics"],
                   best_epoch=payload["best_epoch"],
                   timing=payload["timing"],
                   probes=payload["probes"],
                   run_dir=run_dir,
                   status=status.get("status", STATUS_COMPLETED),
                   error=status.get("error"))

    def summary(self) -> Dict:
        """JSON-compatible summary (the parallel-sweep wire format)."""
        return {"spec": self.spec.to_dict(), "metrics": dict(self.metrics),
                "best_epoch": self.best_epoch, "timing": dict(self.timing),
                "probes": self.probes, "artifacts": dict(self.artifacts),
                "run_dir": self.run_dir, "status": self.status,
                "error": self.error, "trace_events": self.trace_events}

    @classmethod
    def from_summary(cls, payload: Dict) -> "RunResult":
        """Rebuild a result from :meth:`summary` (inverse, minus ``fit``)."""
        return cls(spec=ExperimentSpec.from_dict(payload["spec"]),
                   metrics=payload["metrics"],
                   best_epoch=payload["best_epoch"],
                   timing=payload["timing"], probes=payload["probes"],
                   artifacts=payload["artifacts"],
                   run_dir=payload["run_dir"], status=payload["status"],
                   error=payload["error"],
                   trace_events=payload.get("trace_events"))


def _dataset_cache_key(spec: ExperimentSpec) -> tuple:
    options = tuple(sorted(spec.dataset_options.items()))
    return (spec.dataset, spec.seed, options)


class Experiment:
    """One declarative experiment, resolvable end to end from its spec.

    ``run()`` trains, evaluates (through the trainer's chunked eval
    cadence), executes the spec's probes on the trained model, writes
    the requested artifacts through the callback registry, and — when a
    run directory is given — persists the replayable run record
    (:mod:`repro.api.rundir`).

    Example (a fast run on the bundled ``tiny`` profile)::

        >>> from repro.api import Experiment, ExperimentSpec
        >>> spec = ExperimentSpec(model="lightgcn", dataset="tiny",
        ...                       model_config={"embedding_dim": 8,
        ...                                     "num_layers": 2},
        ...                       train_config={"epochs": 2,
        ...                                     "eval_every": 2})
        >>> result = Experiment(spec).run()
        >>> result.best_epoch
        2
        >>> 0.0 <= result.metrics["recall@20"] <= 1.0
        True
    """

    def __init__(self, spec, dataset: Optional[InteractionDataset] = None):
        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        self.spec = spec
        self._dataset = dataset
        #: the trained model of the most recent :meth:`run` (for
        #: model-internals case studies; None before the first run)
        self.model = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_file(cls, path: str) -> "Experiment":
        return cls(ExperimentSpec.from_file(path))

    @classmethod
    def from_run_dir(cls, run_dir: str) -> "Experiment":
        """Rebuild the exact experiment a run directory records."""
        return cls(ExperimentSpec.from_dict(read_run_dir(run_dir)["spec"]))

    # ------------------------------------------------------------------ #
    def dataset(self, cache: Optional[Dict] = None) -> InteractionDataset:
        """Resolve (and memoize) the spec's dataset."""
        if self._dataset is None:
            key = _dataset_cache_key(self.spec)
            if cache is not None and key in cache:
                self._dataset = cache[key]
            else:
                self._dataset = resolve_dataset(self.spec.dataset,
                                                seed=self.spec.seed,
                                                **self.spec.dataset_options)
                if cache is not None:
                    cache[key] = self._dataset
        return self._dataset

    def build_model(self, dataset: Optional[InteractionDataset] = None):
        """Registry-resolve and construct the spec's model (untrained)."""
        # deferred: importing the zoo is the heaviest import in the tree
        from ..models import build_model
        dataset = dataset if dataset is not None else self.dataset()
        return build_model(self.spec.model, dataset,
                           self.spec.resolved_model_config(),
                           seed=self.spec.seed)

    # ------------------------------------------------------------------ #
    def run(self, run_dir: Optional[str] = None,
            dataset_cache: Optional[Dict] = None,
            verbose: Optional[bool] = None) -> RunResult:
        """Train -> evaluate -> probe -> persist; returns a `RunResult`.

        With ``TrainConfig.trace`` on, the whole pipeline runs under
        ``repro.obs`` spans (with per-primitive profiling enabled so the
        autograd counter tracks materialize), and the run's events land
        both on the result (``RunResult.trace_events``) and — when a run
        directory is given — as its ``trace.json`` artifact.

        A run directory is written *incrementally*: the spec echo lands
        before the fit starts, each epoch appends a crash-safe
        ``metrics.jsonl`` row and re-stamps the ``status.json``
        heartbeat, and the terminal write marks the run completed.
        """
        spec = self.spec
        train_config = spec.resolved_train_config()
        if verbose is not None:
            train_config = train_config.with_overrides(verbose=verbose)
        trace_on = bool(train_config.trace)
        trace_start = current_seq()

        stream: Optional[MetricsStreamWriter] = None
        epoch_hook = None
        if run_dir is not None:
            # the spec echo lands first so even a SIGKILLed run dir is
            # diagnosable (and recognizably incomplete on resume)
            os.makedirs(run_dir, exist_ok=True)
            spec.save(os.path.join(run_dir, SPEC_FILE))
            write_heartbeat(run_dir, epoch=0)
            stream = MetricsStreamWriter(run_dir)
            # rate-limit heartbeat stamps to the configured cadence,
            # measured on the monotonic clock (wall jumps can neither
            # flood nor starve the liveness signal); 0 = every epoch
            cadence = heartbeat_cadence(train_config.heartbeat_seconds)
            last_beat = time.monotonic()

            def epoch_hook(record):
                nonlocal last_beat
                stream.write_event({"event": "epoch",
                                    "epoch": record.epoch,
                                    "loss": record.loss,
                                    "wall_time": record.wall_time,
                                    "metrics": record.metrics})
                now = time.monotonic()
                if cadence <= 0.0 or now - last_beat >= cadence:
                    write_heartbeat(run_dir, epoch=record.epoch)
                    last_beat = now

        from ..autograd import (enable_primitive_profiling,
                                primitive_profiling_enabled)
        profiling_prev = primitive_profiling_enabled()
        try:
            with trace_scope(trace_on):
                if trace_on and not profiling_prev:
                    enable_primitive_profiling(True)
                with span("experiment.run", model=spec.model,
                          dataset=spec.dataset):
                    with span("experiment.dataset", dataset=spec.dataset):
                        dataset = self.dataset(cache=dataset_cache)
                    with span("experiment.model", model=spec.model):
                        model = self.build_model(dataset)
                    fit = Trainer(model, dataset, train_config,
                                  seed=spec.seed,
                                  epoch_hook=epoch_hook).fit()
                    self.model = model

                    probes: Dict[str, object] = {}
                    if spec.probes:
                        from ..eval import PROBE_REGISTRY
                        with span("experiment.probes"):
                            for name, options in spec.probes.items():
                                probes[name] = PROBE_REGISTRY.get(name)(
                                    model, dataset, **options)

                    artifacts = self._write_artifacts(model, dataset, fit,
                                                      run_dir)
        finally:
            if trace_on and not profiling_prev:
                enable_primitive_profiling(False)
            if stream is not None:
                stream.close()

        # sliced after the scope closes so the export includes the
        # experiment.run span itself (and any absorbed worker spans)
        trace_events = events_since(trace_start) if trace_on else None
        timing = {"train_seconds": fit.train_seconds,
                  "sampler_seconds": fit.sampler_seconds,
                  "spmm_seconds": fit.spmm_seconds,
                  "eval_seconds": fit.eval_seconds}
        if run_dir is not None:
            paths = write_run_dir(run_dir, spec, fit=fit,
                                  metrics=fit.best_metrics,
                                  best_epoch=fit.best_epoch,
                                  timing=timing, probes=probes,
                                  trace_events=trace_events)
            artifacts.update(paths)
        return RunResult(spec=spec, metrics=dict(fit.best_metrics),
                         best_epoch=fit.best_epoch, timing=timing,
                         probes=probes, artifacts=artifacts,
                         run_dir=run_dir, fit=fit,
                         trace_events=trace_events)

    def _write_artifacts(self, model, dataset, fit,
                         run_dir: Optional[str]) -> Dict[str, str]:
        """Resolve the spec's artifact paths through the callback registry."""
        artifacts: Dict[str, str] = {}
        for role, callback_name in self.spec.artifacts.CALLBACKS.items():
            path = getattr(self.spec.artifacts, role)
            if not path:
                continue
            if run_dir is not None and not os.path.isabs(path):
                path = os.path.join(run_dir, path)
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            callback = CALLBACK_REGISTRY.get(callback_name)
            artifacts[role] = callback(model, dataset, fit, path)
        return artifacts

    # ------------------------------------------------------------------ #
    def evaluate(self, checkpoint: Optional[str] = None,
                 dataset_cache: Optional[Dict] = None) -> Dict[str, float]:
        """Evaluate the spec's (optionally checkpointed) model, no training.

        Builds the model from the registry, loads ``checkpoint`` when
        given (a :func:`repro.train.save_state` artifact), and runs the
        spec's evaluation protocol through the chunked ranking engine.
        """
        from ..eval import evaluate_model
        from ..train import load_state

        dataset = self.dataset(cache=dataset_cache)
        model = self.build_model(dataset)
        if checkpoint:
            model.load_state_dict(load_state(checkpoint))
        return evaluate_model(model, dataset, ks=self.spec.eval.ks,
                              metrics=self.spec.eval.metrics,
                              chunk_size=self.spec.eval.chunk_size)


def run_experiment(spec, run_dir: Optional[str] = None,
                   **run_kwargs) -> RunResult:
    """One-call convenience: ``Experiment(spec).run(run_dir)``."""
    return Experiment(spec).run(run_dir=run_dir, **run_kwargs)


# --------------------------------------------------------------------- #
# the picklable single-cell entry point (the sweep engine's unit of work)
# --------------------------------------------------------------------- #

def run_cell(spec_dict: Dict, run_dir: Optional[str] = None,
             verbose: Optional[bool] = None,
             dataset_cache: Optional[Dict] = None) -> Dict:
    """Run one sweep cell; never raises — crashes become failure records.

    This is the function :class:`repro.api.sweep.SweepRunner` ships to
    its worker processes, so everything that crosses the process
    boundary is spawn-safe by construction: the input is a plain spec
    dict (the strict :meth:`ExperimentSpec.from_dict` round trip is the
    wire format) and the output is the JSON-compatible
    :meth:`RunResult.summary` payload.  Any exception — a bad spec, a
    missing dataset file, a crash mid-fit — is caught and converted into
    a ``{"status": "failed", "error": ..., "traceback": ...}`` summary;
    when ``run_dir`` is set the failure is also persisted there
    (:func:`repro.api.rundir.write_failed_run_dir`), so one crashed cell
    never takes down the sweep around it.  A traced cell that crashes
    still ships the spans it recorded up to the crash in its failure
    summary, so merged sweep traces show *where* a cell died.
    """
    trace_start = current_seq()
    try:
        spec = ExperimentSpec.from_dict(dict(spec_dict))
    except Exception as exc:                       # noqa: BLE001 — isolate
        # the spec never parsed; echo the raw payload for diagnosis
        return _failed_summary(dict(spec_dict), run_dir, exc)
    try:
        result = Experiment(spec).run(run_dir=run_dir,
                                      dataset_cache=dataset_cache,
                                      verbose=verbose)
        return result.summary()
    except Exception as exc:                       # noqa: BLE001 — isolate
        return _failed_summary(spec.to_dict(), run_dir, exc,
                               trace_events=events_since(trace_start)
                               or None)


def _failed_summary(spec_payload: Dict, run_dir: Optional[str],
                    exc: BaseException,
                    trace_events: Optional[List[Dict]] = None) -> Dict:
    """The failed-cell wire format (must be called from an ``except``
    block: the active exception supplies the traceback); persists the
    failure record when a run directory was claimed."""
    error = f"{type(exc).__name__}: {exc}"
    tb = _traceback.format_exc()
    if run_dir is not None:
        write_failed_run_dir(run_dir, spec_payload, error, tb)
    return {"spec": spec_payload, "metrics": {}, "best_epoch": -1,
            "timing": {}, "probes": {}, "artifacts": {},
            "run_dir": run_dir, "status": STATUS_FAILED,
            "error": error, "traceback": tb,
            "trace_events": trace_events}


# --------------------------------------------------------------------- #
# serving facade
# --------------------------------------------------------------------- #

def recommend_topk(snapshot: str, users: Optional[np.ndarray] = None,
                   k: int = 20, num_workers: int = 1,
                   exclude_seen: bool = True,
                   train_spec: Optional[ExperimentSpec] = None,
                   run_dir: Optional[str] = None,
                   backend: str = "exact", mmap: bool = False) -> Dict:
    """Serve top-k lists from a snapshot, training one first if missing.

    When ``snapshot`` does not exist yet, ``train_spec`` describes the
    run that produces it (its ``artifacts.snapshot`` is forced to the
    snapshot path, so the served lists always come from the artifact —
    proving the round trip).  ``backend="ann"`` serves through the IVF
    retrieval index (embedding snapshots only; see
    :mod:`repro.serve.ann` for the recall budget), and ``mmap=True``
    memory-maps the embedding tables (format v3 artifacts) so
    concurrent serving processes share one copy.  Returns a JSON-ready
    payload::

        {"model": ..., "backend": ..., "k": ..., "exclude_seen": ...,
         "num_users": ..., "recommendations": {"<user>": [item, ...]}}

    Example (train-if-missing, then serve)::

        >>> import os, tempfile
        >>> from repro.api import ExperimentSpec, recommend_topk
        >>> spec = ExperimentSpec(model="biasmf", dataset="tiny",
        ...                       model_config={"embedding_dim": 8},
        ...                       train_config={"epochs": 1})
        >>> snap = os.path.join(tempfile.mkdtemp(), "serve.npz")
        >>> payload = recommend_topk(snap, users=[0, 3], k=5,
        ...                          train_spec=spec)
        >>> sorted(payload["recommendations"])
        ['0', '3']
        >>> len(payload["recommendations"]["0"])
        5
    """
    from ..serve import RecommenderService, resolve_snapshot_path

    path = resolve_snapshot_path(snapshot)
    if not os.path.exists(path):
        if train_spec is None:
            raise FileNotFoundError(
                f"snapshot {path!r} does not exist; pass train_spec (an "
                "ExperimentSpec) to train and write one")
        if isinstance(train_spec, dict):
            train_spec = ExperimentSpec.from_dict(train_spec)
        # absolute, so a run_dir never relocates the snapshot away from
        # where the serving step below will look for it
        train_spec = train_spec.with_overrides(
            artifacts=train_spec.artifacts.__class__(
                checkpoint=train_spec.artifacts.checkpoint,
                history=train_spec.artifacts.history,
                snapshot=os.path.abspath(path)))
        Experiment(train_spec).run(run_dir=run_dir)

    with RecommenderService.from_snapshot(path, num_workers=num_workers,
                                          backend=backend,
                                          mmap=mmap) as service:
        stats = service.stats()
        if users is not None:
            users = np.asarray(users, dtype=np.int64)
        lists = service.recommend(users, k=k, exclude_seen=exclude_seen)
        if users is None:
            users = np.arange(service.num_users, dtype=np.int64)
    return {
        "model": stats["model"],
        "backend": stats["backend"],
        "num_workers": stats["num_workers"],
        "k": k,
        "exclude_seen": exclude_seen,
        "num_users": int(len(users)),
        "recommendations": {str(int(u)): [int(i) for i in row]
                            for u, row in zip(users, lists)},
    }
