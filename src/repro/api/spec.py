"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the single typed description of one run:
which dataset, which model, which hyperparameter overrides, how to
evaluate, which probes to run afterwards and which artifacts to write.
Every field round-trips losslessly through a plain JSON-compatible dict
(:meth:`ExperimentSpec.to_dict` / :meth:`ExperimentSpec.from_dict`), so
specs live naturally in files, sweep grids and run-directory echoes.

Parsing is *strict*: an unknown key anywhere — the spec itself, the
nested ``eval``/``artifacts`` blocks, or the ``model_config`` /
``train_config`` override dicts — raises a ``ValueError`` naming the bad
field, so a typo can never silently fall back to a default.

Component names (``model``, ``dataset``, probe names, metric names) are
validated against the process-wide component registries
(:func:`repro.utils.component_registry`) at construction time.
``dataset`` may alternatively be a file path; path-shaped strings (a
separator or an extension) are resolved at run time, so they may name a
file that does not exist yet.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional, Sequence, Tuple

from ..train.config import ModelConfig, TrainConfig, config_from_dict


def _looks_like_path(source: str) -> bool:
    """Heuristic for dataset strings naming a (possibly future) file.

    Specs may be authored before their data file exists, so existence
    cannot be required at construction time; anything carrying a
    directory separator or a file extension is accepted as a path and
    resolved at run time instead.
    """
    return os.sep in source or "/" in source or bool(
        os.path.splitext(source)[1])


def _jsonify(mapping: Dict) -> Dict:
    """Copy of an options dict with tuples converted to lists."""
    return {k: (list(v) if isinstance(v, tuple) else v)
            for k, v in mapping.items()}


def _check_known_keys(payload: Dict, known, what: str) -> None:
    for key in payload:
        if key not in known:
            raise ValueError(f"unknown {what} field {key!r}; "
                             f"known fields: {sorted(known)}")


@dataclass
class EvalSpec:
    """Full-ranking evaluation protocol settings."""

    ks: Tuple[int, ...] = (20, 40)
    metrics: Tuple[str, ...] = ("recall", "ndcg")
    chunk_size: Optional[int] = None   # None = auto-size from the memory
                                       # budget (eval.auto_chunk_size)

    def __post_init__(self):
        self.ks = tuple(int(k) for k in self.ks)
        self.metrics = tuple(str(m) for m in self.metrics)
        from ..eval.metrics import METRIC_REGISTRY
        for metric in self.metrics:
            if metric not in METRIC_REGISTRY:
                raise ValueError(f"unknown metric {metric!r}; "
                                 f"available: {METRIC_REGISTRY.names()}")

    def to_dict(self) -> Dict:
        return {"ks": list(self.ks), "metrics": list(self.metrics),
                "chunk_size": self.chunk_size}

    @classmethod
    def from_dict(cls, payload: Dict) -> "EvalSpec":
        _check_known_keys(payload, {f.name for f in fields(cls)}, "eval")
        return cls(**payload)


@dataclass
class ArtifactSpec:
    """Post-fit artifact paths, resolved through the callback registry.

    Each non-``None`` path is written after training by the registered
    callback of the same role (``best_checkpoint``, ``history_csv``,
    ``serving_snapshot`` — see :data:`repro.train.CALLBACK_REGISTRY`).
    Relative paths are joined under the run directory when one is given.
    """

    checkpoint: Optional[str] = None
    history: Optional[str] = None
    snapshot: Optional[str] = None

    #: artifact role -> callback registry name
    CALLBACKS = {"checkpoint": "best_checkpoint",
                 "history": "history_csv",
                 "snapshot": "serving_snapshot"}

    def to_dict(self) -> Dict:
        return {"checkpoint": self.checkpoint, "history": self.history,
                "snapshot": self.snapshot}

    @classmethod
    def from_dict(cls, payload: Dict) -> "ArtifactSpec":
        _check_known_keys(payload, {f.name for f in fields(cls)},
                          "artifacts")
        return cls(**payload)


@dataclass
class ExperimentSpec:
    """One declarative experiment: dataset -> model -> eval -> artifacts.

    ``model_config`` and ``train_config`` are override dicts onto
    :class:`~repro.train.ModelConfig` / :class:`~repro.train.TrainConfig`
    (unset fields keep the library defaults, exactly as the CLI flags
    always did).  ``probes`` maps probe registry names to their option
    dicts.  ``dataset`` is a registered name (synthetic profiles,
    ``"tiny"``) or a file path (``.npz`` / TSV edge list) — see
    :func:`repro.data.resolve_dataset`.

    Example (strict, lossless round trip)::

        >>> from repro.api import ExperimentSpec
        >>> spec = ExperimentSpec(model="lightgcn", dataset="tiny", seed=3)
        >>> spec.run_name
        'lightgcn-tiny-seed3'
        >>> ExperimentSpec.from_dict(spec.to_dict()) == spec
        True
        >>> ExperimentSpec.from_dict({**spec.to_dict(), "typo": 1})
        Traceback (most recent call last):
        ...
        ValueError: unknown ExperimentSpec field 'typo'; known fields: ...
    """

    model: str
    dataset: str
    seed: int = 0
    name: Optional[str] = None                 # run label; defaults to
                                               # "<model>-<dataset>-seed<n>"
    dataset_options: Dict = field(default_factory=dict)
    model_config: Dict = field(default_factory=dict)
    train_config: Dict = field(default_factory=dict)
    eval: EvalSpec = field(default_factory=EvalSpec)
    probes: Dict[str, Dict] = field(default_factory=dict)
    artifacts: ArtifactSpec = field(default_factory=ArtifactSpec)

    # ------------------------------------------------------------------ #
    def __post_init__(self):
        if not self.model:
            raise ValueError("ExperimentSpec.model is required")
        if not self.dataset:
            raise ValueError("ExperimentSpec.dataset is required")
        if isinstance(self.eval, dict):
            self.eval = EvalSpec.from_dict(self.eval)
        if isinstance(self.artifacts, dict):
            self.artifacts = ArtifactSpec.from_dict(self.artifacts)
        if isinstance(self.probes, (list, tuple)):
            self.probes = {name: {} for name in self.probes}
        # normalize override dicts to their JSON form (tuples -> lists)
        # so a constructed spec equals its dict round trip exactly
        self.dataset_options = _jsonify(self.dataset_options)
        self.model_config = _jsonify(self.model_config)
        self.train_config = _jsonify(self.train_config)
        self.probes = {name: _jsonify(options)
                       for name, options in self.probes.items()}
        # validate names and override keys against the registries now, so
        # a bad spec fails at construction rather than mid-pipeline
        from ..models.registry import MODEL_REGISTRY
        if self.model not in MODEL_REGISTRY:
            raise ValueError(f"unknown model {self.model!r}; "
                             f"available: {MODEL_REGISTRY.names()}")
        from ..data import DATASET_REGISTRY
        if self.dataset not in DATASET_REGISTRY \
                and not os.path.exists(self.dataset) \
                and not _looks_like_path(self.dataset):
            # a bare word that is neither registered nor an existing file
            # is a name typo, not a to-be-created path
            raise ValueError(
                f"unknown dataset {self.dataset!r}: not a registered "
                f"name (available: {DATASET_REGISTRY.names()}), not an "
                "existing file, and not path-shaped")
        from ..eval import PROBE_REGISTRY
        for probe in self.probes:
            if probe not in PROBE_REGISTRY:
                raise ValueError(f"unknown probe {probe!r}; "
                                 f"available: {PROBE_REGISTRY.names()}")
        # strict key check (and a dry type normalization) of the overrides
        self.resolved_model_config()
        self.resolved_train_config()

    # ------------------------------------------------------------------ #
    @property
    def run_name(self) -> str:
        """Stable label for run directories and sweep cells."""
        if self.name:
            return self.name
        stem = os.path.splitext(os.path.basename(self.dataset))[0]
        return f"{self.model}-{stem}-seed{self.seed}"

    def resolved_model_config(self) -> ModelConfig:
        """The :class:`ModelConfig` this spec's overrides describe."""
        return config_from_dict(ModelConfig, self.model_config,
                                context="model_config")

    def resolved_train_config(self) -> TrainConfig:
        """The :class:`TrainConfig` this spec describes.

        The ``eval`` block wires the trainer's evaluation protocol
        (``eval_ks`` / ``eval_metrics`` / ``eval_chunk_size``) unless the
        ``train_config`` overrides pin those fields explicitly.
        """
        config = config_from_dict(TrainConfig, self.train_config,
                                  context="train_config")
        wiring = {}
        if "eval_ks" not in self.train_config:
            wiring["eval_ks"] = self.eval.ks
        if "eval_metrics" not in self.train_config:
            wiring["eval_metrics"] = self.eval.metrics
        if "eval_chunk_size" not in self.train_config:
            wiring["eval_chunk_size"] = self.eval.chunk_size
        return config.with_overrides(**wiring) if wiring else config

    def with_overrides(self, **kwargs) -> "ExperimentSpec":
        return replace(self, **kwargs)

    # ------------------------------------------------------------------ #
    # dict / file round trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """Plain JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {
            "model": self.model,
            "dataset": self.dataset,
            "seed": self.seed,
            "name": self.name,
            "dataset_options": _jsonify(self.dataset_options),
            "model_config": _jsonify(self.model_config),
            "train_config": _jsonify(self.train_config),
            "eval": self.eval.to_dict(),
            "probes": {name: _jsonify(options)
                       for name, options in self.probes.items()},
            "artifacts": self.artifacts.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ExperimentSpec":
        """Strict inverse of :meth:`to_dict` (see module docstring)."""
        if not isinstance(payload, dict):
            raise TypeError("an experiment spec must be a dict, got "
                            f"{type(payload).__name__}")
        _check_known_keys(payload, {f.name for f in fields(cls)},
                          "ExperimentSpec")
        return cls(**payload)

    @classmethod
    def from_file(cls, path: str) -> "ExperimentSpec":
        """Load one spec from a JSON file."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def save(self, path: str) -> str:
        """Write the spec as JSON; the file loads back via `from_file`."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
