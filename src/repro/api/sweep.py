"""The sweep engine: process-parallel, fault-tolerant, resumable grids.

PR 4 made every sweep cell a self-contained, replayable
:class:`~repro.api.ExperimentSpec`; this module turns that property into
an execution engine.  :class:`SweepRunner` drives a grid of specs

* **in parallel** over a ``ProcessPoolExecutor`` (``workers=N``; the
  default ``workers=None`` keeps the classic sequential in-process
  path).  Specs cross the process boundary as plain dicts through the
  strict JSON round trip — the engine is spawn-safe by construction —
  and each worker holds one dataset cache (:func:`_worker_init`), so a
  ``models x seeds`` grid loads every dataset once per worker, not once
  per cell;
* **with per-cell failure isolation**: a cell that raises anywhere —
  spec resolution, dataset loading, mid-fit — records ``status: failed``
  plus the traceback in its run directory
  (:func:`repro.api.rundir.write_failed_run_dir`) and the rest of the
  grid keeps running.  The returned :class:`~repro.api.RunResult` list
  always has one entry per spec, in order, with ``result.failed``
  marking the crashes;
* **resumably**: every sweep with a base directory writes a
  ``sweep.json`` manifest (cell names + spec echoes) first, and
  :meth:`SweepRunner.resume` re-reads it, skips cells whose run dirs
  validate (``status: completed`` and a matching spec echo), and
  re-runs exactly the failed/missing ones;
* **without write races**: run-directory names are claimed atomically
  (:func:`claim_run_dir`, an ``os.mkdir``-based claim), so two cells —
  or two whole sweeps — racing to the same name get distinct
  directories instead of interleaved writes.  A sweep reusing an
  earlier sweep's base directory merges the existing manifest into its
  own (the earlier cells keep their entries), so resume and
  aggregation keep covering everything the directory holds.

Scheduling never changes results: training is seeded per spec, so an
N-worker sweep produces run directories bit-identical to the sequential
path (everything except wall-clock timings; certified by
:func:`repro.api.rundir.run_dir_fingerprint` in
``tests/test_api_sweep.py`` and benched in
``benchmarks/test_hotpath.py``).

After a sweep finishes, :func:`aggregate_results` folds the run
directories into a tidy per-cell metrics table and writes
``results.csv`` + a ``leaderboard.md`` ranking the completed cells.
The CLI exposes all of it: ``repro run spec.json --sweep-models ...
--workers 4 --run-dir runs/sweep`` and ``repro run --resume runs/sweep``.
"""

from __future__ import annotations

import csv
import io
import json
import multiprocessing
import os
import shutil
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .experiment import Experiment, RunResult, run_cell
from .rundir import (STATUS_COMPLETED, STATUS_FAILED, STATUS_RUNNING,
                     TRACE_FILE, read_run_dir, read_status,
                     run_dir_is_complete, write_failed_run_dir)
from .spec import ExperimentSpec
from ..obs import (absorb_events, current_seq, events_since, export_trace,
                   span, trace_scope)
from ..utils.threads import (apply_blas_thread_limit, blas_thread_budget,
                             blas_thread_limit)

#: the sweep-level manifest written into the base directory
SWEEP_MANIFEST = "sweep.json"
SWEEP_SCHEMA = "sweep/v1"

#: aggregation artifacts (:func:`aggregate_results`)
LEADERBOARD_FILE = "leaderboard.md"
RESULTS_CSV_FILE = "results.csv"

#: multiprocessing start method for the worker pool; ``spawn`` gives
#: every worker a clean interpreter (no inherited locks / RNG state), so
#: cells behave identically no matter which process runs them
MP_START_METHOD = "spawn"


# --------------------------------------------------------------------- #
# grid expansion
# --------------------------------------------------------------------- #

def expand_grid(base, models: Optional[Sequence[str]] = None,
                datasets: Optional[Sequence[str]] = None,
                seeds: Optional[Sequence[int]] = None
                ) -> List[ExperimentSpec]:
    """Grid-expand a base spec over models x datasets x seeds.

    Every cell is the base spec with the axis fields replaced (and its
    ``name`` cleared, so each cell gets its own derived ``run_name``).
    Axes default to the base spec's own value.

    Example::

        >>> from repro.api import ExperimentSpec, expand_grid
        >>> base = ExperimentSpec(model="biasmf", dataset="tiny")
        >>> specs = expand_grid(base, models=["biasmf", "lightgcn"],
        ...                     seeds=[0, 1])
        >>> [s.run_name for s in specs]
        ['biasmf-tiny-seed0', 'biasmf-tiny-seed1', 'lightgcn-tiny-seed0', 'lightgcn-tiny-seed1']
    """
    if isinstance(base, dict):
        base = ExperimentSpec.from_dict(base)
    models = tuple(models) if models else (base.model,)
    datasets = tuple(datasets) if datasets else (base.dataset,)
    seeds = tuple(seeds) if seeds else (base.seed,)
    return [base.with_overrides(model=model, dataset=dataset, seed=seed,
                                name=None)
            for model, dataset, seed in product(models, datasets, seeds)]


# --------------------------------------------------------------------- #
# atomic run-directory claims
# --------------------------------------------------------------------- #

def claim_run_dir(base_dir: str, name: str) -> Tuple[str, str]:
    """Atomically claim ``<base_dir>/<name>``; returns ``(name, path)``.

    The claim is one ``os.mkdir`` — it either creates the directory (the
    caller now owns it exclusively) or raises ``FileExistsError``, in
    which case the name gets a numeric suffix (``name-2``, ``name-3``,
    ...) and the claim retries.  Two processes racing to the same name
    therefore always end up with two distinct directories; interleaved
    writes into one run dir cannot happen.
    """
    os.makedirs(base_dir, exist_ok=True)
    count = 1
    candidate = name
    while True:
        path = os.path.join(base_dir, candidate)
        try:
            os.mkdir(path)
            return candidate, path
        except FileExistsError:
            count += 1
            candidate = f"{name}-{count}"


def assign_cell_names(specs: Sequence[ExperimentSpec]
                      ) -> List[Tuple[str, ExperimentSpec]]:
    """Deterministic per-cell names: run_name plus in-sweep collision
    suffixes (``-2``, ``-3``, ... — repeated cells never share a dir).

    Public because every sweep *engine* must agree on this mapping: the
    dispatch coordinator (:mod:`repro.dispatch`) names its queue cells
    through the same function, which is what makes a dispatched sweep's
    run directories line up one-to-one with a sequential sweep's.
    """
    used: Dict[str, int] = {}
    cells = []
    for spec in specs:
        name = spec.run_name
        count = used.get(name, 0)
        used[name] = count + 1
        if count:
            name = f"{name}-{count + 1}"
        cells.append((name, spec))
    return cells


#: backwards-compatible alias (pre-dispatch internal name)
_assign_cell_names = assign_cell_names


# --------------------------------------------------------------------- #
# the manifest
# --------------------------------------------------------------------- #

def write_sweep_manifest(sweep_dir: str, cells: List[Dict],
                         workers: Optional[int]) -> str:
    """Write ``sweep.json``: the sweep's cell list as a replay key.

    ``cells`` is a list of ``{"name", "spec", "status", "error"}``
    dicts.  Statuses recorded here are advisory progress notes — the
    run directories are the source of truth :meth:`SweepRunner.resume`
    validates against (a killed sweep leaves ``pending`` entries behind;
    resume re-checks the dirs, not the manifest).  The write goes
    through a temp file + ``os.replace`` so readers never see a torn
    manifest.
    """
    payload = {"schema": SWEEP_SCHEMA, "workers": workers, "cells": cells}
    path = os.path.join(sweep_dir, SWEEP_MANIFEST)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def merge_sweep_manifest(sweep_dir: str, cells: List[Dict],
                         workers: Optional[int]) -> str:
    """Read-merge-write ``sweep.json`` under an advisory file lock.

    Cells already recorded under *other* names (an earlier or concurrent
    sweep sharing this base directory) are preserved; ``cells`` replace
    entries with the same name.  The merge re-reads the manifest at
    write time inside an ``flock`` (where available), so two sweeps
    finishing in any order keep the union instead of the last writer
    erasing the other's cells.
    """
    lock_path = os.path.join(sweep_dir, SWEEP_MANIFEST + ".lock")
    with open(lock_path, "w") as lock:
        try:
            import fcntl
            fcntl.flock(lock, fcntl.LOCK_EX)
        except ImportError:          # non-POSIX: best-effort, unlocked
            pass
        our_names = {cell["name"] for cell in cells}
        try:
            existing = read_sweep_manifest(sweep_dir)
            foreign = [cell for cell in existing.get("cells", ())
                       if cell.get("name") not in our_names]
        except (FileNotFoundError, ValueError, KeyError):
            foreign = []
        return write_sweep_manifest(sweep_dir, foreign + cells, workers)


def read_sweep_manifest(sweep_dir: str) -> Dict:
    """Load and schema-check ``<sweep_dir>/sweep.json``."""
    path = os.path.join(sweep_dir, SWEEP_MANIFEST)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"{sweep_dir!r} is not a sweep directory (no {SWEEP_MANIFEST})")
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != SWEEP_SCHEMA:
        raise ValueError(f"unsupported sweep manifest schema "
                         f"{payload.get('schema')!r} (expected "
                         f"{SWEEP_SCHEMA!r})")
    return payload


# --------------------------------------------------------------------- #
# worker-side plumbing (must be module-level: pickled by qualified name)
# --------------------------------------------------------------------- #

_WORKER_DATASET_CACHE: Optional[Dict] = None


def _worker_init(blas_threads: int = 0) -> None:
    """Pool initializer: one dataset cache per worker process, so every
    ``(dataset, seed, options)`` cell is loaded once per worker; also
    pins the worker's BLAS pool to its share of the machine
    (:mod:`repro.utils.threads`) so N cells don't oversubscribe cores."""
    global _WORKER_DATASET_CACHE
    _WORKER_DATASET_CACHE = {}
    if blas_threads:
        apply_blas_thread_limit(blas_threads)


def _run_cell_task(spec_dict: Dict, run_dir: Optional[str],
                   verbose: Optional[bool]) -> Dict:
    """The unit of work a pool worker executes (see ``run_cell``)."""
    global _WORKER_DATASET_CACHE
    if _WORKER_DATASET_CACHE is None:
        _WORKER_DATASET_CACHE = {}
    return run_cell(spec_dict, run_dir=run_dir, verbose=verbose,
                    dataset_cache=_WORKER_DATASET_CACHE)


# --------------------------------------------------------------------- #
# the engine
# --------------------------------------------------------------------- #

class SweepRunner:
    """Execute a grid of experiment specs — parallel, isolated, resumable.

    Parameters
    ----------
    specs:
        The cells (``ExperimentSpec`` objects or plain spec dicts).
    base_dir:
        When set, every cell writes a replayable run directory
        ``<base_dir>/<cell name>`` and the sweep writes its
        ``sweep.json`` manifest plus aggregation artifacts there.
    workers:
        ``None`` (or ``0``) runs cells sequentially in-process — the
        classic path, whose results carry the full ``fit`` history.
        ``N >= 1`` runs cells on an ``N``-worker spawn-based process
        pool; results then carry the persisted summary (``fit=None``),
        exactly like results reloaded from disk.  Output is
        bit-identical either way (modulo wall-clock timings).
    verbose:
        Per-cell training verbosity override (``None`` keeps each
        spec's own setting).

    Example::

        >>> import tempfile
        >>> from repro.api import ExperimentSpec, SweepRunner, expand_grid
        >>> base = ExperimentSpec(model="biasmf", dataset="tiny",
        ...                       model_config={"embedding_dim": 8},
        ...                       train_config={"epochs": 1})
        >>> sweep_dir = tempfile.mkdtemp()
        >>> runner = SweepRunner(expand_grid(base, seeds=[0, 1]),
        ...                      base_dir=sweep_dir)
        >>> [r.status for r in runner.run()]
        ['completed', 'completed']
        >>> # everything validates, so resume re-runs nothing:
        >>> [r.status for r in SweepRunner.resume(sweep_dir)]
        ['completed', 'completed']
    """

    def __init__(self, specs: Iterable, base_dir: Optional[str] = None,
                 workers: Optional[int] = None,
                 verbose: Optional[bool] = None):
        self.specs = [spec if isinstance(spec, ExperimentSpec)
                      else ExperimentSpec.from_dict(spec)
                      for spec in specs]
        if not self.specs:
            raise ValueError("SweepRunner needs at least one spec")
        self.base_dir = base_dir
        self.workers = workers or None
        self.verbose = verbose
        #: final ``(name, spec)`` per cell; names are claimed run-dir
        #: basenames once :meth:`run` has started
        self.cells = _assign_cell_names(self.specs)
        #: the :class:`SweepReport` aggregated at the end of :meth:`run`
        #: (``None`` before run, or when ``base_dir`` is unset)
        self.report: Optional[SweepReport] = None
        self._skip_complete = False    # True on the resume path
        #: tracing is sweep-wide when any cell asks for it: the parent
        #: records claim/cell/persist lifecycle spans, absorbs worker
        #: spans from cell summaries, and exports the merged
        #: ``<base_dir>/trace.json``.  Checked on the raw override dict
        #: so a cell with an invalid train_config still fails in its own
        #: cell (isolation), not here
        self._trace = any(isinstance(spec.train_config, dict)
                          and bool(spec.train_config.get("trace"))
                          for spec in self.specs)

    # ------------------------------------------------------------------ #
    @classmethod
    def resume(cls, sweep_dir: str, workers: Optional[int] = None,
               verbose: Optional[bool] = None) -> List[RunResult]:
        """Finish a partially-run sweep; returns all cells' results.

        Reads the ``sweep.json`` manifest, loads every cell whose run
        directory validates (``status: completed`` with a matching spec
        echo — those cells are *not* re-executed), and re-runs exactly
        the failed, missing or invalid ones.  ``workers`` defaults to
        the manifest's recorded worker count.
        """
        manifest = read_sweep_manifest(sweep_dir)
        cells = [(cell["name"], ExperimentSpec.from_dict(cell["spec"]))
                 for cell in manifest["cells"]]
        if workers is None:
            workers = manifest.get("workers")
        runner = cls([spec for _, spec in cells], base_dir=sweep_dir,
                     workers=workers, verbose=verbose)
        runner.cells = cells            # pin the manifest's dir names
        runner._skip_complete = True
        return runner.run()

    # ------------------------------------------------------------------ #
    def run(self) -> List[RunResult]:
        """Execute (or finish) the sweep; one ``RunResult`` per cell.

        When any cell's spec turns ``TrainConfig.trace`` on, the whole
        sweep runs traced: the parent spans the cell lifecycle (claim ->
        run -> persist), worker-side spans come back in each cell's
        summary and are absorbed exactly once, and the merged trace is
        exported as ``<base_dir>/trace.json``.
        """
        trace_start = current_seq()
        with trace_scope(self._trace):
            results = self._run(trace_start)
        if self._trace and self.base_dir is not None:
            # exported after the scope closes so the sweep's own
            # lifecycle spans appear alongside the absorbed worker spans
            export_trace(os.path.join(self.base_dir, TRACE_FILE),
                         events_since(trace_start))
        return results

    def _run(self, trace_start: int) -> List[RunResult]:
        n = len(self.cells)
        results: List[Optional[RunResult]] = [None] * n
        run_dirs: List[Optional[str]] = [None] * n

        if self.base_dir is not None:
            os.makedirs(self.base_dir, exist_ok=True)
            with span("sweep.claim", cells=n):
                for i, (name, spec) in enumerate(self.cells):
                    path = os.path.join(self.base_dir, name)
                    if self._skip_complete:
                        if run_dir_is_complete(path, spec):
                            results[i] = RunResult.load(path)
                            continue
                        # invalid / failed / half-written: clear and
                        # re-claim the exact manifest name (resume never
                        # renames)
                        if os.path.isdir(path):
                            shutil.rmtree(path)
                        os.mkdir(path)
                    else:
                        name, path = claim_run_dir(self.base_dir, name)
                        self.cells[i] = (name, spec)
                    run_dirs[i] = path
                self._write_manifest(results)

        pending = [i for i in range(n) if results[i] is None]
        if self.workers and self.workers >= 1:
            self._run_parallel(pending, run_dirs, results)
        else:
            self._run_sequential(pending, run_dirs, results)

        if self.base_dir is not None:
            with span("sweep.persist"):
                self._write_manifest(results)
                self.report = aggregate_results(self.base_dir)
        return results

    # ------------------------------------------------------------------ #
    def _write_manifest(self, results) -> None:
        """Record this sweep's cells, preserving any other sweep's.

        Goes through :func:`merge_sweep_manifest`, which re-reads the
        manifest at write time under a lock — a fresh sweep reusing (or
        racing into) an earlier sweep's base directory keeps the union
        of cells visible to resume and aggregation.
        """
        ours = [{"name": name, "spec": spec.to_dict(),
                 "status": (results[i].status if results[i] is not None
                            else "pending"),
                 "error": (results[i].error if results[i] is not None
                           else None)}
                for i, (name, spec) in enumerate(self.cells)]
        merge_sweep_manifest(self.base_dir, ours, self.workers)

    # ------------------------------------------------------------------ #
    def _run_sequential(self, pending, run_dirs, results) -> None:
        """The classic in-process path: shared dataset cache, live fit."""
        dataset_cache: Dict = {}
        for i in pending:
            name, spec = self.cells[i]
            try:
                # in-process: the cell's spans land directly in this
                # process's buffer, so nothing needs absorbing here
                with span("sweep.cell", cell=name):
                    results[i] = Experiment(spec).run(
                        run_dir=run_dirs[i], dataset_cache=dataset_cache,
                        verbose=self.verbose)
            except Exception as exc:       # noqa: BLE001 — cell isolation
                results[i] = self._record_failure(spec, run_dirs[i], exc)

    def _run_parallel(self, pending, run_dirs, results) -> None:
        """Fan pending cells out over a spawn-based process pool."""
        if not pending:
            return
        context = multiprocessing.get_context(MP_START_METHOD)
        max_workers = min(self.workers, len(pending))
        blas_threads = blas_thread_budget(max_workers)
        with blas_thread_limit(blas_threads), \
                ProcessPoolExecutor(max_workers=max_workers,
                                    mp_context=context,
                                    initializer=_worker_init,
                                    initargs=(blas_threads,)) as pool:
            futures = {i: pool.submit(_run_cell_task,
                                      self.cells[i][1].to_dict(),
                                      run_dirs[i], self.verbose)
                       for i in pending}
            for i, future in futures.items():
                name, spec = self.cells[i]
                try:
                    with span("sweep.collect", cell=name):
                        payload = future.result()
                except Exception as exc:   # worker process died outright
                    results[i] = self._record_failure(spec, run_dirs[i],
                                                      exc)
                    continue
                trace_events = payload.get("trace_events")
                if trace_events:
                    # worker spans crossed the process boundary in the
                    # summary; absorbing them here (and only here) keeps
                    # the parent's merged trace exactly-once
                    absorb_events(trace_events)
                results[i] = RunResult(
                    spec=spec, metrics=payload["metrics"],
                    best_epoch=payload["best_epoch"],
                    timing=payload["timing"], probes=payload["probes"],
                    artifacts=payload["artifacts"],
                    run_dir=payload["run_dir"],
                    status=payload["status"], error=payload.get("error"),
                    trace_events=trace_events)

    def _record_failure(self, spec, run_dir, exc) -> RunResult:
        """Convert an in-parent exception into a failed cell record."""
        error = f"{type(exc).__name__}: {exc}"
        tb = _traceback.format_exc()
        status = read_status(run_dir) if run_dir is not None else None
        # only a *terminal* status already on disk wins; a leftover
        # heartbeat ("running") means the cell died mid-fit and the
        # failure record is ours to write
        if run_dir is not None and (
                status is None or status.get("status") == STATUS_RUNNING):
            write_failed_run_dir(run_dir, spec, error, tb)
        return RunResult(spec=spec, metrics={}, run_dir=run_dir,
                         status=STATUS_FAILED, error=error)


def run_sweep(specs: Iterable, base_dir: Optional[str] = None,
              verbose: Optional[bool] = None,
              workers: Optional[int] = None) -> List[RunResult]:
    """Run many specs with shared dataset loading (see `SweepRunner`).

    Each ``(dataset, seed, options)`` cell is resolved once per process
    and reused by every spec that names it.  With ``base_dir`` set,
    every run writes a replayable run directory ``<base_dir>/<run_name>``
    (name collisions get a numeric suffix through an atomic
    ``os.mkdir`` claim, so repeated cells never clobber each other),
    plus the sweep manifest and aggregation artifacts.  ``workers=N``
    executes cells on an ``N``-worker process pool; crashed cells
    record ``status: failed`` instead of raising.  Returns one
    :class:`RunResult` per spec, in order.

    Example::

        >>> import tempfile
        >>> from repro.api import ExperimentSpec, expand_grid, run_sweep
        >>> base = ExperimentSpec(model="biasmf", dataset="tiny",
        ...                       model_config={"embedding_dim": 8},
        ...                       train_config={"epochs": 1})
        >>> results = run_sweep(expand_grid(base, seeds=[0, 1]),
        ...                     base_dir=tempfile.mkdtemp())
        >>> [(r.spec.seed, r.status) for r in results]
        [(0, 'completed'), (1, 'completed')]
    """
    return SweepRunner(specs, base_dir=base_dir, workers=workers,
                       verbose=verbose).run()


# --------------------------------------------------------------------- #
# aggregation
# --------------------------------------------------------------------- #

@dataclass
class SweepReport:
    """The aggregated view of one sweep directory.

    ``rows`` is the tidy per-cell table (one dict per cell: identity
    columns, ``status``, metric columns, timing columns, ``error``);
    ``artifacts`` maps role to written file path (``results.csv``,
    ``leaderboard.md``) when :func:`aggregate_results` wrote them.
    """

    sweep_dir: str
    rows: List[Dict]
    metric: Optional[str] = None
    artifacts: Dict[str, str] = field(default_factory=dict)

    #: identity/bookkeeping columns, in table order (metrics follow)
    BASE_COLUMNS = ("name", "model", "dataset", "seed", "status",
                    "best_epoch", "train_seconds", "eval_seconds", "error")

    @property
    def metric_columns(self) -> List[str]:
        """Every metric key any cell reported, sorted."""
        return sorted({key for row in self.rows
                       for key in row if key not in self.BASE_COLUMNS})

    @property
    def completed(self) -> List[Dict]:
        """Completed rows, best first by the ranking metric."""
        rows = [r for r in self.rows if r["status"] == STATUS_COMPLETED]
        if self.metric:
            rows.sort(key=lambda r: r.get(self.metric, float("-inf")),
                      reverse=True)
        return rows

    @property
    def failed(self) -> List[Dict]:
        """Rows whose cell crashed (or left no run directory behind)."""
        return [r for r in self.rows if r["status"] != STATUS_COMPLETED]

    def to_csv(self) -> str:
        """The tidy table as CSV text (one row per cell, spec order)."""
        columns = list(self.BASE_COLUMNS) + self.metric_columns
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=columns, restval="")
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return out.getvalue()

    def to_markdown(self) -> str:
        """A leaderboard: completed cells ranked by the primary metric."""
        lines = [f"# Sweep leaderboard — `{os.path.basename(self.sweep_dir) or self.sweep_dir}`",
                 ""]
        metrics = self.metric_columns
        if self.metric:
            lines.append(f"Ranked by **{self.metric}** "
                         f"({len(self.completed)} completed, "
                         f"{len(self.failed)} failed of "
                         f"{len(self.rows)} cells).")
            lines.append("")
        header = ["rank", "cell", "model", "dataset", "seed"] + metrics
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for rank, row in enumerate(self.completed, start=1):
            cells = [str(rank), row["name"], row["model"], row["dataset"],
                     str(row["seed"])]
            cells += [f"{row[m]:.4f}" if m in row else ""
                      for m in metrics]
            lines.append("| " + " | ".join(cells) + " |")
        if self.failed:
            lines.append("")
            lines.append("## Failed cells")
            lines.append("")
            for row in self.failed:
                error = (row.get("error") or "").splitlines()
                lines.append(f"- `{row['name']}` — "
                             f"{error[0] if error else 'unknown error'}")
        return "\n".join(lines) + "\n"


def aggregate_results(sweep_dir: str, metric: Optional[str] = None,
                      write: bool = True) -> SweepReport:
    """Fold a sweep directory into a tidy table + leaderboard artifact.

    Reads every cell named by the ``sweep.json`` manifest (falling back
    to scanning subdirectories holding a ``spec.json`` for sweeps
    written before the manifest existed), and produces a
    :class:`SweepReport`.  With ``write=True`` the report is persisted
    next to the cells as ``results.csv`` (the tidy per-cell table) and
    ``leaderboard.md`` (completed cells ranked by ``metric``, failed
    cells listed with their error).

    ``metric`` defaults to ``recall@<smallest k>`` when any cell reports
    one, else the first metric key in sorted order.
    """
    try:
        manifest = read_sweep_manifest(sweep_dir)
        names = [cell["name"] for cell in manifest["cells"]]
    except FileNotFoundError:
        names = sorted(
            entry for entry in os.listdir(sweep_dir)
            if os.path.exists(os.path.join(sweep_dir, entry, "spec.json")))

    rows: List[Dict] = []
    for name in names:
        run_dir = os.path.join(sweep_dir, name)
        row: Dict = {"name": name}
        try:
            payload = read_run_dir(run_dir)
        except FileNotFoundError:
            row.update(status="missing", error="no run directory")
            rows.append(row)
            continue
        spec = payload["spec"]
        status = read_status(run_dir) or {"status": STATUS_COMPLETED}
        row.update(model=spec.get("model"), dataset=spec.get("dataset"),
                   seed=spec.get("seed"),
                   status=status.get("status", STATUS_COMPLETED),
                   best_epoch=payload["best_epoch"],
                   train_seconds=payload["timing"].get("train_seconds"),
                   eval_seconds=payload["timing"].get("eval_seconds"),
                   error=status.get("error"))
        row.update(payload["metrics"])
        rows.append(row)

    if metric is None:
        metric_keys = sorted({key for row in rows
                              for key in row
                              if key not in SweepReport.BASE_COLUMNS})
        recalls = sorted((k for k in metric_keys
                          if k.startswith("recall@")),
                         key=lambda k: int(k.split("@")[1]))
        metric = recalls[0] if recalls else (metric_keys[0]
                                             if metric_keys else None)

    report = SweepReport(sweep_dir=sweep_dir, rows=rows, metric=metric)
    if write:
        csv_path = os.path.join(sweep_dir, RESULTS_CSV_FILE)
        with open(csv_path, "w", newline="") as handle:
            handle.write(report.to_csv())
        md_path = os.path.join(sweep_dir, LEADERBOARD_FILE)
        with open(md_path, "w") as handle:
            handle.write(report.to_markdown())
        report.artifacts = {"results_csv": csv_path,
                            "leaderboard": md_path}
    return report
