"""Fused hot-path kernels registered through the primitive registry.

The bench artifact says where GNN training time goes: the spmm
propagation loop and the BPR loss pipeline.  This module collapses each
into a single tape node — one forward, one VJP dispatch, no intermediate
tensors — registered via the same :func:`~repro.autograd.primitives
.primitive`/:func:`~repro.autograd.primitives.defvjp` mechanism as every
other op, which is exactly the extension point the registry refactor
exists to provide.

All three kernels are **opt-in**: the default tape keeps the composed
(bit-reproducible) graph, and high-level consumers
(``Recommender.bpr_loss``, ``light_gcn_propagate``,
``functional.bpr_loss``) switch to the fused node only when the
``fused`` backend is selected for it — via
``TrainConfig.autograd_backend``, :class:`~repro.autograd.primitives
.use_backend` or the ``REPRO_AUTOGRAD_BACKEND`` env knob.  Forward
values match the composed path bit-for-bit (:func:`light_propagate`)
or to float tolerance (the BPR kernels reorder the dot-product
reduction); gradients differ only by accumulation order, which is why
selecting them is spec-visible rather than silent.

Why fusing helps without leaving numpy: the composed BPR graph runs
~14 elementwise tape nodes over batch-sized temporaries (two mul+sum
score reductions, neg/softplus/mean and their VJPs, each a python
dispatch plus an allocation); the fused kernel is two einsums forward
and three scaled outer products backward, with the shared logistic
coefficient computed once as a residual.  ``light_propagate`` removes
the per-layer tape nodes and list-sum intermediates, keeping only the
unavoidable csr matvecs (forward) and transposed csr matvecs (VJP).
"""

from __future__ import annotations

import numpy as np

from .primitives import defvjp, primitive
from .sparse import _cached_csr_pair
from .tensor import Tensor, as_tensor


def _logistic(x: np.ndarray) -> np.ndarray:
    """Numerically stable sigmoid (shared by the BPR kernel VJPs)."""
    return np.where(x >= 0,
                    1.0 / (1.0 + np.exp(-np.clip(x, 0, None))),
                    np.exp(np.clip(x, None, 0)) /
                    (1.0 + np.exp(np.clip(x, None, 0))))


# --------------------------------------------------------------------- #
# fused BPR loss
# --------------------------------------------------------------------- #

def _fused_bpr_loss_fwd(u, vp, vn):
    x = np.einsum("nd,nd->n", u, vp) - np.einsum("nd,nd->n", u, vn)
    loss = np.logaddexp(0.0, -x).mean()
    # dloss/dx, shared by all three VJPs; computing it here (the
    # residuals hook) is the fusion win: backward is three scaled
    # outer products instead of replaying the elementwise chain
    coef = -_logistic(-x) / x.shape[0]
    return np.asarray(loss, dtype=u.dtype), coef.astype(u.dtype, copy=False)


_fused_bpr_loss = primitive("fused_bpr_loss", residuals=True)(
    _fused_bpr_loss_fwd)
defvjp("fused_bpr_loss",
       lambda g, ans, coef, u, vp, vn: (g * coef)[:, None] * (vp - vn),
       lambda g, ans, coef, u, vp, vn: (g * coef)[:, None] * u,
       lambda g, ans, coef, u, vp, vn: (-g * coef)[:, None] * u)


def fused_bpr_loss(user: Tensor, pos_item: Tensor, neg_item: Tensor) -> Tensor:
    """BPR loss + grad over embedding triplets as one tape node.

    ``mean(softplus(-(u·vp - u·vn)))`` for row-aligned ``(n, d)``
    embedding batches.  Equivalent to the composed
    ``F.bpr_loss((u * vp).sum(1), (u * vn).sum(1))`` graph within float
    tolerance (the einsum reduction reorders the dot products).

    >>> import numpy as np
    >>> from repro.autograd import Tensor, fused_bpr_loss
    >>> u = Tensor(np.full((2, 3), 0.1), requires_grad=True)
    >>> loss = fused_bpr_loss(u, Tensor(np.ones((2, 3))),
    ...                       Tensor(np.zeros((2, 3))))
    >>> round(loss.item(), 4)   # softplus(-0.3)
    0.5544
    >>> loss.backward()
    >>> u.grad.shape
    (2, 3)
    """
    return _fused_bpr_loss(as_tensor(user), as_tensor(pos_item),
                           as_tensor(neg_item))


def _fused_bpr_scores_fwd(pos, neg):
    x = pos - neg
    loss = np.logaddexp(0.0, -x).mean()
    coef = -_logistic(-x) / x.size
    return np.asarray(loss, dtype=pos.dtype), coef.astype(pos.dtype,
                                                          copy=False)


_fused_bpr_scores = primitive("fused_bpr_scores", residuals=True)(
    _fused_bpr_scores_fwd)
defvjp("fused_bpr_scores",
       lambda g, ans, coef, pos, neg: g * coef,
       lambda g, ans, coef, pos, neg: -g * coef)


def fused_bpr_scores(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Score-level fused BPR: ``mean(softplus(neg - pos))`` in one node.

    The drop-in fused form of :func:`repro.autograd.functional.bpr_loss`
    for models that already hold score vectors rather than embedding
    triplets.
    """
    return _fused_bpr_scores(as_tensor(pos_scores), as_tensor(neg_scores))


# --------------------------------------------------------------------- #
# fused propagate-and-pool
# --------------------------------------------------------------------- #

def _light_propagate_fwd(adjacency, ego, num_layers):
    csr, _ = _cached_csr_pair(adjacency, ego.dtype)
    out = ego
    h = ego
    for _ in range(num_layers):
        h = csr @ h
        out = out + h
    return out * (1.0 / (num_layers + 1))


def _vjp_light_propagate(g, ans, adjacency, ego, num_layers):
    _, csr_t = _cached_csr_pair(adjacency, ego.dtype)
    scaled = g * (1.0 / (num_layers + 1))
    total = scaled
    acc = scaled
    for _ in range(num_layers):
        acc = csr_t @ acc
        total = total + acc
    return total


_light_propagate = primitive("light_propagate")(_light_propagate_fwd)
defvjp("light_propagate", None, _vjp_light_propagate)


def light_propagate(adjacency, ego: Tensor, num_layers: int) -> Tensor:
    """LightGCN propagation + mean-pool as one tape node.

    Forward equals ``mean_k(A^k ego, k=0..num_layers)`` with the exact
    accumulation order of the composed spmm loop (bit-identical output);
    the VJP runs the transposed csr matvec chain
    ``sum_k (A^T)^k g / (L+1)`` without materializing per-layer tape
    nodes, so gradient accumulation order (only) differs from the
    composed graph.  Counts toward the spmm profile family.

    >>> import numpy as np, scipy.sparse as sp
    >>> from repro.autograd import Tensor, light_propagate
    >>> adj = sp.eye(3, format="csr") * 2.0
    >>> ego = Tensor(np.ones((3, 1)), requires_grad=True)
    >>> light_propagate(adj, ego, 2).data.ravel()  # (1 + 2 + 4) / 3
    array([2.33333333, 2.33333333, 2.33333333])
    """
    return _light_propagate(adjacency, as_tensor(ego),
                            num_layers=int(num_layers))
