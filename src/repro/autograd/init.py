"""Weight initialization schemes (Glorot/Xavier and friends)."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape, rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape, rng: np.random.Generator,
                  gain: float = 1.0) -> np.ndarray:
    """Glorot normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def normal(shape, rng: np.random.Generator, std: float = 0.1) -> np.ndarray:
    """Zero-mean Gaussian initialization with standard deviation ``std``."""
    return rng.normal(0.0, std, size=shape)


def uniform(shape, rng: np.random.Generator, bound: float = 0.1) -> np.ndarray:
    """Uniform initialization on ``[-bound, bound]``."""
    return rng.uniform(-bound, bound, size=shape)


def _fans(shape) -> tuple:
    shape = tuple(shape)
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]
