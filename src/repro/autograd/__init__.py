"""``repro.autograd`` — a from-scratch reverse-mode autodiff engine on numpy.

Public surface:

* :class:`Tensor`, :func:`concat`, :func:`stack`, :func:`where`,
  :class:`no_grad` — the core array type and graph ops.
* :mod:`repro.autograd.functional` — losses (BPR, InfoNCE, Gaussian KL, ...).
* :class:`Module` / :class:`Parameter` / layers — the nn building blocks.
* Optimizers: :class:`SGD`, :class:`Adam`, :class:`AdamW`.
* :func:`spmm` / :func:`weighted_spmm` — sparse propagation primitives.
* :func:`gradcheck` — finite-difference certification used by the tests.
"""

from .tensor import (Tensor, as_tensor, cast_like, concat, stack, where,
                     zeros, ones, no_grad, is_grad_enabled, unbroadcast,
                     default_dtype, get_default_dtype, set_default_dtype)
from .module import Module, Parameter, Linear, MLP, Embedding, Sequential
from .optim import SGD, Adam, AdamW, ExponentialLR, Optimizer
from .sparse import (spmm, weighted_spmm, coo_from_scipy,
                     clear_sparse_caches, enable_spmm_profiling,
                     reset_spmm_profile, spmm_profile)
from .gradcheck import gradcheck, numerical_gradient
from . import functional
from . import init

__all__ = [
    "Tensor", "as_tensor", "cast_like", "concat", "stack", "where",
    "zeros", "ones",
    "no_grad", "is_grad_enabled", "unbroadcast",
    "default_dtype", "get_default_dtype", "set_default_dtype",
    "Module", "Parameter", "Linear", "MLP", "Embedding", "Sequential",
    "SGD", "Adam", "AdamW", "ExponentialLR", "Optimizer",
    "spmm", "weighted_spmm", "coo_from_scipy",
    "clear_sparse_caches", "enable_spmm_profiling", "reset_spmm_profile",
    "spmm_profile",
    "gradcheck", "numerical_gradient",
    "functional", "init",
]
