"""``repro.autograd`` — a from-scratch reverse-mode autodiff engine on numpy.

Public surface:

* :class:`Tensor`, :func:`concat`, :func:`stack`, :func:`where`,
  :class:`no_grad` — the core array type and graph ops.
* :mod:`repro.autograd.primitives` — the open primitive/VJP registry every
  op is defined through: :func:`primitive` / :func:`defvjp` / :func:`defimpl`,
  per-op backend selection (:class:`use_backend`) and the thread-safe
  per-primitive profiler (:func:`primitive_profile`).
* :mod:`repro.autograd.functional` — losses (BPR, InfoNCE, Gaussian KL, ...).
* :class:`Module` / :class:`Parameter` / layers — the nn building blocks.
* Optimizers: :class:`SGD`, :class:`Adam`, :class:`AdamW`.
* :func:`spmm` / :func:`weighted_spmm` — sparse propagation primitives.
* :mod:`repro.autograd.fused` — opt-in fused hot-path kernels
  (:func:`fused_bpr_loss`, :func:`fused_bpr_scores`, :func:`light_propagate`).
* :func:`gradcheck` — finite-difference certification used by the tests.
"""

from .primitives import (primitive, defvjp, defimpl, get_primitive,
                         list_primitives, unregister_primitive,
                         set_default_backend, set_primitive_backend,
                         selected_backend, use_backend,
                         fused_kernels_enabled, configure_from_env,
                         enable_primitive_profiling,
                         reset_primitive_profile, primitive_profile,
                         primitive_profiling_enabled)
from .tensor import (Tensor, as_tensor, cast_like, concat, stack, where,
                     zeros, ones, no_grad, is_grad_enabled, unbroadcast,
                     default_dtype, get_default_dtype, set_default_dtype,
                     scatter_rows)
from .shmem import SharedNDArray
from .module import Module, Parameter, Linear, MLP, Embedding, Sequential
from .optim import SGD, Adam, AdamW, ExponentialLR, Optimizer
from .sparse import (spmm, weighted_spmm, coo_from_scipy,
                     clear_sparse_caches, enable_spmm_profiling,
                     reset_spmm_profile, spmm_profile, SPMM_PRIMITIVES)
from .fused import fused_bpr_loss, fused_bpr_scores, light_propagate
from .gradcheck import gradcheck, numerical_gradient
from . import functional
from . import init

__all__ = [
    "Tensor", "as_tensor", "cast_like", "concat", "stack", "where",
    "zeros", "ones",
    "no_grad", "is_grad_enabled", "unbroadcast",
    "default_dtype", "get_default_dtype", "set_default_dtype",
    "primitive", "defvjp", "defimpl", "get_primitive", "list_primitives",
    "unregister_primitive",
    "set_default_backend", "set_primitive_backend", "selected_backend",
    "use_backend", "fused_kernels_enabled", "configure_from_env",
    "enable_primitive_profiling", "reset_primitive_profile",
    "primitive_profile", "primitive_profiling_enabled",
    "Module", "Parameter", "Linear", "MLP", "Embedding", "Sequential",
    "SGD", "Adam", "AdamW", "ExponentialLR", "Optimizer",
    "spmm", "weighted_spmm", "coo_from_scipy",
    "clear_sparse_caches", "enable_spmm_profiling", "reset_spmm_profile",
    "spmm_profile", "SPMM_PRIMITIVES",
    "fused_bpr_loss", "fused_bpr_scores", "light_propagate",
    "scatter_rows", "SharedNDArray",
    "gradcheck", "numerical_gradient",
    "functional", "init",
]
