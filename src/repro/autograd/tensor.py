"""A reverse-mode automatic-differentiation engine on numpy arrays.

This module is the computational substrate for the whole repository.  The
paper's models were originally written against PyTorch; this environment has
no deep-learning framework installed, so we provide one: a tape-based,
vectorized autograd ``Tensor`` supporting the operations graph neural
recommenders need (dense linear algebra, elementwise math, reductions,
row gather / scatter-add, concatenation and stable softmax primitives).

Design notes
------------
* Values are stored as ``numpy.ndarray`` of a configurable float dtype
  (:func:`set_default_dtype` / the :class:`default_dtype` context manager).
  The default is ``float64``: the datasets in this reproduction are small
  (hundreds of nodes), so we favour the numerical headroom of double
  precision, which also makes finite-difference gradient checking tight.
  Training throughput workloads opt into ``float32``, which halves memory
  traffic through the spmm/embedding hot path.
* The graph is dynamic (define-by-run).  Every operation is a registered
  *primitive* (:mod:`repro.autograd.primitives`): a forward function plus
  per-argument VJP functions.  A ``Tensor`` produced by an operation keeps
  references to its parents and one generic tape node recording
  ``(primitive, args, kwargs)``; calling :meth:`Tensor.backward`
  topologically sorts the tape and dispatches each node to its
  primitive's registered VJPs, accumulating into ``tensor.grad``.  The
  dunder methods below are thin wrappers over the registry — gradients
  never live in closures, so new ops (including fused or alternate-
  backend kernels) plug in without touching this file.
* Broadcasting follows numpy semantics; gradients are reduced back to the
  operand shape by :func:`unbroadcast`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from . import primitives as _prims
from .primitives import defvjp, primitive

try:  # the C segment-sum kernel behind scipy's own sparse matmul
    from scipy.sparse import _sparsetools as _sptools
except ImportError:  # pragma: no cover - layout differs on odd versions
    _sptools = None

Scalar = Union[int, float]
ArrayLike = Union[Scalar, Sequence, np.ndarray, "Tensor"]

_default_dtype = np.float64
_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def get_default_dtype() -> type:
    """Return the scalar type new tensors are created with."""
    return _default_dtype


def set_default_dtype(dtype) -> None:
    """Set the global tensor dtype: ``float32`` or ``float64``.

    float64 (the default) keeps finite-difference gradient checking tight;
    float32 halves memory traffic on the training hot path.  Tensors that
    are already float32/float64 keep their dtype — the default only governs
    coercion of non-float inputs and fresh allocations.
    """
    global _default_dtype
    resolved = np.dtype(dtype)
    if resolved not in _FLOAT_DTYPES:
        raise ValueError(
            f"default dtype must be float32 or float64, got {resolved}")
    _default_dtype = resolved.type


class default_dtype:
    """Context manager scoping :func:`set_default_dtype` to a block."""

    def __init__(self, dtype):
        self._dtype = dtype

    def __enter__(self):
        self._prev = _default_dtype
        set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc):
        set_default_dtype(self._prev)
        return False


class no_grad:
    """Context manager that disables graph construction (inference mode)."""

    def __enter__(self):
        self._prev = _prims.is_grad_enabled()
        _prims.set_grad_enabled(False)
        return self

    def __exit__(self, *exc):
        _prims.set_grad_enabled(self._prev)
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _prims.is_grad_enabled()


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Summation is performed over the leading dimensions added by broadcasting
    and over any axis that was expanded from size one.
    """
    if grad.shape == shape:
        return grad
    # Sum out the extra leading axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over broadcast (size-1) axes.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if arr.dtype in _FLOAT_DTYPES:
        return arr
    return arr.astype(_default_dtype)


def as_tensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def cast_like(array: ArrayLike, ref: "Tensor") -> np.ndarray:
    """Cast a constant helper array (mask, noise, targets) to ``ref``'s dtype.

    The single entry point for mixing rng-generated float64 arrays into a
    tape: casting at the boundary keeps a float32 graph float32 instead of
    silently promoting every downstream op.  No copy when dtypes match.
    """
    return np.asarray(array).astype(ref.data.dtype, copy=False)


def _operand(value: ArrayLike, dtype) -> "Tensor":
    """Coerce a binary-op operand, adopting ``dtype`` for scalars.

    Under NEP 50 a 0-d float64 array is *not* value-cast, so wrapping a
    Python scalar as float64 would silently promote every float32
    expression like ``x * 0.5`` back to float64 and defeat the float32
    hot path.  Scalar operands therefore take the peer tensor's dtype.
    """
    if isinstance(value, Tensor):
        return value
    arr = np.asarray(value)
    if arr.ndim == 0 and arr.dtype.kind in "fiub" and arr.dtype != dtype:
        arr = arr.astype(dtype)
    return Tensor(arr)


class Tensor:
    """A numpy-backed array node in a dynamically-built autograd graph.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts; float32/float64 arrays keep
        their dtype, everything else is coerced to the default dtype
        (see :func:`set_default_dtype`).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` for this
        tensor when :meth:`backward` is called downstream.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_node", "_op")
    __array_priority__ = 100  # make numpy defer to our reflected operators

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        arr = np.asarray(data)
        if arr.dtype not in _FLOAT_DTYPES:
            arr = arr.astype(_default_dtype)
        self.data = arr
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._node: Optional[_prims.Node] = None
        self._op = "leaf"

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared memory, not a copy)."""
        return self.data

    def item(self) -> float:
        return self.data.item()

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # reverse mode
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        elif self.grad.shape == np.shape(grad):
            self.grad += grad  # in-place: reuse the accumulation buffer
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ones (so scalars need no argument, matching the
        PyTorch convention).  Each non-leaf node dispatches through the
        primitive registry (:func:`repro.autograd.primitives.backpropagate`).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not "
                               "require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar "
                                   "outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(_as_array(grad), dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape)

        # Topological order over the tape.
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._node is None or node.grad is None:
                continue
            _prims.backpropagate(node)

    # ------------------------------------------------------------------ #
    # elementwise arithmetic (thin wrappers over registered primitives)
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        return _add(self, _operand(other, self.data.dtype))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return _neg(self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_operand(other, self.data.dtype))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _operand(other, self.data.dtype) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return _mul(self, _operand(other, self.data.dtype))

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return _div(self, _operand(other, self.data.dtype))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _operand(other, self.data.dtype) / self

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        return _pow(self, exponent=exponent)

    # comparison helpers return plain numpy bool arrays (non-differentiable)
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        return _exp(self)

    def log(self) -> "Tensor":
        return _log(self)

    def sqrt(self) -> "Tensor":
        return _sqrt(self)

    def sigmoid(self) -> "Tensor":
        return _sigmoid(self)

    def tanh(self) -> "Tensor":
        return _tanh(self)

    def relu(self) -> "Tensor":
        return _relu(self)

    def leaky_relu(self, negative_slope: float = 0.5) -> "Tensor":
        """LeakyReLU; the paper fixes the slope at 0.5 (Sec IV-A.3)."""
        return _leaky_relu(self, negative_slope=negative_slope)

    def softplus(self) -> "Tensor":
        return _softplus(self)

    def logsigmoid(self) -> "Tensor":
        """log(sigmoid(x)) = -softplus(-x), computed stably."""
        return -(-self).softplus()

    def abs(self) -> "Tensor":
        return _abs(self)

    def clamp(self, low: Optional[float] = None,
              high: Optional[float] = None) -> "Tensor":
        """Clip values; gradient is passed through only inside the range."""
        return _clamp(self, low=low, high=high)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        return _sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        return _mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None,
            keepdims: bool = False) -> "Tensor":
        return _max(self, axis=axis, keepdims=keepdims)

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        """Stable log-sum-exp along ``axis`` with exact softmax gradient."""
        return _logsumexp(self, axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # linear algebra & shape ops
    # ------------------------------------------------------------------ #
    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return _matmul(self, _operand(other, self.data.dtype))

    def transpose(self) -> "Tensor":
        return _transpose(self)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return _reshape(self, shape=shape)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (axis 0); backward scatter-adds into the source.

        This is the embedding-lookup primitive: repeated indices must
        accumulate gradient.  The scatter is a segment sum expressed as
        ``S^T @ g`` with ``S`` the one-hot batch-selection matrix, driven
        straight through scipy's C ``csc_matvecs`` kernel: it accumulates
        *in the tape dtype* — float32 batches no longer pay the previous
        ``np.bincount`` scatter's hidden float64 accumulation plus cast —
        runs ~9x faster than bincount on the trainer's batch-gather
        shapes, and unlike bincount its work scales with the batch
        instead of ``table.size``.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx < 0).any():
            # normalize python-style negative indices: the selection
            # matrix in the VJP needs non-negative row positions
            if (idx < -len(self.data)).any():
                raise IndexError(
                    f"index {int(idx.min())} is out of bounds for axis 0 "
                    f"with size {len(self.data)}")
            idx = np.where(idx < 0, idx + len(self.data), idx)
        return _take_rows(self, idx)

    def __getitem__(self, key) -> "Tensor":
        # the key rides in kwargs so list keys keep their (fancy-indexing)
        # semantics instead of being unwrapped as a Tensor container
        return _getitem(self, key=key)


# --------------------------------------------------------------------- #
# primitive registrations: elementwise arithmetic
# --------------------------------------------------------------------- #

_add = primitive("add")(lambda a, b: a + b)
defvjp("add",
       lambda g, ans, a, b: unbroadcast(g, a.shape),
       lambda g, ans, a, b: unbroadcast(g, b.shape))

_neg = primitive("neg")(lambda a: -a)
defvjp("neg", lambda g, ans, a: -g)

_mul = primitive("mul")(lambda a, b: a * b)
defvjp("mul",
       lambda g, ans, a, b: unbroadcast(g * b, a.shape),
       lambda g, ans, a, b: unbroadcast(g * a, b.shape))

_div = primitive("div")(lambda a, b: a / b)
defvjp("div",
       lambda g, ans, a, b: unbroadcast(g / b, a.shape),
       lambda g, ans, a, b: unbroadcast(-g * a / (b ** 2), b.shape))

_pow = primitive("pow")(lambda a, exponent: np.power(a, exponent))
defvjp("pow",
       lambda g, ans, a, exponent: g * exponent * np.power(a, exponent - 1))


# --------------------------------------------------------------------- #
# primitive registrations: elementwise functions
# --------------------------------------------------------------------- #

_exp = primitive("exp")(np.exp)
defvjp("exp", lambda g, ans, a: g * ans)

_log = primitive("log")(np.log)
defvjp("log", lambda g, ans, a: g / a)

_sqrt = primitive("sqrt")(np.sqrt)
defvjp("sqrt", lambda g, ans, a: g * 0.5 / ans)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic (shared by sigmoid/softplus VJPs)."""
    return np.where(x >= 0,
                    1.0 / (1.0 + np.exp(-np.clip(x, 0, None))),
                    np.exp(np.clip(x, None, 0)) /
                    (1.0 + np.exp(np.clip(x, None, 0))))


_sigmoid = primitive("sigmoid")(_stable_sigmoid)
defvjp("sigmoid", lambda g, ans, a: g * ans * (1.0 - ans))

_tanh = primitive("tanh")(np.tanh)
defvjp("tanh", lambda g, ans, a: g * (1.0 - ans ** 2))

_relu = primitive("relu")(lambda a: a * (a > 0))
defvjp("relu", lambda g, ans, a: g * (a > 0))

# dtype-preserving: select between `a` and the scaled branch instead of
# multiplying by a float64 ``np.where(..., 1.0, slope)`` mask, which would
# silently promote a float32 activation (and its gradient) to float64.
# Bit-identical to the masked form in float64 (x * 1.0 == x).
_leaky_relu = primitive("leaky_relu")(
    lambda a, negative_slope: np.where(a > 0, a, a * negative_slope))
defvjp("leaky_relu",
       lambda g, ans, a, negative_slope:
       np.where(a > 0, g, g * negative_slope))

# log(1 + e^x) computed stably
_softplus = primitive("softplus")(lambda a: np.logaddexp(0.0, a))
defvjp("softplus", lambda g, ans, a: g * _stable_sigmoid(a))

_abs = primitive("abs")(np.abs)
defvjp("abs", lambda g, ans, a: g * np.sign(a))


def _clamp_inside(a: np.ndarray, low, high) -> np.ndarray:
    inside = np.ones_like(a)
    if low is not None:
        inside = inside * (a >= low)
    if high is not None:
        inside = inside * (a <= high)
    return inside


_clamp = primitive("clamp")(lambda a, low, high: np.clip(a, low, high))
defvjp("clamp", lambda g, ans, a, low, high: g * _clamp_inside(a, low, high))


# --------------------------------------------------------------------- #
# primitive registrations: reductions
# --------------------------------------------------------------------- #

_sum = primitive("sum")(
    lambda a, axis, keepdims: a.sum(axis=axis, keepdims=keepdims))


def _vjp_sum(g, ans, a, axis, keepdims):
    grad = g
    if axis is not None and not keepdims:
        grad = np.expand_dims(grad, axis)
    # read-only broadcast view is fine: _accumulate never mutates its
    # argument (it copies on first touch, then adds into the existing
    # buffer)
    return np.broadcast_to(grad, a.shape)


defvjp("sum", _vjp_sum)

_mean = primitive("mean")(
    lambda a, axis, keepdims: a.mean(axis=axis, keepdims=keepdims))


def _vjp_mean(g, ans, a, axis, keepdims):
    count = a.size if axis is None else (
        np.prod([a.shape[ax] for ax in np.atleast_1d(axis)]))
    grad = g / count
    if axis is not None and not keepdims:
        grad = np.expand_dims(grad, axis)
    return np.broadcast_to(grad, a.shape)


defvjp("mean", _vjp_mean)

_max = primitive("max")(
    lambda a, axis, keepdims: a.max(axis=axis, keepdims=keepdims))


def _vjp_max(g, ans, a, axis, keepdims):
    if axis is None:
        mask = (a == ans)
        share = mask / mask.sum()
        return g * share
    expanded = ans if keepdims else np.expand_dims(ans, axis)
    mask = (a == expanded)
    share = mask / mask.sum(axis=axis, keepdims=True)
    grad = g if keepdims else np.expand_dims(g, axis)
    return grad * share


defvjp("max", _vjp_max)


def _logsumexp_fwd(a, axis, keepdims):
    m = a.max(axis=axis, keepdims=True)
    shifted = np.exp(a - m)
    total = shifted.sum(axis=axis, keepdims=True)
    out = np.log(total) + m
    soft = shifted / total
    if not keepdims:
        out = np.squeeze(out, axis=axis)
    return out, soft


def _vjp_logsumexp(g, ans, soft, a, axis, keepdims):
    grad = g if keepdims else np.expand_dims(g, axis)
    return grad * soft


# the softmax weights are residuals: recomputing them from ``ans`` would
# change float rounding (exp(a - out) != shifted/total bit-for-bit)
_logsumexp = primitive("logsumexp", residuals=True)(_logsumexp_fwd)
defvjp("logsumexp", _vjp_logsumexp)


# --------------------------------------------------------------------- #
# primitive registrations: linear algebra & shape ops
# --------------------------------------------------------------------- #

_matmul = primitive("matmul")(lambda a, b: a @ b)


def _vjp_matmul_a(g, ans, a, b):
    if b.ndim == 1:
        return np.outer(g, b) if a.ndim == 2 else g * b
    return g @ b.T


def _vjp_matmul_b(g, ans, a, b):
    if a.ndim == 1:
        return np.outer(a, g) if b.ndim == 2 else g * a
    return a.T @ g


defvjp("matmul", _vjp_matmul_a, _vjp_matmul_b)

_transpose = primitive("transpose")(lambda a: a.T)
defvjp("transpose", lambda g, ans, a: g.T)

_reshape = primitive("reshape")(lambda a, shape: a.reshape(shape))
defvjp("reshape", lambda g, ans, a, shape: g.reshape(a.shape))

_take_rows = primitive("take_rows")(lambda a, idx: a[idx])


def scatter_rows(g: np.ndarray, idx: np.ndarray, num_rows: int
                 ) -> np.ndarray:
    """Dense segment-sum scatter: rows of ``g`` summed into ``idx`` slots.

    This is the ``take_rows`` VJP as a public export — the exact
    (dtype-preserving, C-kernel) scatter the tape itself uses to push a
    row-batch gradient back into an embedding table.  External gradient
    appliers (the parallel training scheduler applying worker-computed
    per-row grads) route through it so their updates are bit-identical
    to a ``backward()`` through ``take_rows``.
    """
    n, dim = g.shape
    dtype = g.dtype
    g = np.ascontiguousarray(g)
    ones = np.ones(n, dtype=dtype)
    indptr = np.arange(n + 1, dtype=idx.dtype)
    if _sptools is not None:
        # grad += S^T g; S^T is the (num_rows, n) one-hot selection
        # in CSC form, whose index arrays are exactly (indptr, idx)
        grad = np.zeros((num_rows, dim), dtype=dtype)
        _sptools.csc_matvecs(num_rows, n, dim, indptr, idx,
                             ones, g.ravel(), grad.ravel())
    else:
        select = sp.csr_matrix((ones, idx, indptr),
                               shape=(n, num_rows))
        grad = select.T @ g
    return grad


def _vjp_take_rows(g, ans, a, idx):
    if a.ndim == 2 and idx.ndim == 1 and idx.size:
        return scatter_rows(np.ascontiguousarray(g, dtype=a.dtype), idx,
                            a.shape[0])
    grad = np.zeros_like(a)
    np.add.at(grad, idx, g)
    return grad


defvjp("take_rows", _vjp_take_rows)

_getitem = primitive("getitem")(lambda a, key: a[key])


def _vjp_getitem(g, ans, a, key):
    grad = np.zeros_like(a)
    np.add.at(grad, key, g)
    return grad


defvjp("getitem", _vjp_getitem)


# --------------------------------------------------------------------- #
# multi-tensor ops
# --------------------------------------------------------------------- #

_concat = primitive("concat")(
    lambda parts, axis: np.concatenate(parts, axis=axis))


def _vjp_concat(g, ans, parts, axis):
    sizes = [part.shape[axis] for part in parts]
    offsets = np.cumsum([0] + sizes)
    grads = []
    for start, stop in zip(offsets[:-1], offsets[1:]):
        sl = [slice(None)] * g.ndim
        sl[axis] = slice(start, stop)
        grads.append(g[tuple(sl)])  # views: no copy until accumulation
    return grads


defvjp("concat", _vjp_concat)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``; backward splits the gradient."""
    return _concat([as_tensor(t) for t in tensors], axis=axis)


_stack = primitive("stack")(lambda parts, axis: np.stack(parts, axis=axis))


def _vjp_stack(g, ans, parts, axis):
    return [np.take(g, i, axis=axis) for i in range(len(parts))]


defvjp("stack", _vjp_stack)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    return _stack([as_tensor(t) for t in tensors], axis=axis)


_where = primitive("where")(lambda cond, a, b: np.where(cond, a, b))
defvjp("where", None,
       lambda g, ans, cond, a, b: unbroadcast(g * cond, a.shape),
       lambda g, ans, cond, a, b: unbroadcast(g * (~cond), b.shape))


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    return _where(np.asarray(condition, dtype=bool), as_tensor(a),
                  as_tensor(b))


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    """All-zeros tensor of the given shape (default dtype)."""
    return Tensor(np.zeros(shape, dtype=_default_dtype),
                  requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    """All-ones tensor of the given shape (default dtype)."""
    return Tensor(np.ones(shape, dtype=_default_dtype),
                  requires_grad=requires_grad)


_prims.register_tensor_type(Tensor)
