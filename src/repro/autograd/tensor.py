"""A reverse-mode automatic-differentiation engine on numpy arrays.

This module is the computational substrate for the whole repository.  The
paper's models were originally written against PyTorch; this environment has
no deep-learning framework installed, so we provide one: a tape-based,
vectorized autograd ``Tensor`` supporting the operations graph neural
recommenders need (dense linear algebra, elementwise math, reductions,
row gather / scatter-add, concatenation and stable softmax primitives).

Design notes
------------
* Values are stored as ``numpy.ndarray`` of a configurable float dtype
  (:func:`set_default_dtype` / the :class:`default_dtype` context manager).
  The default is ``float64``: the datasets in this reproduction are small
  (hundreds of nodes), so we favour the numerical headroom of double
  precision, which also makes finite-difference gradient checking tight.
  Training throughput workloads opt into ``float32``, which halves memory
  traffic through the spmm/embedding hot path.
* The graph is dynamic (define-by-run).  Each ``Tensor`` produced by an
  operation keeps references to its parents and a backward closure; calling
  :meth:`Tensor.backward` topologically sorts the tape and accumulates
  gradients into ``tensor.grad``.
* Broadcasting follows numpy semantics; gradients are reduced back to the
  operand shape by :func:`unbroadcast`.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

try:  # the C segment-sum kernel behind scipy's own sparse matmul
    from scipy.sparse import _sparsetools as _sptools
except ImportError:  # pragma: no cover - layout differs on odd versions
    _sptools = None

Scalar = Union[int, float]
ArrayLike = Union[Scalar, Sequence, np.ndarray, "Tensor"]

_grad_enabled = True

_default_dtype = np.float64
_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def get_default_dtype() -> type:
    """Return the scalar type new tensors are created with."""
    return _default_dtype


def set_default_dtype(dtype) -> None:
    """Set the global tensor dtype: ``float32`` or ``float64``.

    float64 (the default) keeps finite-difference gradient checking tight;
    float32 halves memory traffic on the training hot path.  Tensors that
    are already float32/float64 keep their dtype — the default only governs
    coercion of non-float inputs and fresh allocations.
    """
    global _default_dtype
    resolved = np.dtype(dtype)
    if resolved not in _FLOAT_DTYPES:
        raise ValueError(
            f"default dtype must be float32 or float64, got {resolved}")
    _default_dtype = resolved.type


class default_dtype:
    """Context manager scoping :func:`set_default_dtype` to a block."""

    def __init__(self, dtype):
        self._dtype = dtype

    def __enter__(self):
        self._prev = _default_dtype
        set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc):
        set_default_dtype(self._prev)
        return False


class no_grad:
    """Context manager that disables graph construction (inference mode)."""

    def __enter__(self):
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc):
        global _grad_enabled
        _grad_enabled = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _grad_enabled


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Summation is performed over the leading dimensions added by broadcasting
    and over any axis that was expanded from size one.
    """
    if grad.shape == shape:
        return grad
    # Sum out the extra leading axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over broadcast (size-1) axes.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if arr.dtype in _FLOAT_DTYPES:
        return arr
    return arr.astype(_default_dtype)


def as_tensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def cast_like(array: ArrayLike, ref: "Tensor") -> np.ndarray:
    """Cast a constant helper array (mask, noise, targets) to ``ref``'s dtype.

    The single entry point for mixing rng-generated float64 arrays into a
    tape: casting at the boundary keeps a float32 graph float32 instead of
    silently promoting every downstream op.  No copy when dtypes match.
    """
    return np.asarray(array).astype(ref.data.dtype, copy=False)


def _operand(value: ArrayLike, dtype) -> "Tensor":
    """Coerce a binary-op operand, adopting ``dtype`` for scalars.

    Under NEP 50 a 0-d float64 array is *not* value-cast, so wrapping a
    Python scalar as float64 would silently promote every float32
    expression like ``x * 0.5`` back to float64 and defeat the float32
    hot path.  Scalar operands therefore take the peer tensor's dtype.
    """
    if isinstance(value, Tensor):
        return value
    arr = np.asarray(value)
    if arr.ndim == 0 and arr.dtype.kind in "fiub" and arr.dtype != dtype:
        arr = arr.astype(dtype)
    return Tensor(arr)


class Tensor:
    """A numpy-backed array node in a dynamically-built autograd graph.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts; float32/float64 arrays keep
        their dtype, everything else is coerced to the default dtype
        (see :func:`set_default_dtype`).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` for this
        tensor when :meth:`backward` is called downstream.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op")
    __array_priority__ = 100  # make numpy defer to our reflected operators

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        arr = np.asarray(data)
        if arr.dtype not in _FLOAT_DTYPES:
            arr = arr.astype(_default_dtype)
        self.data = arr
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._op = "leaf"

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared memory, not a copy)."""
        return self.data

    def item(self) -> float:
        return self.data.item()

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray,
              parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None],
              op: str) -> "Tensor":
        """Create a non-leaf tensor recording ``backward`` on the tape."""
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
            out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        elif self.grad.shape == np.shape(grad):
            self.grad += grad  # in-place: reuse the accumulation buffer
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ones (so scalars need no argument, matching the
        PyTorch convention).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not "
                               "require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar "
                                   "outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(_as_array(grad), dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape)

        # Topological order over the tape.
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = _operand(other, self.data.dtype)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(unbroadcast(g, a.shape))
            if b.requires_grad:
                b._accumulate(unbroadcast(g, b.shape))

        return Tensor._make(a.data + b.data, (a, b), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            a._accumulate(-g)

        return Tensor._make(-a.data, (a,), backward, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_operand(other, self.data.dtype))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _operand(other, self.data.dtype) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = _operand(other, self.data.dtype)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(unbroadcast(g * b.data, a.shape))
            if b.requires_grad:
                b._accumulate(unbroadcast(g * a.data, b.shape))

        return Tensor._make(a.data * b.data, (a, b), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = _operand(other, self.data.dtype)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(unbroadcast(g / b.data, a.shape))
            if b.requires_grad:
                b._accumulate(unbroadcast(-g * a.data / (b.data ** 2),
                                          b.shape))

        return Tensor._make(a.data / b.data, (a, b), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _operand(other, self.data.dtype) / self

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        a = self

        def backward(g: np.ndarray) -> None:
            a._accumulate(g * exponent * np.power(a.data, exponent - 1))

        return Tensor._make(np.power(a.data, exponent), (a,), backward, "pow")

    # comparison helpers return plain numpy bool arrays (non-differentiable)
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)

        def backward(g: np.ndarray) -> None:
            a._accumulate(g * out_data)

        return Tensor._make(out_data, (a,), backward, "exp")

    def log(self) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            a._accumulate(g / a.data)

        return Tensor._make(np.log(a.data), (a,), backward, "log")

    def sqrt(self) -> "Tensor":
        a = self
        out_data = np.sqrt(a.data)

        def backward(g: np.ndarray) -> None:
            a._accumulate(g * 0.5 / out_data)

        return Tensor._make(out_data, (a,), backward, "sqrt")

    def sigmoid(self) -> "Tensor":
        a = self
        # numerically stable logistic
        out_data = np.where(a.data >= 0,
                            1.0 / (1.0 + np.exp(-np.clip(a.data, 0, None))),
                            np.exp(np.clip(a.data, None, 0)) /
                            (1.0 + np.exp(np.clip(a.data, None, 0))))

        def backward(g: np.ndarray) -> None:
            a._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (a,), backward, "sigmoid")

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)

        def backward(g: np.ndarray) -> None:
            a._accumulate(g * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (a,), backward, "tanh")

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0

        def backward(g: np.ndarray) -> None:
            a._accumulate(g * mask)

        return Tensor._make(a.data * mask, (a,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.5) -> "Tensor":
        """LeakyReLU; the paper fixes the slope at 0.5 (Sec IV-A.3)."""
        a = self
        mask = a.data > 0
        slope = np.where(mask, 1.0, negative_slope)

        def backward(g: np.ndarray) -> None:
            a._accumulate(g * slope)

        return Tensor._make(a.data * slope, (a,), backward, "leaky_relu")

    def softplus(self) -> "Tensor":
        a = self
        # log(1 + e^x) computed stably
        out_data = np.logaddexp(0.0, a.data)

        def backward(g: np.ndarray) -> None:
            sig = np.where(a.data >= 0,
                           1.0 / (1.0 + np.exp(-np.clip(a.data, 0, None))),
                           np.exp(np.clip(a.data, None, 0)) /
                           (1.0 + np.exp(np.clip(a.data, None, 0))))
            a._accumulate(g * sig)

        return Tensor._make(out_data, (a,), backward, "softplus")

    def logsigmoid(self) -> "Tensor":
        """log(sigmoid(x)) = -softplus(-x), computed stably."""
        return -(-self).softplus()

    def abs(self) -> "Tensor":
        a = self
        sign = np.sign(a.data)

        def backward(g: np.ndarray) -> None:
            a._accumulate(g * sign)

        return Tensor._make(np.abs(a.data), (a,), backward, "abs")

    def clamp(self, low: Optional[float] = None,
              high: Optional[float] = None) -> "Tensor":
        """Clip values; gradient is passed through only inside the range."""
        a = self
        out_data = np.clip(a.data, low, high)
        inside = np.ones_like(a.data)
        if low is not None:
            inside = inside * (a.data >= low)
        if high is not None:
            inside = inside * (a.data <= high)

        def backward(g: np.ndarray) -> None:
            a._accumulate(g * inside)

        return Tensor._make(out_data, (a,), backward, "clamp")

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            grad = g
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            # read-only broadcast view is fine: _accumulate never mutates
            # its argument (it copies on first touch, then adds into the
            # existing buffer)
            a._accumulate(np.broadcast_to(grad, a.shape))

        return Tensor._make(out_data, (a,), backward, "sum")

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.mean(axis=axis, keepdims=keepdims)
        count = a.size if axis is None else (
            np.prod([a.shape[ax] for ax in np.atleast_1d(axis)]))

        def backward(g: np.ndarray) -> None:
            grad = g / count
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            a._accumulate(np.broadcast_to(grad, a.shape))

        return Tensor._make(out_data, (a,), backward, "mean")

    def max(self, axis: Optional[int] = None,
            keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if axis is None:
                mask = (a.data == out_data)
                share = mask / mask.sum()
                a._accumulate(g * share)
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data,
                                                                    axis)
                mask = (a.data == expanded)
                share = mask / mask.sum(axis=axis, keepdims=True)
                grad = g if keepdims else np.expand_dims(g, axis)
                a._accumulate(grad * share)

        return Tensor._make(out_data, (a,), backward, "max")

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        """Stable log-sum-exp along ``axis`` with exact softmax gradient."""
        a = self
        m = a.data.max(axis=axis, keepdims=True)
        shifted = np.exp(a.data - m)
        total = shifted.sum(axis=axis, keepdims=True)
        out_data = (np.log(total) + m)
        soft = shifted / total
        if not keepdims:
            out_data = np.squeeze(out_data, axis=axis)

        def backward(g: np.ndarray) -> None:
            grad = g if keepdims else np.expand_dims(g, axis)
            a._accumulate(grad * soft)

        return Tensor._make(out_data, (a,), backward, "logsumexp")

    # ------------------------------------------------------------------ #
    # linear algebra & shape ops
    # ------------------------------------------------------------------ #
    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = _operand(other, self.data.dtype)
        a, b = self, other

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                if b.data.ndim == 1:
                    a._accumulate(np.outer(g, b.data) if a.data.ndim == 2
                                  else g * b.data)
                else:
                    a._accumulate(g @ b.data.T)
            if b.requires_grad:
                if a.data.ndim == 1:
                    b._accumulate(np.outer(a.data, g) if b.data.ndim == 2
                                  else g * a.data)
                else:
                    b._accumulate(a.data.T @ g)

        return Tensor._make(a.data @ b.data, (a, b), backward, "matmul")

    def transpose(self) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            a._accumulate(g.T)

        return Tensor._make(a.data.T, (a,), backward, "transpose")

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        old_shape = a.shape

        def backward(g: np.ndarray) -> None:
            a._accumulate(g.reshape(old_shape))

        return Tensor._make(a.data.reshape(shape), (a,), backward, "reshape")

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (axis 0); backward scatter-adds into the source.

        This is the embedding-lookup primitive: repeated indices must
        accumulate gradient.  The scatter is a segment sum expressed as
        ``S^T @ g`` with ``S`` the one-hot batch-selection matrix, driven
        straight through scipy's C ``csc_matvecs`` kernel: it accumulates
        *in the tape dtype* — float32 batches no longer pay the previous
        ``np.bincount`` scatter's hidden float64 accumulation plus cast —
        runs ~9x faster than bincount on the trainer's batch-gather
        shapes, and unlike bincount its work scales with the batch
        instead of ``table.size``.
        """
        a = self
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx < 0).any():
            # normalize python-style negative indices: the selection
            # matrix below needs non-negative row positions
            if (idx < -len(a.data)).any():
                raise IndexError(
                    f"index {int(idx.min())} is out of bounds for axis 0 "
                    f"with size {len(a.data)}")
            idx = np.where(idx < 0, idx + len(a.data), idx)

        def backward(g: np.ndarray) -> None:
            if a.data.ndim == 2 and idx.ndim == 1 and idx.size:
                n = idx.shape[0]
                num_rows, dim = a.data.shape
                dtype = a.data.dtype
                g = np.ascontiguousarray(g, dtype=dtype)
                ones = np.ones(n, dtype=dtype)
                indptr = np.arange(n + 1, dtype=idx.dtype)
                if _sptools is not None:
                    # grad += S^T g; S^T is the (num_rows, n) one-hot
                    # selection in CSC form, whose index arrays are
                    # exactly (indptr, idx)
                    grad = np.zeros((num_rows, dim), dtype=dtype)
                    _sptools.csc_matvecs(num_rows, n, dim, indptr, idx,
                                         ones, g.ravel(), grad.ravel())
                else:
                    select = sp.csr_matrix((ones, idx, indptr),
                                           shape=(n, num_rows))
                    grad = select.T @ g
            else:
                grad = np.zeros_like(a.data)
                np.add.at(grad, idx, g)
            a._accumulate(grad)

        return Tensor._make(a.data[idx], (a,), backward, "take_rows")

    def __getitem__(self, key) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            grad = np.zeros_like(a.data)
            np.add.at(grad, key, g)
            a._accumulate(grad)

        return Tensor._make(a.data[key], (a,), backward, "getitem")


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``; backward splits the gradient."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(start, stop)
                tensor._accumulate(g[tuple(sl)])

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward, "concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]

    def backward(g: np.ndarray) -> None:
        for i, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.take(g, i, axis=axis))

    data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward, "stack")


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(g * cond, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(g * (~cond), b.shape))

    return Tensor._make(np.where(cond, a.data, b.data), (a, b), backward,
                        "where")


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    """All-zeros tensor of the given shape (default dtype)."""
    return Tensor(np.zeros(shape, dtype=_default_dtype),
                  requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    """All-ones tensor of the given shape (default dtype)."""
    return Tensor(np.ones(shape, dtype=_default_dtype),
                  requires_grad=requires_grad)
