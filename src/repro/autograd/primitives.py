"""The open primitive/VJP registry at the heart of the autograd engine.

Every differentiable operation in :mod:`repro.autograd` is a *primitive*:
a named forward function plus one vector-Jacobian-product (VJP) function
per differentiable argument, registered here.  The tape no longer stores
per-op ``backward`` closures — each non-leaf :class:`~repro.autograd
.tensor.Tensor` carries a single generic :class:`Node` recording
``(primitive, arg values, kwargs)``, and reverse mode replays the
registered VJPs.  The registry is the *only* extension point: models and
subsystems never hand-roll gradients (a tier-1 lint enforces this), they
register primitives.

Adding a primitive takes ~10 lines:

>>> import numpy as np
>>> from repro.autograd import Tensor
>>> from repro.autograd.primitives import (primitive, defvjp,
...                                        unregister_primitive)
>>> square = primitive("square_example")(lambda x: x * x)
>>> defvjp("square_example", lambda g, ans, x: g * 2.0 * x)
>>> x = Tensor(np.array([1.0, 3.0]), requires_grad=True)
>>> square(x).sum().backward()
>>> x.grad
array([2., 6.])
>>> unregister_primitive("square_example")  # doctest cleanup

VJP convention
--------------
``vjp(g, ans, *args, **kwargs) -> grad`` where ``g`` is the incoming
cotangent, ``ans`` the forward output and ``args``/``kwargs`` the raw
(numpy-level) forward arguments.  A primitive registered with
``residuals=True`` returns ``(ans, residuals)`` from its forward and its
VJPs receive ``vjp(g, ans, residuals, *args, **kwargs)`` — the hook fused
kernels use to precompute backward work during the forward pass.  A VJP
for a *list-valued* argument (``concat``/``stack``) returns one gradient
per list element.

Backend table
-------------
A primitive may carry several implementations keyed by backend name
(``reference`` is the required default; register others with
:func:`defimpl`).  Selection is per-primitive with a global default:

>>> from repro.autograd.primitives import (defimpl, use_backend,
...                                        selected_backend)
>>> twice = primitive("twice_example")(lambda x: x * 2.0)
>>> defvjp("twice_example", lambda g, ans, x: g * 2.0)
>>> _ = defimpl("twice_example", "turbo")(lambda x: x + x)
>>> with use_backend("turbo"):
...     selected_backend("twice_example")
'turbo'
>>> selected_backend("twice_example")   # back to the default
'reference'
>>> unregister_primitive("twice_example")  # doctest cleanup

The ``REPRO_AUTOGRAD_BACKEND`` environment variable seeds the table at
import time: a bare backend name (``fused``) sets the global default, and
comma-separated ``primitive=backend`` pairs set per-op overrides
(``fused_bpr_loss=fused,light_propagate=reference``).  A primitive
without an implementation for the selected backend falls back to
``reference``, so a global ``fused`` default only affects ops that
actually ship a fused variant.

Profiling
---------
:func:`enable_primitive_profiling` turns on wall-clock accounting of
every primitive application — forward and each VJP call — aggregated per
primitive name under a lock (safe under the sharded serving executor,
unlike the module-level spmm counters this replaces).
:func:`primitive_profile` returns ``{name: {"seconds", "calls"}}``; the
legacy ``spmm_profile`` view in :mod:`repro.autograd.sparse` derives from
it.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

__all__ = [
    "Primitive", "Node", "primitive", "defvjp", "defimpl",
    "get_primitive", "list_primitives", "unregister_primitive",
    "set_default_backend", "set_primitive_backend", "selected_backend",
    "use_backend", "fused_kernels_enabled",
    "enable_primitive_profiling", "reset_primitive_profile",
    "primitive_profile", "primitive_profiling_enabled",
    "is_grad_enabled", "set_grad_enabled",
]

REFERENCE_BACKEND = "reference"

_REGISTRY: Dict[str, "Primitive"] = {}

# the Tensor class is injected by repro.autograd.tensor at import time to
# avoid a circular module dependency (tensor.py registers the core ops
# here, so primitives.py cannot import it back)
_tensor_type: Optional[type] = None

_grad_enabled = True


def register_tensor_type(cls) -> None:
    """Install the Tensor class (called once by ``tensor.py`` at import)."""
    global _tensor_type
    _tensor_type = cls


def is_grad_enabled() -> bool:
    """Return whether primitive applications currently record the tape."""
    return _grad_enabled


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable/disable tape recording (see ``tensor.no_grad``)."""
    global _grad_enabled
    _grad_enabled = bool(enabled)


# --------------------------------------------------------------------- #
# profiling (thread-safe, per-primitive)
# --------------------------------------------------------------------- #

_profile_lock = threading.Lock()
_profile_enabled = False
_profile_counters: Dict[str, Dict[str, float]] = {}


def enable_primitive_profiling(enabled: bool = True) -> None:
    """Toggle wall-clock accounting of every primitive fwd/VJP call."""
    global _profile_enabled
    _profile_enabled = bool(enabled)


def primitive_profiling_enabled() -> bool:
    """Return whether per-primitive wall-clock accounting is on."""
    return _profile_enabled


def reset_primitive_profile(names: Optional[Sequence[str]] = None) -> None:
    """Zero the accumulated counters (all of them, or just ``names``)."""
    with _profile_lock:
        if names is None:
            _profile_counters.clear()
        else:
            for name in names:
                _profile_counters.pop(name, None)


def primitive_profile() -> Dict[str, Dict[str, float]]:
    """Snapshot of the per-primitive counters: ``{name: {seconds, calls}}``.

    Only primitives that have run since the last reset (with profiling
    enabled) appear.  Forward applications and VJP invocations both
    accumulate into the same entry, so a profiled op's ``seconds`` is its
    total fwd+bwd wall-clock and ``calls`` counts both directions.
    """
    with _profile_lock:
        return {name: dict(entry)
                for name, entry in _profile_counters.items()}


def _profile_add(name: str, seconds: float) -> None:
    with _profile_lock:
        entry = _profile_counters.get(name)
        if entry is None:
            _profile_counters[name] = {"seconds": seconds, "calls": 1}
        else:
            entry["seconds"] += seconds
            entry["calls"] += 1


# --------------------------------------------------------------------- #
# backend selection
# --------------------------------------------------------------------- #

_default_backend = REFERENCE_BACKEND
_backend_overrides: Dict[str, str] = {}


def set_default_backend(backend: str) -> None:
    """Set the backend every primitive prefers absent a per-op override."""
    global _default_backend
    _default_backend = str(backend)


def set_primitive_backend(name: str, backend: Optional[str]) -> None:
    """Pin one primitive to ``backend`` (``None`` clears the override)."""
    if backend is None:
        _backend_overrides.pop(name, None)
    else:
        _backend_overrides[name] = str(backend)


def selected_backend(name: str) -> str:
    """The backend currently *selected* for primitive ``name``.

    This is the configured preference; resolution at call time falls back
    to ``reference`` when the primitive has no implementation registered
    under the selected name.
    """
    return _backend_overrides.get(name, _default_backend)


def fused_kernels_enabled(name: str) -> bool:
    """True when ``name``'s selected backend is ``"fused"``.

    The high-level consumers of the fused kernels (``Recommender.
    bpr_loss``, ``light_gcn_propagate``, ``functional.bpr_loss``) gate on
    this: the default tape stays the bit-reproducible composed graph, and
    selecting the ``fused`` backend — via :func:`use_backend`,
    :func:`set_primitive_backend`, ``TrainConfig.autograd_backend`` or
    ``REPRO_AUTOGRAD_BACKEND`` — routes them through the one-node fused
    primitives instead.
    """
    return selected_backend(name) == "fused"


class use_backend:
    """Context manager scoping backend selection to a block.

    ``use_backend("fused")`` swaps the global default;
    ``use_backend("fused", primitives=("spmm",))`` overrides just those
    primitives.  Previous selections are restored on exit.

    >>> from repro.autograd import use_backend, selected_backend
    >>> with use_backend("fused", primitives=("light_propagate",)):
    ...     (selected_backend("light_propagate"), selected_backend("spmm"))
    ('fused', 'reference')
    >>> selected_backend("light_propagate")
    'reference'
    """

    def __init__(self, backend: str,
                 primitives: Optional[Sequence[str]] = None):
        self._backend = backend
        self._primitives = tuple(primitives) if primitives else None

    def __enter__(self):
        if self._primitives is None:
            self._prev = _default_backend
            set_default_backend(self._backend)
        else:
            self._prev = {name: _backend_overrides.get(name)
                          for name in self._primitives}
            for name in self._primitives:
                set_primitive_backend(name, self._backend)
        return self

    def __exit__(self, *exc):
        if self._primitives is None:
            set_default_backend(self._prev)
        else:
            for name, prev in self._prev.items():
                set_primitive_backend(name, prev)
        return False


def configure_from_env(spec: Optional[str] = None) -> None:
    """Apply a ``REPRO_AUTOGRAD_BACKEND``-style selection string.

    A bare backend name sets the global default; ``prim=backend`` pairs
    (comma-separated, mixable with the bare form) set per-op overrides::

        REPRO_AUTOGRAD_BACKEND=fused
        REPRO_AUTOGRAD_BACKEND=fused_bpr_loss=fused,light_propagate=fused
    """
    if spec is None:
        spec = os.environ.get("REPRO_AUTOGRAD_BACKEND", "")
    for entry in (part.strip() for part in spec.split(",")):
        if not entry:
            continue
        if "=" in entry:
            name, backend = entry.split("=", 1)
            set_primitive_backend(name.strip(), backend.strip())
        else:
            set_default_backend(entry)


# --------------------------------------------------------------------- #
# the primitive object and its tape node
# --------------------------------------------------------------------- #

class Primitive:
    """A named differentiable operation: forward impls + per-arg VJPs.

    Instances are callable — applying one to a mix of Tensors and plain
    values runs the selected forward implementation on the raw arrays and
    (when grad is enabled and any Tensor argument requires grad) records
    a generic :class:`Node` on the tape.  Construct via :func:`primitive`
    rather than directly.
    """

    __slots__ = ("name", "impls", "vjps", "residuals", "__weakref__")

    def __init__(self, name: str, impl: Callable, residuals: bool = False):
        self.name = name
        self.impls: Dict[str, Callable] = {REFERENCE_BACKEND: impl}
        self.vjps: Dict[int, Callable] = {}
        self.residuals = bool(residuals)

    def __repr__(self) -> str:
        return (f"Primitive({self.name!r}, "
                f"backends={sorted(self.impls)}, "
                f"vjp_args={sorted(self.vjps)})")

    def impl(self) -> Callable:
        """The forward implementation for the currently selected backend."""
        chosen = self.impls.get(selected_backend(self.name))
        if chosen is None:
            chosen = self.impls[REFERENCE_BACKEND]
        return chosen

    def __call__(self, *args, **kwargs):
        return _apply(self, args, kwargs)


class Node:
    """One generic tape entry: ``(primitive, argument values, kwargs)``.

    Replaces the per-op ``backward`` closures of the closed tape: reverse
    mode reads the recorded values back out and dispatches to the
    primitive's registered VJPs (:func:`backpropagate`).
    """

    __slots__ = ("prim", "vals", "kwargs", "res", "slots")

    def __init__(self, prim: Primitive, vals: tuple, kwargs: dict,
                 res, slots: Tuple[Tuple[int, Optional[int]], ...]):
        self.prim = prim
        self.vals = vals
        self.kwargs = kwargs
        self.res = res
        self.slots = slots


def primitive(name: str, residuals: bool = False):
    """Register a forward implementation under ``name`` (decorator).

    Returns the :class:`Primitive`, which is the callable to use in op
    wrappers.  Re-registering a name replaces the previous primitive.
    Pass ``residuals=True`` when the forward returns ``(ans, residuals)``
    for its VJPs to reuse.

    >>> import numpy as np
    >>> from repro.autograd import (Tensor, primitive, defvjp,
    ...                             unregister_primitive)
    >>> cube = primitive("cube_demo")(lambda x: x ** 3)
    >>> defvjp("cube_demo", lambda g, ans, x: g * 3.0 * x ** 2)
    >>> t = Tensor(np.array([2.0]), requires_grad=True)
    >>> cube(t).backward()
    >>> t.grad
    array([12.])
    >>> unregister_primitive("cube_demo")  # doctest cleanup
    """
    def register(impl: Callable) -> Primitive:
        prim = Primitive(name, impl, residuals=residuals)
        _REGISTRY[name] = prim
        return prim
    return register


def defvjp(prim: "Primitive | str", *vjps: Optional[Callable],
           argnums: Optional[Sequence[int]] = None) -> None:
    """Register per-argument VJP functions for a primitive.

    ``vjps[i]`` differentiates w.r.t. positional argument ``i`` (or
    ``argnums[i]`` when given); ``None`` marks an argument as
    non-differentiable.  See the module docstring for the VJP signature.

    >>> import numpy as np
    >>> from repro.autograd import (Tensor, primitive, defvjp,
    ...                             unregister_primitive)
    >>> scale = primitive("scale_demo")(lambda a, b: a * b)
    >>> defvjp("scale_demo",
    ...        lambda g, ans, a, b: g * b,   # d/da
    ...        lambda g, ans, a, b: g * a)   # d/db
    >>> a = Tensor(np.array([3.0]), requires_grad=True)
    >>> b = Tensor(np.array([5.0]), requires_grad=True)
    >>> scale(a, b).backward()
    >>> (a.grad, b.grad)
    (array([5.]), array([3.]))
    >>> unregister_primitive("scale_demo")  # doctest cleanup
    """
    resolved = get_primitive(prim) if isinstance(prim, str) else prim
    positions = tuple(argnums) if argnums is not None else range(len(vjps))
    for pos, vjp in zip(positions, vjps):
        if vjp is None:
            resolved.vjps.pop(pos, None)
        else:
            resolved.vjps[pos] = vjp


def defimpl(prim: "Primitive | str", backend: str):
    """Register an alternate forward implementation (decorator).

    The new backend must honour the primitive's ``residuals`` contract
    and produce outputs its registered VJPs remain valid for.
    """
    resolved = get_primitive(prim) if isinstance(prim, str) else prim

    def register(impl: Callable) -> Callable:
        resolved.impls[str(backend)] = impl
        return impl
    return register


def get_primitive(name: str) -> Primitive:
    """Look up a registered primitive by name (KeyError with the roster)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no primitive named {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def list_primitives() -> Tuple[str, ...]:
    """Sorted names of every registered primitive."""
    return tuple(sorted(_REGISTRY))


def unregister_primitive(name: str) -> None:
    """Remove a primitive from the registry (tests / doctest cleanup)."""
    _REGISTRY.pop(name, None)


# --------------------------------------------------------------------- #
# apply + generic reverse dispatch
# --------------------------------------------------------------------- #

def _apply(prim: Primitive, args: tuple, kwargs: dict):
    """Run a primitive's forward and record the generic tape node."""
    tensor_type = _tensor_type
    vals = []
    parents = []
    slots = []
    for pos, arg in enumerate(args):
        if isinstance(arg, tensor_type):
            vals.append(arg.data)
            if arg.requires_grad:
                parents.append(arg)
                slots.append((pos, None))
        elif isinstance(arg, (list, tuple)):
            unwrapped = []
            for sub, item in enumerate(arg):
                if isinstance(item, tensor_type):
                    unwrapped.append(item.data)
                    if item.requires_grad:
                        parents.append(item)
                        slots.append((pos, sub))
                else:
                    unwrapped.append(item)
            vals.append(tuple(unwrapped))
        else:
            vals.append(arg)
    vals = tuple(vals)

    impl = prim.impl()
    if _profile_enabled:
        start = time.perf_counter()
        out = impl(*vals, **kwargs)
        _profile_add(prim.name, time.perf_counter() - start)
    else:
        out = impl(*vals, **kwargs)
    res = None
    if prim.residuals:
        out, res = out

    requires = _grad_enabled and bool(parents)
    result = tensor_type(out, requires_grad=requires)
    if requires:
        result._parents = tuple(parents)
        result._node = Node(prim, vals, kwargs, res, tuple(slots))
        result._op = prim.name
    return result


def backpropagate(tensor) -> None:
    """Dispatch one tape node's cotangent to its parents' VJPs.

    Called by ``Tensor.backward`` for every non-leaf in reverse
    topological order.  Raises ``NotImplementedError`` when the node's
    primitive has no VJP registered for a differentiable argument — an
    unregistered gradient fails loudly instead of silently dropping.
    """
    node = tensor._node
    prim = node.prim
    if prim.residuals:
        head = (tensor.grad, tensor.data, node.res)
    else:
        head = (tensor.grad, tensor.data)
    list_grads: Dict[int, Sequence] = {}
    for (pos, sub), parent in zip(node.slots, tensor._parents):
        vjp = prim.vjps.get(pos)
        if vjp is None:
            raise NotImplementedError(
                f"primitive {prim.name!r} has no VJP registered for "
                f"argument {pos}; register one with defvjp()")
        if sub is not None and pos in list_grads:
            grad = list_grads[pos][sub]  # list VJPs run once per node
        else:
            if _profile_enabled:
                start = time.perf_counter()
                out = vjp(*head, *node.vals, **node.kwargs)
                _profile_add(prim.name, time.perf_counter() - start)
            else:
                out = vjp(*head, *node.vals, **node.kwargs)
            if sub is None:
                grad = out
            else:
                list_grads[pos] = out
                grad = out[sub]
        parent._accumulate(grad)


configure_from_env()
