"""Finite-difference gradient checking for the autograd engine.

Used heavily by the test-suite to certify every op against central
differences before any model is trusted.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(func: Callable[..., Tensor],
                       inputs: Sequence[Tensor],
                       index: int,
                       eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``func(*inputs)`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func(*inputs).data.item()
        flat[i] = original - eps
        minus = func(*inputs).data.item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(func: Callable[..., Tensor],
              inputs: Sequence[Tensor],
              eps: float = 1e-6,
              atol: float = 1e-5,
              rtol: float = 1e-4) -> bool:
    """Compare autograd gradients of scalar ``func`` against finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    ``True`` on success so it can be used inside ``assert gradcheck(...)``.

    Finite differences at ``eps ~ 1e-6`` are meaningless in single
    precision, so inputs must be float64 — build them under
    ``default_dtype("float64")`` (the global default) even when the model
    under test trains in float32.
    """
    for tensor in inputs:
        if tensor.data.dtype != np.float64:
            raise TypeError(
                "gradcheck requires float64 inputs (got "
                f"{tensor.data.dtype}); construct the inputs under "
                "default_dtype('float64')")
        tensor.grad = None
    out = func(*inputs)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    out.backward()
    for idx, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad
        if analytic is None:
            analytic = np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, idx, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {idx}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}")
    return True
