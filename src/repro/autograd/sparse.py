"""Sparse matrix multiplication with autograd support.

Two primitives cover everything the graph encoders need:

* :func:`spmm` — a *constant* scipy sparse matrix times a dense
  :class:`~repro.autograd.tensor.Tensor`.  Gradient flows only into the dense
  operand.  This is the LightGCN / NGCF style propagation where the adjacency
  is fixed.
* :func:`weighted_spmm` — a sparse matrix whose *values are themselves a
  Tensor* (fixed sparsity pattern given by COO ``rows``/``cols``) times a
  dense Tensor.  Gradient flows both into the dense operand and into the edge
  weights.  This is what makes the paper's learnable augmentor trainable
  end-to-end: edge keep-probabilities parameterize the augmented adjacency
  and receive gradients through message passing.

Both are registered primitives (:mod:`repro.autograd.primitives`): their
forwards and VJPs live in the same registry as the dense ops, so the
per-primitive profiler and backend table cover them, and the fused
``light_propagate`` kernel (:mod:`repro.autograd.fused`) builds on the
same caches.

Operand caching
---------------
Both primitives sit on the training hot path, called once per layer per
batch per backward pass, so repeated format conversions dominate epoch
time if done naively:

* :func:`spmm` caches ``(CSR, CSR^T)`` per adjacency object (keyed by
  identity with weakref eviction, one variant per dtype).  The adjacency
  is assumed constant — mutating a matrix in place after its first
  ``spmm`` call requires :func:`clear_sparse_caches`.  The VJP looks the
  pair up again at backward time: identity-keyed hits, deterministic.
* :func:`weighted_spmm` caches the *structure* (CSR index arrays and the
  COO→CSR permutation, forward and transposed) per ``(rows, cols, shape)``
  pattern, so each call only gathers the current values into the cached
  layout instead of re-running the full COO→CSR conversion.  Patterns with
  duplicate coordinates fall back to the exact scipy conversion (which
  sums duplicates).

Wall-clock spent inside the sparse matmuls can be profiled with
:func:`enable_spmm_profiling` / :func:`spmm_profile` — now thin views
over the per-primitive profile registry, summed across the SPMM family
(:data:`SPMM_PRIMITIVES`); the bench harness uses this for the
``BENCH_hotpath.json`` artifact.
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from . import primitives as _prims
from .primitives import defvjp, primitive
from .tensor import Tensor, as_tensor

#: primitives whose wall-clock the legacy spmm profile view aggregates
SPMM_PRIMITIVES = ("spmm", "weighted_spmm", "light_propagate")


# --------------------------------------------------------------------- #
# profiling (views over the per-primitive registry)
# --------------------------------------------------------------------- #

def enable_spmm_profiling(enabled: bool = True) -> None:
    """Toggle wall-clock accounting of every sparse matmul (fwd + bwd).

    Back-compat alias for :func:`repro.autograd.primitives
    .enable_primitive_profiling` — profiling is now per-primitive, so
    enabling it times every registered op, not just the spmm family.
    """
    _prims.enable_primitive_profiling(enabled)


def reset_spmm_profile() -> None:
    """Zero the accumulated counters of the SPMM-family primitives."""
    _prims.reset_primitive_profile(SPMM_PRIMITIVES)


def spmm_profile() -> Dict[str, float]:
    """Return ``{"seconds", "calls", "enabled"}`` summed over the family.

    Derived from :func:`repro.autograd.primitives.primitive_profile`,
    aggregating the :data:`SPMM_PRIMITIVES` entries; forward applications
    and VJP invocations each count as one call, preserving the historical
    fwd+bwd call accounting.
    """
    profile = _prims.primitive_profile()
    seconds = 0.0
    calls = 0
    for name in SPMM_PRIMITIVES:
        entry = profile.get(name)
        if entry is not None:
            seconds += entry["seconds"]
            calls += int(entry["calls"])
    return {"enabled": _prims.primitive_profiling_enabled(),
            "seconds": seconds, "calls": calls}


# --------------------------------------------------------------------- #
# constant-adjacency cache (spmm)
# --------------------------------------------------------------------- #

# id(matrix) -> (weakref(matrix), {dtype: (csr, csr_T)})
_adjacency_cache: Dict[int, tuple] = {}

# (id(rows), id(cols), shape) -> pattern entry dict
_pattern_cache: Dict[tuple, dict] = {}


def clear_sparse_caches() -> None:
    """Drop every cached sparse operand (after in-place matrix mutation)."""
    _adjacency_cache.clear()
    _pattern_cache.clear()


def _adjacency_entry(matrix) -> tuple:
    key = id(matrix)
    entry = _adjacency_cache.get(key)
    if entry is not None and entry[0]() is matrix:
        return entry

    def _evict(ref, _key=key):
        current = _adjacency_cache.get(_key)
        if current is not None and current[0] is ref:
            del _adjacency_cache[_key]

    entry = (weakref.ref(matrix, _evict), {})
    _adjacency_cache[key] = entry
    return entry


def _cached_csr_pair(matrix, dtype) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
    """CSR and transposed-CSR views of ``matrix`` in ``dtype``, cached."""
    dtype = np.dtype(dtype)
    variants = _adjacency_entry(matrix)[1]
    pair = variants.get(dtype)
    if pair is None:
        csr = matrix.tocsr()
        if csr is matrix:
            # re-wrap so the cache holds no strong reference to the key
            # object (otherwise the weakref eviction could never fire)
            csr = sp.csr_matrix((csr.data, csr.indices, csr.indptr),
                                shape=csr.shape, copy=False)
        csr = csr.astype(dtype, copy=False)
        pair = (csr, csr.T.tocsr())
        variants[dtype] = pair
    return pair


_spmm = primitive("spmm")(
    lambda matrix, dense: _cached_csr_pair(matrix, dense.dtype)[0] @ dense)
defvjp("spmm", None,
       lambda g, ans, matrix, dense:
       _cached_csr_pair(matrix, dense.dtype)[1] @ g)


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Multiply a constant sparse ``matrix`` by a dense tensor.

    Backward: ``d dense = matrix.T @ grad``.  The CSR form and its
    transpose are cached per adjacency and reused across every batch and
    backward pass (the VJP's cache lookup is an identity-keyed hit).
    """
    return _spmm(matrix, as_tensor(dense))


# --------------------------------------------------------------------- #
# fixed-pattern cache (weighted_spmm)
# --------------------------------------------------------------------- #

def _build_pattern(rows: np.ndarray, cols: np.ndarray,
                   shape: Tuple[int, int]) -> Optional[dict]:
    """Derive the CSR layout of a COO pattern (or None when duplicated).

    Tagging trick: convert a matrix whose values are ``1..n`` through
    scipy's own COO→CSR path; the converted ``data`` then *is* the
    permutation from input order to canonical CSR slots, and ``nnz < n``
    detects duplicate coordinates (scipy sums them).
    """
    n = rows.shape[0]
    tags = np.arange(1, n + 1, dtype=np.float64)
    fwd = sp.csr_matrix((tags, (rows, cols)), shape=shape)
    if fwd.nnz != n:
        return None
    bwd = fwd.T.tocsr()
    return {
        "fwd_order": fwd.data.astype(np.int64) - 1,
        "fwd_indices": fwd.indices, "fwd_indptr": fwd.indptr,
        "fwd_counts": np.diff(fwd.indptr).astype(np.int64),
        "bwd_order": bwd.data.astype(np.int64) - 1,
        "bwd_indices": bwd.indices, "bwd_indptr": bwd.indptr,
    }


def _cached_pattern(rows: np.ndarray, cols: np.ndarray,
                    shape: Tuple[int, int]) -> Optional[dict]:
    key = (id(rows), id(cols), shape)
    entry = _pattern_cache.get(key)
    if (entry is not None and entry["rows_ref"]() is rows
            and entry["cols_ref"]() is cols):
        return entry["pattern"]

    def _evict(ref, _key=key):
        current = _pattern_cache.get(_key)
        if current is not None and (current["rows_ref"] is ref
                                    or current["cols_ref"] is ref):
            del _pattern_cache[_key]

    pattern = _build_pattern(rows, cols, shape)
    _pattern_cache[key] = {
        "rows_ref": weakref.ref(rows, _evict),
        "cols_ref": weakref.ref(cols, _evict),
        "pattern": pattern,
    }
    return pattern


def _weighted_csr(rows, cols, vals, shape, pattern):
    """Assemble the forward CSR from a cached pattern (or exact scipy)."""
    if pattern is None:  # duplicate coordinates: exact scipy conversion
        return sp.csr_matrix((vals, (rows, cols)), shape=shape)
    return sp.csr_matrix((vals[pattern["fwd_order"]],
                          pattern["fwd_indices"], pattern["fwd_indptr"]),
                         shape=shape, copy=False)


def _weighted_spmm_fwd(rows, cols, vals, dense, shape):
    pattern = _cached_pattern(rows, cols, shape)
    return _weighted_csr(rows, cols, vals, shape, pattern) @ dense


def _vjp_weighted_values(g, ans, rows, cols, vals, dense, shape):
    # d value[e] = <g[row_e], X[col_e]>
    pattern = _cached_pattern(rows, cols, shape)
    if pattern is None:
        return np.einsum("ed,ed->e", g[rows], dense[cols])
    # segment form over the cached CSR layout: expand g by
    # row-run-lengths (sequential, vs the random g[rows] gather) and
    # read X in the already-sorted slot order, then permute the
    # per-slot dots back to input order
    g_rows = np.repeat(g, pattern["fwd_counts"], axis=0)
    slot_dots = np.einsum("ed,ed->e", g_rows,
                          dense[pattern["fwd_indices"]])
    grad_vals = np.empty_like(slot_dots)
    grad_vals[pattern["fwd_order"]] = slot_dots
    return grad_vals


def _vjp_weighted_dense(g, ans, rows, cols, vals, dense, shape):
    pattern = _cached_pattern(rows, cols, shape)
    if pattern is None:
        csr_t = _weighted_csr(rows, cols, vals, shape, pattern).T.tocsr()
    else:
        csr_t = sp.csr_matrix(
            (vals[pattern["bwd_order"]],
             pattern["bwd_indices"], pattern["bwd_indptr"]),
            shape=(shape[1], shape[0]), copy=False)
    return csr_t @ g


_weighted_spmm = primitive("weighted_spmm")(_weighted_spmm_fwd)
defvjp("weighted_spmm", None, None,
       _vjp_weighted_values, _vjp_weighted_dense)


def weighted_spmm(rows: np.ndarray,
                  cols: np.ndarray,
                  values: Tensor,
                  shape: Tuple[int, int],
                  dense: Tensor) -> Tensor:
    """Multiply a sparse matrix with *learnable values* by a dense tensor.

    Parameters
    ----------
    rows, cols:
        COO coordinates of the non-zeros (constant integer arrays).
    values:
        1-D tensor of edge weights, one per coordinate pair.  May require
        grad; the backward pass computes ``d values[e] =
        grad[rows[e]] . dense[cols[e]]``.
    shape:
        ``(n_rows, n_cols)`` of the sparse operand.
    dense:
        Dense right-hand operand of shape ``(n_cols, d)``.
    """
    values = as_tensor(values)
    dense = as_tensor(dense)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if values.data.ndim != 1 or values.data.shape[0] != rows.shape[0]:
        raise ValueError("values must be 1-D with one entry per coordinate")
    return _weighted_spmm(rows, cols, values, dense,
                          shape=(int(shape[0]), int(shape[1])))


def coo_from_scipy(matrix: sp.spmatrix):
    """Return ``(rows, cols, values, shape)`` from any scipy sparse matrix."""
    coo = matrix.tocoo()
    return (coo.row.astype(np.int64), coo.col.astype(np.int64),
            coo.data.astype(np.float64), coo.shape)
