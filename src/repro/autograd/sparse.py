"""Sparse matrix multiplication with autograd support.

Two primitives cover everything the graph encoders need:

* :func:`spmm` — a *constant* scipy sparse matrix times a dense
  :class:`~repro.autograd.tensor.Tensor`.  Gradient flows only into the dense
  operand.  This is the LightGCN / NGCF style propagation where the adjacency
  is fixed.
* :func:`weighted_spmm` — a sparse matrix whose *values are themselves a
  Tensor* (fixed sparsity pattern given by COO ``rows``/``cols``) times a
  dense Tensor.  Gradient flows both into the dense operand and into the edge
  weights.  This is what makes the paper's learnable augmentor trainable
  end-to-end: edge keep-probabilities parameterize the augmented adjacency
  and receive gradients through message passing.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, as_tensor


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Multiply a constant sparse ``matrix`` by a dense tensor.

    Backward: ``d dense = matrix.T @ grad``.
    """
    dense = as_tensor(dense)
    csr = matrix.tocsr()
    csr_t = None

    def backward(g: np.ndarray) -> None:
        nonlocal csr_t
        if csr_t is None:
            csr_t = csr.T.tocsr()
        dense._accumulate(csr_t @ g)

    return Tensor._make(csr @ dense.data, (dense,), backward, "spmm")


def weighted_spmm(rows: np.ndarray,
                  cols: np.ndarray,
                  values: Tensor,
                  shape: Tuple[int, int],
                  dense: Tensor) -> Tensor:
    """Multiply a sparse matrix with *learnable values* by a dense tensor.

    Parameters
    ----------
    rows, cols:
        COO coordinates of the non-zeros (constant integer arrays).
    values:
        1-D tensor of edge weights, one per coordinate pair.  May require
        grad; the backward pass computes ``d values[e] =
        grad[rows[e]] . dense[cols[e]]``.
    shape:
        ``(n_rows, n_cols)`` of the sparse operand.
    dense:
        Dense right-hand operand of shape ``(n_cols, d)``.
    """
    values = as_tensor(values)
    dense = as_tensor(dense)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if values.data.ndim != 1 or values.data.shape[0] != rows.shape[0]:
        raise ValueError("values must be 1-D with one entry per coordinate")

    csr = sp.csr_matrix((values.data, (rows, cols)), shape=shape)
    dense_data = dense.data

    def backward(g: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate(csr.T @ g)
        if values.requires_grad:
            # d value[e] = <g[row_e], X[col_e]>
            grad_vals = np.einsum("ed,ed->e", g[rows], dense_data[cols])
            values._accumulate(grad_vals)

    return Tensor._make(csr @ dense_data, (values, dense), backward,
                        "weighted_spmm")


def coo_from_scipy(matrix: sp.spmatrix):
    """Return ``(rows, cols, values, shape)`` from any scipy sparse matrix."""
    coo = matrix.tocoo()
    return (coo.row.astype(np.int64), coo.col.astype(np.int64),
            coo.data.astype(np.float64), coo.shape)
