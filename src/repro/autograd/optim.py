"""First-order optimizers: SGD (with momentum), Adam and AdamW.

The paper trains with stochastic gradient descent on the joint objective
(Eq 16) with learning rate 0.001; in practice Adam is what the released
GraphAug code and every baseline use, so both are provided.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class holding a parameter list and the ``zero_grad`` helper."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"invalid learning rate: {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain / momentum SGD with optional coupled weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.array(grad, dtype=param.data.dtype, copy=True)
                else:
                    vel *= self.momentum
                    vel += grad
                self._velocity[id(param)] = vel
                grad = vel
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction and coupled weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            # moment buffers are updated in place (one pair per parameter
            # for the whole run, not one allocation per step)
            if m is None:
                m = np.asarray(grad * (1 - self.beta1),
                               dtype=param.data.dtype)
                v = np.asarray((grad ** 2) * (1 - self.beta2),
                               dtype=param.data.dtype)
                self._m[key], self._v[key] = m, v
            else:
                m *= self.beta1
                m += (1 - self.beta1) * grad
                v *= self.beta2
                v += (1 - self.beta2) * np.square(grad)
            denom = np.sqrt(v / bias2)
            denom += self.eps
            param.data -= (self.lr / bias1) * m / denom


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.params:
                if param.grad is not None:
                    param.data *= (1.0 - self.lr * self.weight_decay)
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class ExponentialLR:
    """Multiply the optimizer learning rate by ``gamma`` each epoch.

    Matches the paper's schedule: lr starts at 0.001 with a 0.96 decay
    (Sec IV-A.3 calls the 0.96 factor "weight decay"; it is an lr decay in
    the released code).
    """

    def __init__(self, optimizer: Optimizer, gamma: float = 0.96,
                 min_lr: float = 1e-5):
        self.optimizer = optimizer
        self.gamma = gamma
        self.min_lr = min_lr

    def step(self) -> None:
        self.optimizer.lr = max(self.optimizer.lr * self.gamma, self.min_lr)
