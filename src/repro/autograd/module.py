"""A minimal Module/Parameter system mirroring the torch.nn API surface.

Modules register :class:`Parameter` attributes and child modules
automatically; :meth:`Module.parameters` walks the tree.  Only the layers the
recommenders in this repo actually use are provided: ``Linear``, ``MLP``,
``Embedding`` and ``Sequential``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from . import init as init_schemes
from .tensor import Tensor, concat, get_default_dtype


class Parameter(Tensor):
    """A Tensor that is a trainable leaf of a :class:`Module`.

    Unlike plain tensors, parameters always *copy* their input into the
    current default dtype: a model built inside ``default_dtype("float32")``
    trains in single precision even though numpy initializers return
    float64 arrays, and the optimizers' in-place updates can never
    mutate an array the caller still owns.
    """

    def __init__(self, data):
        super().__init__(np.array(data, dtype=get_default_dtype(),
                                  copy=True),
                         requires_grad=True)


class Module:
    """Base class with automatic parameter / submodule registration."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter in this module's subtree."""
        seen = set()
        for param in self._parameters.values():
            if id(param) not in seen:
                seen.add(id(param))
                yield param
        for module in self._modules.values():
            for param in module.parameters():
                if id(param) not in seen:
                    seen.add(id(param))
                    yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy()
                for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {missing}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{param.data.shape} vs {state[name].shape}")
            param.data = state[name].astype(param.data.dtype)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine map ``x @ W + b`` with Xavier-uniform initialization."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init_schemes.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Sequential(Module):
    """Run child modules (or plain callables) in order."""

    def __init__(self, *layers):
        super().__init__()
        self._layers: List = []
        for i, layer in enumerate(layers):
            if isinstance(layer, Module):
                setattr(self, f"layer_{i}", layer)
            self._layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with a configurable hidden activation.

    Used by the paper's learnable augmentor to score candidate edges from
    concatenated user/item embeddings (Eq 4).
    """

    def __init__(self, dims: Sequence[int], rng: np.random.Generator,
                 activation: Callable[[Tensor], Tensor] = Tensor.relu,
                 final_activation: Optional[Callable[[Tensor], Tensor]] = None):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        self._activation = activation
        self._final_activation = final_activation
        self._linears: List[Linear] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(d_in, d_out, rng)
            setattr(self, f"linear_{i}", layer)
            self._linears.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self._linears):
            x = layer(x)
            if i < len(self._linears) - 1:
                x = self._activation(x)
        if self._final_activation is not None:
            x = self._final_activation(x)
        return x


class Embedding(Module):
    """Lookup table mapping integer ids to dense rows."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator, std: float = 0.1):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            init_schemes.normal((num_embeddings, dim), rng, std=std))

    def forward(self, indices: np.ndarray) -> Tensor:
        return self.weight.take_rows(np.asarray(indices, dtype=np.int64))

    def all(self) -> Tensor:
        """Return the full table as a tensor (for full-graph propagation)."""
        return self.weight
