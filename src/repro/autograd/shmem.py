"""Shared-memory ndarray buffers for cross-process gradient exchange.

The parallel training scheduler (:mod:`repro.train.parallel`) moves two
kinds of float tables between the parent and its batch workers:

* the frozen propagated embedding tables each stale batch reads, and
* per-worker gradient result buffers the parent applies from.

Both are plain 2-D/3-D float arrays that must be *views over one
allocation* — copying a ``(num_items, d)`` table per batch through a
pipe would erase the parallel win.  :class:`SharedNDArray` wraps
``multiprocessing.shared_memory.SharedMemory`` with the two ergonomics
this repo needs:

* a picklable :meth:`spec` (name, shape, dtype) that crosses the spawn
  boundary so workers can :meth:`attach`;
* correct resource-tracker behavior for the parent-owns / workers-borrow
  layout: only the *owner* (creating) process unlinks the segment;
  borrowers just close their mapping.  multiprocessing-spawned children
  share the parent's tracker process, so their attach-time registration
  is a set no-op and the owner's ``unlink`` clears the single entry — and
  if the parent crashes, the tracker reaps the segment instead of
  leaking /dev/shm.

Everything here is process-local bookkeeping around one mmap; no
autograd semantics.  It lives in :mod:`repro.autograd` because the
buffers it carries are gradients and parameter tables, and because the
tape's consumers import their array plumbing from here.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np


class SharedNDArray:
    """A numpy array backed by a named ``SharedMemory`` segment.

    Create in the owning process with :meth:`create` (optionally copying
    an existing array in), ship ``spec()`` to another process, and
    rebuild a view there with :meth:`attach`.  The owner calls
    :meth:`close` (which unlinks); borrowers' :meth:`close` only drops
    their mapping.

    >>> owner = SharedNDArray.create((2, 3), np.float64)
    >>> owner.array[:] = 7.0
    >>> view = SharedNDArray.attach(owner.spec())
    >>> float(view.array.sum())
    42.0
    >>> view.close(); owner.close()
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 shape: Tuple[int, ...], dtype: np.dtype, owner: bool):
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.owner = owner
        self.array = np.ndarray(self.shape, dtype=self.dtype,
                                buffer=shm.buf)

    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, shape: Tuple[int, ...], dtype,
               copy_from: Optional[np.ndarray] = None) -> "SharedNDArray":
        """Allocate a new zeroed segment (optionally copying a table in)."""
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        out = cls(shm, shape, dtype, owner=True)
        if copy_from is not None:
            out.array[...] = copy_from
        else:
            out.array.fill(0)
        return out

    @classmethod
    def attach(cls, spec: Tuple[str, Tuple[int, ...], str]
               ) -> "SharedNDArray":
        """Map an existing segment from its :meth:`spec` (borrower side)."""
        name, shape, dtype = spec
        shm = shared_memory.SharedMemory(name=name)
        # The open re-registered the segment with the resource tracker.
        # Our borrowers are multiprocessing-spawned children, which
        # *share* the parent's tracker process — registration is a set,
        # so this is a harmless no-op, and the one entry is removed by
        # the owner's ``unlink``.  Deliberately no ``unregister`` here:
        # with a shared tracker it would delete the owner's entry and
        # make the owner's unlink a double-remove.
        return cls(shm, shape, dtype, owner=False)

    # ------------------------------------------------------------------ #
    def spec(self) -> Tuple[str, Tuple[int, ...], str]:
        """Picklable (name, shape, dtype-string) for :meth:`attach`."""
        assert self._shm is not None, "spec() after close()"
        return (self._shm.name, self.shape, self.dtype.str)

    def close(self) -> None:
        """Drop this mapping; the owner also destroys the segment."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        self.array = None
        shm.close()
        if self.owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass

    def __del__(self):  # best-effort: never leak /dev/shm segments
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
