"""Neural-network functional building blocks used across the models.

Everything here is a thin composition of :class:`~repro.autograd.tensor.Tensor`
operations, so gradients are exact.  These are the losses and similarity
functions the paper's framework (Sec III-D) and all baselines share: BPR
(Eq 15), InfoNCE (Eq 14), Gaussian KL for the GIB bound (Eq 9) and the usual
normalization helpers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .fused import fused_bpr_scores
from .primitives import fused_kernels_enabled
from .tensor import Tensor, as_tensor, cast_like, concat


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return (x - x.logsumexp(axis=axis, keepdims=True)).exp()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    return x - x.logsumexp(axis=axis, keepdims=True)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalize rows to unit L2 norm (the cosine-similarity workhorse)."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norm


def cosine_similarity_matrix(a: Tensor, b: Tensor) -> Tensor:
    """Pairwise cosine similarities: rows of ``a`` against rows of ``b``."""
    return l2_normalize(a) @ l2_normalize(b).T


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Bayesian Personalized Ranking loss (paper Eq 15).

    ``-mean(log sigmoid(pos - neg))`` over sampled ``(u, v+, v-)`` triplets.
    Routes through the one-node :func:`repro.autograd.fused
    .fused_bpr_scores` kernel when its ``fused`` backend is selected
    (equal within float tolerance; the composed graph stays the default).
    """
    if fused_kernels_enabled("fused_bpr_scores"):
        return fused_bpr_scores(pos_scores, neg_scores)
    return -(pos_scores - neg_scores).logsigmoid().mean()


def infonce_loss(view_a: Tensor, view_b: Tensor,
                 temperature: float = 0.5) -> Tensor:
    """InfoNCE contrastive loss between two aligned views (paper Eq 14).

    Row ``i`` of ``view_a`` and row ``i`` of ``view_b`` form the positive
    pair; every other row of ``view_b`` is a negative.  Cosine similarities
    are scaled by ``1 / temperature``.
    """
    sims = cosine_similarity_matrix(view_a, view_b) / temperature
    n = sims.shape[0]
    pos = sims[np.arange(n), np.arange(n)]
    return (sims.logsumexp(axis=1) - pos).mean()


def decomposed_infonce_loss(view_a: Tensor, view_b: Tensor,
                            temperature: float = 0.5,
                            negative_weight: float = 1.0) -> Tensor:
    """InfoNCE split into positive and negative terms (paper Sec III-D.1).

    The paper: "The final training objective is the summation of the
    positive and negative terms, with the negative term weighted by a
    negative sample ratio denoted as r."  With ``negative_weight = 1`` this
    is exactly :func:`infonce_loss`; smaller values soften the repulsion of
    in-batch negatives — essential at miniature dataset scale, where most
    in-batch "negatives" share the positive pair's latent interest group
    and full-strength repulsion fights the ranking objective.
    """
    sims = cosine_similarity_matrix(view_a, view_b) * (1.0 / temperature)
    n = sims.shape[0]
    pos = sims[np.arange(n), np.arange(n)]
    positive_term = -pos.mean()
    negative_term = sims.logsumexp(axis=1).mean()
    return positive_term + negative_weight * negative_term


def alignment_loss(view_a: Tensor, view_b: Tensor) -> Tensor:
    """Mean squared distance between normalized positive pairs."""
    diff = l2_normalize(view_a) - l2_normalize(view_b)
    return (diff * diff).sum(axis=1).mean()


def uniformity_loss(x: Tensor, t: float = 2.0) -> Tensor:
    """Wang & Isola uniformity: log mean exp(-t * pdist^2) on the sphere.

    Lower (more negative) = more uniform.  Used to quantify Figure 7.
    """
    z = l2_normalize(x)
    sq_dists = (-2.0 * (z @ z.T) + 2.0).clamp(low=0.0)
    n = z.shape[0]
    mask = ~np.eye(n, dtype=bool)
    flat = (-t * sq_dists)[mask]
    return flat.logsumexp(axis=0) - float(np.log(mask.sum()))


def gaussian_kl(mu: Tensor, log_var: Tensor) -> Tensor:
    """KL( N(mu, diag(exp(log_var))) || N(0, I) ), averaged over rows.

    This is the tractable form of the paper's upper bound on ``I(Z'; A)``
    (Lemma 1 / Eq 9) with the variational marginal ``r(Z')`` taken to be a
    standard normal.
    """
    var = log_var.exp()
    per_dim = 0.5 * (var + mu * mu - 1.0 - log_var)
    return per_dim.sum(axis=-1).mean()


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - as_tensor(target)
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor,
                                     targets: np.ndarray) -> Tensor:
    """Stable BCE on raw logits with constant 0/1 targets."""
    targets = cast_like(targets, logits)
    # max(x, 0) - x*t + log(1 + exp(-|x|))
    positive_part = logits.clamp(low=0.0)
    return (positive_part - logits * targets
            + (-logits.abs()).softplus()).mean()


def l2_regularization(params, weight: float = 1.0) -> Tensor:
    """Frobenius-norm weight decay term (paper Eq 16, ``||Theta||_F^2``)."""
    total: Optional[Tensor] = None
    for param in params:
        term = (param * param).sum()
        total = term if total is None else total + term
    if total is None:
        raise ValueError("no parameters given")
    return total * weight


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout (identity when not training or rate == 0)."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = cast_like((rng.random(x.shape) < keep) / keep, x)
    return x * mask


def gumbel_sigmoid(logits: Tensor, rng: np.random.Generator,
                   temperature: float = 0.5) -> Tensor:
    """Reparameterized relaxed-Bernoulli sample (paper Eq 5).

    ``sigmoid((logits + log eps - log(1-eps)) / temperature)`` where
    ``eps ~ Uniform(0, 1)`` gives Logistic noise — the binary analogue of the
    Gumbel-softmax trick.  Differentiable w.r.t. ``logits``.
    """
    eps = rng.uniform(1e-10, 1.0 - 1e-10, size=logits.shape)
    noise = cast_like(np.log(eps) - np.log1p(-eps), logits)
    return ((logits + noise) * (1.0 / temperature)).sigmoid()
