"""GraphAug reproduction: Graph Augmentation for Recommendation (ICDE 2024).

Subpackages
-----------
``repro.autograd``  from-scratch reverse-mode autodiff on numpy
``repro.graph``     sparse bipartite graph substrate
``repro.data``      datasets, synthetic generators, samplers
``repro.eval``      ranking metrics, MAD, uniformity, robustness protocols
``repro.train``     configs and the shared training loop
``repro.models``    17 baseline recommenders + registry
``repro.core``      GraphAug: learnable augmentor, GIB, mixhop encoder
``repro.serve``     online serving: snapshots, sharded workers, updates
``repro.api``       declarative experiment facade: specs, runs, sweeps
"""

__version__ = "1.1.0"

from . import autograd, graph, data, eval, train, serve, utils, api

__all__ = ["autograd", "graph", "data", "eval", "train", "serve", "utils",
           "api", "__version__"]
