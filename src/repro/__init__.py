"""GraphAug reproduction: Graph Augmentation for Recommendation (ICDE 2024).

Subpackages
-----------
``repro.autograd``  from-scratch reverse-mode autodiff on numpy
``repro.graph``     sparse bipartite graph substrate
``repro.data``      datasets, synthetic generators, samplers
``repro.eval``      ranking metrics, MAD, uniformity, robustness protocols
``repro.train``     configs and the shared training loop
``repro.models``    17 baseline recommenders + registry
``repro.core``      GraphAug: learnable augmentor, GIB, mixhop encoder
``repro.serve``     online serving: snapshots, sharded workers, updates
"""

__version__ = "1.0.0"

from . import autograd, graph, data, eval, train, serve, utils

__all__ = ["autograd", "graph", "data", "eval", "train", "serve", "utils",
           "__version__"]
