"""The full-ranking evaluation protocol shared by every experiment.

Rank all items per user with training positives masked to ``-inf`` and
average the ranking metrics over test users (optionally a subset, for the
Table V degree-group protocol).

The engine is *chunked*: users are processed in blocks of
``chunk_size``, so evaluation never materializes the dense
``(num_users, num_items)`` score matrix — at most ``chunk_size x
num_items`` scores are alive at a time.  Each block does one vectorized
CSR-driven masking pass, one ``np.argpartition`` for the top-``max_k``
cut, and batched metric kernels (see :mod:`repro.eval.metrics`).

Score sources
-------------
Every entry point accepts, via :func:`scorer_from`, any of:

* a dense ``(num_users, num_items)`` matrix (the legacy interface);
* a model implementing ``score_users(user_ids)`` — the chunked scoring
  contract of :class:`repro.models.base.Recommender`; its optional
  ``inference_cache()`` context is entered so repeated chunk calls share
  one propagation pass;
* a model exposing only ``score_all_users()`` (materialized once);
* a plain ``callable(user_ids) -> (len(user_ids), num_items)``.

:func:`rank_items` remains the single-user reference implementation the
chunked path is tested against (``tests/test_eval_chunked.py``).
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .metrics import block_hits, compute_block_metrics
from ..data import InteractionDataset

#: legacy fixed block size; still the floor-of-last-resort when a score
#: source gives no way to infer ``num_items``
DEFAULT_CHUNK_SIZE = 1024

#: default peak-score-memory budget for auto-sized chunks (bytes); the
#: ``REPRO_CHUNK_BUDGET_BYTES`` environment variable overrides it
DEFAULT_CHUNK_BUDGET_BYTES = 64 * 1024 * 1024


def auto_chunk_size(num_items: int, itemsize: int = 8,
                    budget_bytes: Optional[int] = None) -> int:
    """Users per block so one score block fits a memory budget.

    ``chunk = budget_bytes / (num_items * itemsize)``: one block of
    ``chunk x num_items`` scores at ``itemsize`` bytes per score stays
    under ``budget_bytes`` (default :data:`DEFAULT_CHUNK_BUDGET_BYTES`,
    overridable via the ``REPRO_CHUNK_BUDGET_BYTES`` environment
    variable).  Both the chunked evaluator (``chunk_size=None``) and the
    serving shard executor (:mod:`repro.serve.sharding`) size their user
    blocks through this.
    """
    if budget_bytes is None:
        budget_bytes = int(os.environ.get("REPRO_CHUNK_BUDGET_BYTES",
                                          DEFAULT_CHUNK_BUDGET_BYTES))
    return max(1, int(budget_bytes) // max(1, int(num_items) * int(itemsize)))


# --------------------------------------------------------------------- #
# single-user reference
# --------------------------------------------------------------------- #

def rank_items(scores: np.ndarray, train_matrix, user: int,
               k: Optional[int] = None) -> np.ndarray:
    """Ranked item ids for one user, excluding their training positives."""
    user_scores = scores[user].copy()
    start, stop = train_matrix.indptr[user:user + 2]
    user_scores[train_matrix.indices[start:stop]] = -np.inf
    if k is None or k >= len(user_scores):
        return np.argsort(-user_scores, kind="stable")
    top = np.argpartition(-user_scores, k)[:k]
    return top[np.argsort(-user_scores[top], kind="stable")]


# --------------------------------------------------------------------- #
# chunked engine
# --------------------------------------------------------------------- #

def scorer_from(source) -> Tuple[Callable[[np.ndarray], np.ndarray], object]:
    """Normalize a score source into a ``(scorer, context)`` pair.

    ``scorer(user_ids) -> (len(user_ids), num_items)``; ``context`` is a
    context manager to hold open while scoring (a model's
    ``inference_cache()`` when available, else a no-op).
    """
    if isinstance(source, np.ndarray):
        matrix = source

        def scorer(user_ids: np.ndarray) -> np.ndarray:
            return matrix[np.asarray(user_ids, dtype=np.int64)]

        return scorer, nullcontext()
    score_users = getattr(source, "score_users", None)
    if callable(score_users):
        cache = getattr(source, "inference_cache", None)
        return score_users, (cache() if callable(cache) else nullcontext())
    score_all = getattr(source, "score_all_users", None)
    if callable(score_all):
        return scorer_from(np.asarray(score_all()))
    if callable(source):
        return source, nullcontext()
    raise TypeError("cannot build a scorer from "
                    f"{type(source).__name__}: expected a score matrix, a "
                    "model with score_users/score_all_users, or a callable")


def _csr_rows_concat(matrix: sp.csr_matrix,
                     rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated ``matrix.indices`` of ``rows``, plus per-row counts."""
    starts = matrix.indptr[rows].astype(np.int64)
    counts = matrix.indptr[rows + 1].astype(np.int64) - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=matrix.indices.dtype), counts
    offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
    flat = (np.arange(total, dtype=np.int64)
            + np.repeat(starts - offsets, counts))
    return matrix.indices[flat], counts


def rank_items_block(scores_block: np.ndarray, train_matrix,
                     user_ids: Optional[np.ndarray] = None,
                     k: Optional[int] = None) -> np.ndarray:
    """Top-``k`` ranked item ids for a block of users, train masked.

    Vectorized counterpart of :func:`rank_items`: one fancy-index masking
    pass over the block and a single ``argpartition`` / ``argsort`` call
    instead of a Python loop over users.

    ``scores_block`` is already sliced to the chunk — row ``i`` holds the
    scores of ``user_ids[i]``; ``user_ids`` only selects the train rows
    to mask.  ``train_matrix=None`` skips masking entirely (the serving
    tier's ``exclude_seen=False`` path), in which case ``user_ids`` may
    be omitted.
    """
    block = np.array(scores_block, copy=True)
    if train_matrix is not None:
        if user_ids is None:
            raise ValueError("user_ids is required when masking against "
                             "a train matrix")
        user_ids = np.asarray(user_ids, dtype=np.int64)
        cols, counts = _csr_rows_concat(train_matrix, user_ids)
        if cols.size:
            rows = np.repeat(np.arange(len(user_ids)), counts)
            block[rows, cols] = -np.inf
    num_items = block.shape[1]
    if k is None or k >= num_items:
        return np.argsort(-block, kind="stable", axis=1)
    part = np.argpartition(-block, k, axis=1)[:, :k]
    part_scores = np.take_along_axis(block, part, axis=1)
    order = np.argsort(-part_scores, kind="stable", axis=1)
    return np.take_along_axis(part, order, axis=1)


def _sorted_csr(matrix) -> sp.csr_matrix:
    """CSR with sorted indices (the membership kernel's precondition)."""
    if not sp.isspmatrix_csr(matrix):
        matrix = sp.csr_matrix(matrix)
    if not matrix.has_sorted_indices:
        matrix = matrix.copy()
        matrix.sort_indices()
    return matrix


def evaluate_ranking(scorer: Callable[[np.ndarray], np.ndarray],
                     dataset: InteractionDataset,
                     ks: Sequence[int] = (20, 40),
                     metrics: Sequence[str] = ("recall", "ndcg"),
                     users: Optional[np.ndarray] = None,
                     test_matrix=None,
                     chunk_size: Optional[int] = None) -> Dict[str, float]:
    """Chunked full-ranking evaluation of an arbitrary scorer.

    Parameters
    ----------
    scorer:
        ``scorer(user_ids) -> (len(user_ids), num_items)`` score blocks
        (see :func:`scorer_from` to adapt matrices and models).
    users:
        Optional subset of user ids to evaluate (Table V user groups);
        defaults to all users with test positives.  Users without test
        positives are skipped either way.
    test_matrix:
        Optional replacement test matrix (Table V item groups restrict
        test positives to the item bucket).
    chunk_size:
        Users ranked per block; bounds peak score memory at
        ``chunk_size x num_items``.  ``None`` auto-sizes from the memory
        budget via :func:`auto_chunk_size`.
    """
    test = _sorted_csr(dataset.test_matrix if test_matrix is None
                       else test_matrix)
    positive_counts = np.diff(test.indptr)
    if users is None:
        users = np.where(positive_counts > 0)[0]
    else:
        users = np.asarray(users, dtype=np.int64)
        users = users[positive_counts[users] > 0]
    if len(users) == 0:
        return {}
    if chunk_size is None:
        chunk_size = auto_chunk_size(test.shape[1])
    chunk_size = max(1, int(chunk_size))
    max_k = max(ks)
    train = dataset.train.matrix
    num_items = test.shape[1]
    per_key: Dict[str, list] = {}
    for start in range(0, len(users), chunk_size):
        chunk = users[start:start + chunk_size]
        ranked = rank_items_block(scorer(chunk), train, chunk, k=max_k)
        positives, counts = _csr_rows_concat(test, chunk)
        hits = block_hits(ranked, positives, counts, num_items)
        for key, values in compute_block_metrics(hits, counts, ks,
                                                 metrics).items():
            per_key.setdefault(key, []).append(values)
    return {key: float(np.mean(np.concatenate(blocks)))
            for key, blocks in per_key.items()}


def top_k_lists(source, dataset: InteractionDataset, k: int,
                users: Optional[np.ndarray] = None,
                chunk_size: Optional[int] = None) -> np.ndarray:
    """``(len(users), k)`` recommended item ids, train positives masked.

    ``source`` is anything :func:`scorer_from` accepts; defaults to all
    users.  Requires ``k <= num_items``.  ``chunk_size=None`` auto-sizes
    from the memory budget via :func:`auto_chunk_size`.
    """
    if users is None:
        users = np.arange(dataset.num_users, dtype=np.int64)
    else:
        users = np.asarray(users, dtype=np.int64)
    if chunk_size is None:
        chunk_size = auto_chunk_size(dataset.num_items)
    chunk_size = max(1, int(chunk_size))
    scorer, context = scorer_from(source)
    lists = np.empty((len(users), k), dtype=np.int64)
    train = dataset.train.matrix
    with context:
        for start in range(0, len(users), chunk_size):
            chunk = users[start:start + chunk_size]
            lists[start:start + len(chunk)] = rank_items_block(
                scorer(chunk), train, chunk, k=k)
    return lists


# --------------------------------------------------------------------- #
# public entry points
# --------------------------------------------------------------------- #

def evaluate_scores(scores: np.ndarray, dataset: InteractionDataset,
                    ks: Sequence[int] = (20, 40),
                    metrics: Sequence[str] = ("recall", "ndcg"),
                    users: Optional[np.ndarray] = None,
                    test_matrix=None,
                    chunk_size: Optional[int] = None) -> Dict[str, float]:
    """Evaluate a dense score matrix against the dataset's test split.

    Kept for the callers that already hold a dense matrix; the ranking
    and metrics still run through the chunked block engine.
    """
    scorer, context = scorer_from(np.asarray(scores))
    with context:
        return evaluate_ranking(scorer, dataset, ks=ks, metrics=metrics,
                                users=users, test_matrix=test_matrix,
                                chunk_size=chunk_size)


def evaluate_model(model, dataset: InteractionDataset,
                   ks: Sequence[int] = (20, 40),
                   metrics: Sequence[str] = ("recall", "ndcg"),
                   users: Optional[np.ndarray] = None,
                   test_matrix=None,
                   chunk_size: Optional[int] = None) -> Dict[str, float]:
    """Evaluate a model through the chunked engine.

    Models implementing ``score_users`` are scored block-by-block without
    ever materializing the all-pairs matrix; their ``inference_cache()``
    (when present) keeps propagation shared across blocks.  Objects with
    only ``score_all_users()`` fall back to one dense materialization.
    """
    scorer, context = scorer_from(model)
    with context:
        return evaluate_ranking(scorer, dataset, ks=ks, metrics=metrics,
                                users=users, test_matrix=test_matrix,
                                chunk_size=chunk_size)
