"""The full-ranking evaluation protocol shared by every experiment.

Given a model exposing ``score_all_users() -> (num_users, num_items)``
preference scores, rank all items per user with training positives masked to
``-inf`` and average the ranking metrics over test users (optionally a
subset, for the Table V degree-group protocol).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .metrics import compute_user_metrics, aggregate_metrics
from ..data import InteractionDataset


def rank_items(scores: np.ndarray, train_matrix, user: int,
               k: Optional[int] = None) -> np.ndarray:
    """Ranked item ids for one user, excluding their training positives."""
    user_scores = scores[user].copy()
    start, stop = train_matrix.indptr[user:user + 2]
    user_scores[train_matrix.indices[start:stop]] = -np.inf
    if k is None or k >= len(user_scores):
        return np.argsort(-user_scores, kind="stable")
    top = np.argpartition(-user_scores, k)[:k]
    return top[np.argsort(-user_scores[top], kind="stable")]


def evaluate_scores(scores: np.ndarray, dataset: InteractionDataset,
                    ks: Sequence[int] = (20, 40),
                    metrics: Sequence[str] = ("recall", "ndcg"),
                    users: Optional[np.ndarray] = None,
                    test_matrix=None) -> Dict[str, float]:
    """Evaluate a dense score matrix against the dataset's test split.

    Parameters
    ----------
    users:
        Optional subset of user ids to evaluate (Table V user groups);
        defaults to all users with test positives.
    test_matrix:
        Optional replacement test matrix (Table V item groups restrict test
        positives to the item bucket).
    """
    test = dataset.test_matrix if test_matrix is None else test_matrix
    if users is None:
        counts = np.diff(test.indptr)
        users = np.where(counts > 0)[0]
    max_k = max(ks)
    per_user = []
    train = dataset.train.matrix
    for user in users:
        start, stop = test.indptr[user:user + 2]
        positives = test.indices[start:stop]
        if len(positives) == 0:
            continue
        ranked = rank_items(scores, train, user, k=max_k)
        per_user.append(compute_user_metrics(ranked, positives, ks, metrics))
    return aggregate_metrics(per_user)


def evaluate_model(model, dataset: InteractionDataset,
                   ks: Sequence[int] = (20, 40),
                   metrics: Sequence[str] = ("recall", "ndcg"),
                   users: Optional[np.ndarray] = None,
                   test_matrix=None) -> Dict[str, float]:
    """Evaluate any object with a ``score_all_users()`` method."""
    scores = model.score_all_users()
    return evaluate_scores(scores, dataset, ks=ks, metrics=metrics,
                           users=users, test_matrix=test_matrix)
