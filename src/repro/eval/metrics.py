"""Top-K ranking metrics: Recall@K, NDCG@K, Precision@K, HitRate@K, MRR, MAP.

Conventions match the paper's protocol (and RecBole/SELFRec): full ranking
over all items, training positives masked out, per-user metrics averaged
over users that have at least one test positive.  NDCG uses the standard
binary-relevance form with the ideal DCG truncated at
``min(K, |test positives|)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np


def recall_at_k(ranked: np.ndarray, positives: np.ndarray, k: int) -> float:
    """Fraction of the user's test positives present in the top ``k``."""
    if len(positives) == 0:
        raise ValueError("recall undefined without positives")
    hits = np.isin(ranked[:k], positives).sum()
    return float(hits) / float(len(positives))


def precision_at_k(ranked: np.ndarray, positives: np.ndarray,
                   k: int) -> float:
    """Fraction of the top ``k`` that are test positives."""
    hits = np.isin(ranked[:k], positives).sum()
    return float(hits) / float(k)


def hit_rate_at_k(ranked: np.ndarray, positives: np.ndarray, k: int) -> float:
    """1.0 if any test positive appears in the top ``k``, else 0.0."""
    return float(np.isin(ranked[:k], positives).any())


def ndcg_at_k(ranked: np.ndarray, positives: np.ndarray, k: int) -> float:
    """Binary-relevance NDCG@K with ideal DCG truncation."""
    if len(positives) == 0:
        raise ValueError("ndcg undefined without positives")
    top = ranked[:k]
    gains = np.isin(top, positives).astype(np.float64)
    discounts = 1.0 / np.log2(np.arange(2, len(top) + 2))
    dcg = float((gains * discounts).sum())
    ideal_hits = min(k, len(positives))
    idcg = float(discounts[:ideal_hits].sum())
    return dcg / idcg


def mrr(ranked: np.ndarray, positives: np.ndarray) -> float:
    """Reciprocal rank of the first relevant item (0 if none ranked)."""
    hits = np.isin(ranked, positives)
    idx = np.argmax(hits)
    if not hits[idx]:
        return 0.0
    return 1.0 / float(idx + 1)


def average_precision(ranked: np.ndarray, positives: np.ndarray,
                      k: int) -> float:
    """Average precision at ``k`` (binary relevance)."""
    top = ranked[:k]
    hits = np.isin(top, positives).astype(np.float64)
    if hits.sum() == 0:
        return 0.0
    precisions = np.cumsum(hits) / np.arange(1, len(top) + 1)
    return float((precisions * hits).sum() / min(len(positives), k))


_METRIC_FUNCS = {
    "recall": recall_at_k,
    "ndcg": ndcg_at_k,
    "precision": precision_at_k,
    "hit": hit_rate_at_k,
    "map": average_precision,
}


def compute_user_metrics(ranked: np.ndarray, positives: np.ndarray,
                         ks: Sequence[int],
                         metrics: Sequence[str] = ("recall", "ndcg")
                         ) -> Dict[str, float]:
    """All requested ``metric@k`` values for one user's ranked list."""
    out: Dict[str, float] = {}
    for metric in metrics:
        func = _METRIC_FUNCS.get(metric)
        if func is None:
            raise KeyError(f"unknown metric {metric!r}; "
                           f"available: {sorted(_METRIC_FUNCS)}")
        for k in ks:
            out[f"{metric}@{k}"] = func(ranked, positives, k)
    return out


def aggregate_metrics(per_user: Iterable[Dict[str, float]]
                      ) -> Dict[str, float]:
    """Average per-user metric dictionaries (all must share the same keys)."""
    per_user = list(per_user)
    if not per_user:
        return {}
    keys = per_user[0].keys()
    return {key: float(np.mean([m[key] for m in per_user])) for key in keys}
