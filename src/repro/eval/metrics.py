"""Top-K ranking metrics: Recall@K, NDCG@K, Precision@K, HitRate@K, MRR, MAP.

Conventions match the paper's protocol (and RecBole/SELFRec): full ranking
over all items, training positives masked out, per-user metrics averaged
over users that have at least one test positive.  NDCG uses the standard
binary-relevance form with the ideal DCG truncated at
``min(K, |test positives|)``.

Two kernel families live here:

* the per-user reference functions (:func:`recall_at_k` and friends) —
  simple, obviously-correct, operating on one ranked list at a time;
* the batched block kernels (:func:`block_hits`,
  :func:`compute_block_metrics`) used by the chunked ranking engine in
  :mod:`repro.eval.protocol` — one call covers a whole ``(block, K)`` hit
  matrix via sorted-positives membership instead of per-user ``np.isin``.
  They reproduce the reference values exactly (same float64 reduction
  shapes), which ``tests/test_eval_chunked.py`` certifies.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from ..utils import component_registry


def recall_at_k(ranked: np.ndarray, positives: np.ndarray, k: int) -> float:
    """Fraction of the user's test positives present in the top ``k``."""
    if len(positives) == 0:
        raise ValueError("recall undefined without positives")
    hits = np.isin(ranked[:k], positives).sum()
    return float(hits) / float(len(positives))


def precision_at_k(ranked: np.ndarray, positives: np.ndarray,
                   k: int) -> float:
    """Fraction of the top ``k`` that are test positives."""
    hits = np.isin(ranked[:k], positives).sum()
    return float(hits) / float(k)


def hit_rate_at_k(ranked: np.ndarray, positives: np.ndarray, k: int) -> float:
    """1.0 if any test positive appears in the top ``k``, else 0.0."""
    return float(np.isin(ranked[:k], positives).any())


def ndcg_at_k(ranked: np.ndarray, positives: np.ndarray, k: int) -> float:
    """Binary-relevance NDCG@K with ideal DCG truncation."""
    if len(positives) == 0:
        raise ValueError("ndcg undefined without positives")
    top = ranked[:k]
    gains = np.isin(top, positives).astype(np.float64)
    discounts = 1.0 / np.log2(np.arange(2, len(top) + 2))
    dcg = float((gains * discounts).sum())
    ideal_hits = min(k, len(positives))
    idcg = float(discounts[:ideal_hits].sum())
    return dcg / idcg


def mrr(ranked: np.ndarray, positives: np.ndarray) -> float:
    """Reciprocal rank of the first relevant item (0 if none ranked)."""
    hits = np.isin(ranked, positives)
    idx = np.argmax(hits)
    if not hits[idx]:
        return 0.0
    return 1.0 / float(idx + 1)


def average_precision(ranked: np.ndarray, positives: np.ndarray,
                      k: int) -> float:
    """Average precision at ``k`` (binary relevance)."""
    top = ranked[:k]
    hits = np.isin(top, positives).astype(np.float64)
    if hits.sum() == 0:
        return 0.0
    precisions = np.cumsum(hits) / np.arange(1, len(top) + 1)
    return float((precisions * hits).sum() / min(len(positives), k))


def mrr_at_k(ranked: np.ndarray, positives: np.ndarray, k: int) -> float:
    """Reciprocal rank of the first relevant item inside the top ``k``."""
    return mrr(ranked[:k], positives)


_METRIC_FUNCS = {
    "recall": recall_at_k,
    "ndcg": ndcg_at_k,
    "precision": precision_at_k,
    "hit": hit_rate_at_k,
    "mrr": mrr_at_k,
    "map": average_precision,
}

#: the ``"metric"`` component registry mirrors the metric names so the
#: experiment facade can validate an ``EvalSpec`` without running one —
#: both the per-user reference and the block kernels key on these names
METRIC_REGISTRY = component_registry("metric")
for _metric_name, _metric_func in _METRIC_FUNCS.items():
    METRIC_REGISTRY.register(_metric_name)(_metric_func)


def compute_user_metrics(ranked: np.ndarray, positives: np.ndarray,
                         ks: Sequence[int],
                         metrics: Sequence[str] = ("recall", "ndcg")
                         ) -> Dict[str, float]:
    """All requested ``metric@k`` values for one user's ranked list."""
    out: Dict[str, float] = {}
    for metric in metrics:
        func = _METRIC_FUNCS.get(metric)
        if func is None:
            raise KeyError(f"unknown metric {metric!r}; "
                           f"available: {sorted(_METRIC_FUNCS)}")
        for k in ks:
            out[f"{metric}@{k}"] = func(ranked, positives, k)
    return out


def aggregate_metrics(per_user: Iterable[Dict[str, float]]
                      ) -> Dict[str, float]:
    """Average per-user metric dictionaries (all must share the same keys)."""
    per_user = list(per_user)
    if not per_user:
        return {}
    keys = per_user[0].keys()
    return {key: float(np.mean([m[key] for m in per_user])) for key in keys}


# --------------------------------------------------------------------- #
# batched block kernels (chunked ranking engine)
# --------------------------------------------------------------------- #

def block_hits(ranked: np.ndarray, positives: np.ndarray,
               positive_counts: np.ndarray, num_items: int) -> np.ndarray:
    """Boolean hit matrix for a block of users' ranked lists.

    Parameters
    ----------
    ranked:
        ``(block, width)`` ranked item ids (one row per user).
    positives:
        Concatenated *sorted* test-positive item ids of the block's users,
        user-major (the CSR ``indices`` layout).
    positive_counts:
        ``(block,)`` number of positives per user.
    num_items:
        Catalogue size (the key-encoding stride).

    Membership is one :func:`np.searchsorted` over ``row * num_items +
    item`` keys — user-major with sorted per-user positives makes the key
    array globally sorted — instead of a per-user ``np.isin``.
    """
    block, width = ranked.shape
    if positives.size == 0:
        return np.zeros((block, width), dtype=bool)
    user_rows = np.repeat(np.arange(block, dtype=np.int64), positive_counts)
    pos_keys = user_rows * num_items + positives
    ranked_keys = (np.arange(block, dtype=np.int64)[:, None] * num_items
                   + ranked).ravel()
    loc = np.searchsorted(pos_keys, ranked_keys)
    hits = pos_keys[np.minimum(loc, len(pos_keys) - 1)] == ranked_keys
    return hits.reshape(block, width)


def _block_recall(hits: np.ndarray, npos: np.ndarray, k: int) -> np.ndarray:
    return hits[:, :k].sum(axis=1) / npos


def _block_precision(hits: np.ndarray, npos: np.ndarray,
                     k: int) -> np.ndarray:
    return hits[:, :k].sum(axis=1) / float(k)


def _block_hit_rate(hits: np.ndarray, npos: np.ndarray,
                    k: int) -> np.ndarray:
    return hits[:, :k].any(axis=1).astype(np.float64)


def _block_ndcg(hits: np.ndarray, npos: np.ndarray, k: int) -> np.ndarray:
    kk = min(k, hits.shape[1])
    gains = hits[:, :kk].astype(np.float64)
    discounts = 1.0 / np.log2(np.arange(2, kk + 2))
    dcg = (gains * discounts).sum(axis=1)
    # per-count ideal DCG, summed exactly like the reference slice-sum so
    # the quotient is bit-identical to ndcg_at_k
    idcg_table = np.array([discounts[:h].sum() for h in range(1, kk + 1)])
    ideal_hits = np.minimum(npos.astype(np.int64), kk)
    return dcg / idcg_table[ideal_hits - 1]


def _block_mrr(hits: np.ndarray, npos: np.ndarray, k: int) -> np.ndarray:
    top = hits[:, :k]
    first = np.argmax(top, axis=1)
    found = top[np.arange(top.shape[0]), first]
    return np.where(found, 1.0 / (first + 1.0), 0.0)


def _block_average_precision(hits: np.ndarray, npos: np.ndarray,
                             k: int) -> np.ndarray:
    kk = min(k, hits.shape[1])
    top = hits[:, :kk].astype(np.float64)
    precisions = np.cumsum(top, axis=1) / np.arange(1, kk + 1)
    ap = (precisions * top).sum(axis=1) / np.minimum(npos, float(k))
    return np.where(top.sum(axis=1) > 0, ap, 0.0)


_BLOCK_METRIC_FUNCS = {
    "recall": _block_recall,
    "ndcg": _block_ndcg,
    "precision": _block_precision,
    "hit": _block_hit_rate,
    "mrr": _block_mrr,
    "map": _block_average_precision,
}


def compute_block_metrics(hits: np.ndarray, positive_counts: np.ndarray,
                          ks: Sequence[int],
                          metrics: Sequence[str] = ("recall", "ndcg")
                          ) -> Dict[str, np.ndarray]:
    """Per-user ``(block,)`` arrays of every requested ``metric@k``.

    ``hits`` is the :func:`block_hits` matrix truncated at ``max(ks)``;
    every user in the block must have ``positive_counts > 0``.
    """
    out: Dict[str, np.ndarray] = {}
    npos = positive_counts.astype(np.float64)
    for metric in metrics:
        func = _BLOCK_METRIC_FUNCS.get(metric)
        if func is None:
            raise KeyError(f"unknown metric {metric!r}; "
                           f"available: {sorted(_BLOCK_METRIC_FUNCS)}")
        for k in ks:
            out[f"{metric}@{k}"] = func(hits, npos, k)
    return out
