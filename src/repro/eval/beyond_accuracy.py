"""Beyond-accuracy recommendation metrics: coverage, novelty, Gini.

The paper motivates GraphAug partly by *popularity bias* in noisy implicit
feedback (Sec I).  These metrics quantify that axis on any score matrix:

* :func:`item_coverage` — fraction of the catalogue that appears in at
  least one user's top-K list (higher = less popularity-concentrated);
* :func:`gini_index` — inequality of recommendation exposure across items
  (0 = perfectly even, 1 = all exposure on one item);
* :func:`novelty` — mean self-information ``-log2 p(item)`` of recommended
  items under the training popularity distribution (higher = less
  popularity-biased recommendations);
* :func:`intra_list_distance` — mean pairwise embedding distance inside a
  top-K list (diversity).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .protocol import rank_items
from ..data import InteractionDataset


def _top_k_lists(scores: np.ndarray, dataset: InteractionDataset,
                 k: int) -> np.ndarray:
    """(num_users, k) matrix of recommended item ids, train masked."""
    lists = np.empty((dataset.num_users, k), dtype=np.int64)
    train = dataset.train.matrix
    for user in range(dataset.num_users):
        lists[user] = rank_items(scores, train, user, k=k)
    return lists


def item_coverage(scores: np.ndarray, dataset: InteractionDataset,
                  k: int = 20) -> float:
    """Fraction of items recommended to at least one user in the top-k."""
    lists = _top_k_lists(scores, dataset, k)
    return len(np.unique(lists)) / float(dataset.num_items)


def exposure_counts(scores: np.ndarray, dataset: InteractionDataset,
                    k: int = 20) -> np.ndarray:
    """How many top-k lists each item appears in."""
    lists = _top_k_lists(scores, dataset, k)
    return np.bincount(lists.ravel(), minlength=dataset.num_items)


def gini_index(scores: np.ndarray, dataset: InteractionDataset,
               k: int = 20) -> float:
    """Gini coefficient of item exposure (0 = even, 1 = concentrated)."""
    counts = np.sort(exposure_counts(scores, dataset, k).astype(
        np.float64))
    n = len(counts)
    total = counts.sum()
    if total == 0:
        return 0.0
    # standard formula: sum of cumulative shortfalls
    index = np.arange(1, n + 1)
    return float((2.0 * (index * counts).sum()) / (n * total)
                 - (n + 1.0) / n)


def novelty(scores: np.ndarray, dataset: InteractionDataset,
            k: int = 20, eps: float = 1e-12) -> float:
    """Mean ``-log2 p(item)`` of recommendations under train popularity."""
    popularity = dataset.train.item_degrees()
    probs = popularity / max(popularity.sum(), eps)
    lists = _top_k_lists(scores, dataset, k)
    info = -np.log2(np.maximum(probs[lists], eps))
    return float(info.mean())


def intra_list_distance(scores: np.ndarray, dataset: InteractionDataset,
                        item_embeddings: np.ndarray, k: int = 10,
                        eps: float = 1e-12) -> float:
    """Mean pairwise cosine distance inside each user's top-k list."""
    unit = item_embeddings / np.maximum(
        np.linalg.norm(item_embeddings, axis=1, keepdims=True), eps)
    lists = _top_k_lists(scores, dataset, k)
    distances = []
    for row in lists:
        block = unit[row]
        sims = block @ block.T
        off = ~np.eye(k, dtype=bool)
        distances.append(float(1.0 - sims[off].mean()))
    return float(np.mean(distances))


def beyond_accuracy_report(scores: np.ndarray,
                           dataset: InteractionDataset,
                           item_embeddings: Optional[np.ndarray] = None,
                           k: int = 20) -> Dict[str, float]:
    """All beyond-accuracy metrics in one dictionary."""
    report = {
        f"coverage@{k}": item_coverage(scores, dataset, k),
        f"gini@{k}": gini_index(scores, dataset, k),
        f"novelty@{k}": novelty(scores, dataset, k),
    }
    if item_embeddings is not None:
        report[f"ild@{min(k, 10)}"] = intra_list_distance(
            scores, dataset, item_embeddings, k=min(k, 10))
    return report
