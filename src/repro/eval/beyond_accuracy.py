"""Beyond-accuracy recommendation metrics: coverage, novelty, Gini.

The paper motivates GraphAug partly by *popularity bias* in noisy implicit
feedback (Sec I).  These metrics quantify that axis on any score source
``repro.eval.scorer_from`` accepts — a dense matrix, a model with
``score_users`` (ranked through the chunked block engine, no all-pairs
matrix), or a scorer callable:

* :func:`item_coverage` — fraction of the catalogue that appears in at
  least one user's top-K list (higher = less popularity-concentrated);
* :func:`gini_index` — inequality of recommendation exposure across items
  (0 = perfectly even, 1 = all exposure on one item);
* :func:`novelty` — mean self-information ``-log2 p(item)`` of recommended
  items under the training popularity distribution (higher = less
  popularity-biased recommendations);
* :func:`intra_list_distance` — mean pairwise embedding distance inside a
  top-K list (diversity).

:func:`beyond_accuracy_report` ranks once and derives every metric from
the shared top-K lists.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .protocol import top_k_lists
from ..data import InteractionDataset
from ..utils import component_registry

PROBE_REGISTRY = component_registry("probe")


# --------------------------------------------------------------------- #
# kernels over precomputed (num_users, k) top-K lists
# --------------------------------------------------------------------- #

def _coverage_of(lists: np.ndarray, num_items: int) -> float:
    return len(np.unique(lists)) / float(num_items)


def _exposure_of(lists: np.ndarray, num_items: int) -> np.ndarray:
    return np.bincount(lists.ravel(), minlength=num_items)


def _gini_of(lists: np.ndarray, num_items: int) -> float:
    counts = np.sort(_exposure_of(lists, num_items).astype(np.float64))
    n = len(counts)
    total = counts.sum()
    if total == 0:
        return 0.0
    # standard formula: sum of cumulative shortfalls
    index = np.arange(1, n + 1)
    return float((2.0 * (index * counts).sum()) / (n * total)
                 - (n + 1.0) / n)


def _novelty_of(lists: np.ndarray, dataset: InteractionDataset,
                eps: float) -> float:
    popularity = dataset.train.item_degrees()
    probs = popularity / max(popularity.sum(), eps)
    info = -np.log2(np.maximum(probs[lists], eps))
    return float(info.mean())


def _intra_list_distance_of(lists: np.ndarray,
                            item_embeddings: np.ndarray,
                            eps: float) -> float:
    unit = item_embeddings / np.maximum(
        np.linalg.norm(item_embeddings, axis=1, keepdims=True), eps)
    k = lists.shape[1]
    distances = []
    for row in lists:
        block = unit[row]
        sims = block @ block.T
        off = ~np.eye(k, dtype=bool)
        distances.append(float(1.0 - sims[off].mean()))
    return float(np.mean(distances))


# --------------------------------------------------------------------- #
# public metrics (each ranks on demand; use the report to rank once)
# --------------------------------------------------------------------- #

def item_coverage(scores, dataset: InteractionDataset,
                  k: int = 20) -> float:
    """Fraction of items recommended to at least one user in the top-k."""
    return _coverage_of(top_k_lists(scores, dataset, k), dataset.num_items)


def exposure_counts(scores, dataset: InteractionDataset,
                    k: int = 20) -> np.ndarray:
    """How many top-k lists each item appears in."""
    return _exposure_of(top_k_lists(scores, dataset, k), dataset.num_items)


def gini_index(scores, dataset: InteractionDataset,
               k: int = 20) -> float:
    """Gini coefficient of item exposure (0 = even, 1 = concentrated)."""
    return _gini_of(top_k_lists(scores, dataset, k), dataset.num_items)


def novelty(scores, dataset: InteractionDataset,
            k: int = 20, eps: float = 1e-12) -> float:
    """Mean ``-log2 p(item)`` of recommendations under train popularity."""
    return _novelty_of(top_k_lists(scores, dataset, k), dataset, eps)


def intra_list_distance(scores, dataset: InteractionDataset,
                        item_embeddings: np.ndarray, k: int = 10,
                        eps: float = 1e-12) -> float:
    """Mean pairwise cosine distance inside each user's top-k list."""
    return _intra_list_distance_of(top_k_lists(scores, dataset, k),
                                   item_embeddings, eps)


@PROBE_REGISTRY.register("beyond_accuracy")
def beyond_accuracy_report(scores,
                           dataset: InteractionDataset,
                           item_embeddings: Optional[np.ndarray] = None,
                           k: int = 20) -> Dict[str, float]:
    """All beyond-accuracy metrics from one shared ranking pass.

    Scoring and ranking run exactly once; every metric (including the
    ILD's shorter ``min(k, 10)`` cut-off, a prefix of the same sorted
    lists) is derived from the resulting top-K lists.
    """
    lists = top_k_lists(scores, dataset, k)
    report = {
        f"coverage@{k}": _coverage_of(lists, dataset.num_items),
        f"gini@{k}": _gini_of(lists, dataset.num_items),
        f"novelty@{k}": _novelty_of(lists, dataset, 1e-12),
    }
    if item_embeddings is not None:
        kk = min(k, 10)
        report[f"ild@{kk}"] = _intra_list_distance_of(
            lists[:, :kk], item_embeddings, 1e-12)
    return report
