"""Degree-group (skewed-distribution) evaluation — paper Table V.

The paper splits training data "into five user groups and five item groups
based on the number of interactions" and reports Recall/NDCG@40 per group.

* User groups: evaluate the usual protocol restricted to users in the group.
* Item groups: restrict each user's *test positives* to items in the group
  (users without positives in the group are skipped).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .protocol import evaluate_ranking, scorer_from
from ..data import InteractionDataset
from ..data.splits import quantile_groups
from ..utils import component_registry

PROBE_REGISTRY = component_registry("probe")


def _restrict_test_to_items(test_matrix: sp.csr_matrix,
                            items: np.ndarray) -> sp.csr_matrix:
    keep = np.zeros(test_matrix.shape[1], dtype=bool)
    keep[items] = True
    coo = test_matrix.tocoo()
    mask = keep[coo.col]
    return sp.csr_matrix((coo.data[mask], (coo.row[mask], coo.col[mask])),
                         shape=test_matrix.shape)


@PROBE_REGISTRY.register("user_groups")
def evaluate_user_groups(scores, dataset: InteractionDataset,
                         num_groups: int = 5,
                         ks: Sequence[int] = (40,),
                         metrics: Sequence[str] = ("recall", "ndcg")
                         ) -> Dict[str, Dict[str, float]]:
    """Metrics per user-degree quantile group (sparsest group first).

    ``scores`` is any source :func:`repro.eval.scorer_from` accepts — a
    dense matrix, a model with ``score_users``, or a scorer callable; a
    model's inference cache is shared across all five group evaluations.
    """
    degrees = dataset.train.user_degrees()
    groups = quantile_groups(degrees, num_groups)
    testable = set(dataset.test_users().tolist())
    scorer, context = scorer_from(scores)
    out: Dict[str, Dict[str, float]] = {}
    with context:
        for label, users in groups.items():
            users = np.asarray([u for u in users if u in testable])
            if len(users) == 0:
                out[label] = {}
                continue
            out[label] = evaluate_ranking(scorer, dataset, ks=ks,
                                          metrics=metrics, users=users)
    return out


@PROBE_REGISTRY.register("item_groups")
def evaluate_item_groups(scores, dataset: InteractionDataset,
                         num_groups: int = 5,
                         ks: Sequence[int] = (40,),
                         metrics: Sequence[str] = ("recall", "ndcg")
                         ) -> Dict[str, Dict[str, float]]:
    """Metrics per item-degree quantile group (long-tail group first).

    ``scores`` accepts the same sources as :func:`evaluate_user_groups`.
    """
    degrees = dataset.train.item_degrees()
    groups = quantile_groups(degrees, num_groups)
    scorer, context = scorer_from(scores)
    out: Dict[str, Dict[str, float]] = {}
    with context:
        for label, items in groups.items():
            restricted = _restrict_test_to_items(dataset.test_matrix, items)
            if restricted.nnz == 0:
                out[label] = {}
                continue
            out[label] = evaluate_ranking(scorer, dataset, ks=ks,
                                          metrics=metrics,
                                          test_matrix=restricted)
    return out
