"""``repro.eval`` — metrics, chunked ranking protocol and analysis probes."""

from .metrics import (recall_at_k, ndcg_at_k, precision_at_k, hit_rate_at_k,
                      mrr, mrr_at_k, average_precision, compute_user_metrics,
                      aggregate_metrics, block_hits, compute_block_metrics,
                      METRIC_REGISTRY)
from .protocol import (rank_items, rank_items_block, scorer_from,
                       evaluate_ranking, evaluate_scores, evaluate_model,
                       top_k_lists, auto_chunk_size, DEFAULT_CHUNK_SIZE,
                       DEFAULT_CHUNK_BUDGET_BYTES)
from .mad import mean_average_distance, neighbour_smoothness
from .uniformity import uniformity, alignment, radial_spread, pca_projection
from .groups import evaluate_user_groups, evaluate_item_groups, PROBE_REGISTRY
from .robustness import noise_robustness_curve, noise_robustness_probe
from .beyond_accuracy import (item_coverage, gini_index, novelty,
                              intra_list_distance, exposure_counts,
                              beyond_accuracy_report)

__all__ = [
    "recall_at_k", "ndcg_at_k", "precision_at_k", "hit_rate_at_k", "mrr",
    "mrr_at_k", "average_precision", "compute_user_metrics",
    "aggregate_metrics", "block_hits", "compute_block_metrics",
    "METRIC_REGISTRY",
    "rank_items", "rank_items_block", "scorer_from",
    "evaluate_ranking", "evaluate_scores", "evaluate_model",
    "top_k_lists", "auto_chunk_size", "DEFAULT_CHUNK_SIZE",
    "DEFAULT_CHUNK_BUDGET_BYTES",
    "mean_average_distance", "neighbour_smoothness",
    "uniformity", "alignment", "radial_spread", "pca_projection",
    "evaluate_user_groups", "evaluate_item_groups", "PROBE_REGISTRY",
    "noise_robustness_curve", "noise_robustness_probe",
    "item_coverage", "gini_index", "novelty", "intra_list_distance",
    "exposure_counts", "beyond_accuracy_report",
]
