"""Embedding-distribution statistics (quantifying the paper's Figure 7).

The paper visualizes user embeddings with UMAP and argues GraphAug "preserves
better global uniformity".  We report that claim numerically:

* :func:`uniformity` — Wang & Isola's log-mean-exp of pairwise Gaussian
  potentials on the unit sphere (more negative = more uniform);
* :func:`alignment` — mean squared distance between paired views;
* :func:`radial_spread` / :func:`pca_projection` — cheap 2-D summaries a
  notebook can plot instead of UMAP.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _unit_rows(embeddings: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    emb = np.asarray(embeddings, dtype=np.float64)
    norms = np.linalg.norm(emb, axis=1, keepdims=True)
    return emb / np.maximum(norms, eps)


def uniformity(embeddings: np.ndarray, t: float = 2.0) -> float:
    """``log E exp(-t ||z_i - z_j||^2)`` over distinct pairs on the sphere."""
    unit = _unit_rows(embeddings)
    sq_dists = np.maximum(2.0 - 2.0 * (unit @ unit.T), 0.0)
    n = unit.shape[0]
    mask = ~np.eye(n, dtype=bool)
    vals = np.exp(-t * sq_dists[mask])
    return float(np.log(np.mean(vals)))


def alignment(view_a: np.ndarray, view_b: np.ndarray) -> float:
    """Mean squared distance between normalized positive pairs."""
    ua, ub = _unit_rows(view_a), _unit_rows(view_b)
    return float(np.mean(np.sum((ua - ub) ** 2, axis=1)))


def radial_spread(embeddings: np.ndarray) -> float:
    """Std-dev of embedding norms — collapse shows up as tiny spread."""
    emb = np.asarray(embeddings, dtype=np.float64)
    return float(np.std(np.linalg.norm(emb, axis=1)))


def pca_projection(embeddings: np.ndarray,
                   num_components: int = 2) -> Tuple[np.ndarray, np.ndarray]:
    """Project embeddings onto their top principal components.

    Returns ``(projected, explained_variance_ratio)``.  This is the repo's
    UMAP substitute for dumping Figure-7 style scatter data.
    """
    emb = np.asarray(embeddings, dtype=np.float64)
    centred = emb - emb.mean(axis=0, keepdims=True)
    # SVD of the centred matrix gives principal axes.
    _, singular, rows_vt = np.linalg.svd(centred, full_matrices=False)
    components = rows_vt[:num_components]
    projected = centred @ components.T
    variance = singular ** 2
    ratio = variance[:num_components] / variance.sum()
    return projected, ratio
