"""Mean Average Distance (MAD) — the paper's over-smoothing probe.

Tables III and VII report MAD over "all node embedding pairs": the mean
cosine *distance* ``1 - cos(h_i, h_j)`` across pairs.  Higher MAD = less
smoothed (more distinct) embeddings.  For large node counts an exact
all-pairs computation is still cheap at this reproduction's scale, but a
sampled variant is provided for completeness.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def mean_average_distance(embeddings: np.ndarray,
                          sample_pairs: Optional[int] = None,
                          rng: Optional[np.random.Generator] = None,
                          eps: float = 1e-12) -> float:
    """Mean pairwise cosine distance over all (or sampled) node pairs."""
    emb = np.asarray(embeddings, dtype=np.float64)
    if emb.ndim != 2 or emb.shape[0] < 2:
        raise ValueError("need a (n >= 2, d) embedding matrix")
    norms = np.linalg.norm(emb, axis=1, keepdims=True)
    unit = emb / np.maximum(norms, eps)
    n = unit.shape[0]
    if sample_pairs is not None:
        rng = rng or np.random.default_rng(0)
        left = rng.integers(0, n, size=sample_pairs)
        right = rng.integers(0, n, size=sample_pairs)
        keep = left != right
        sims = np.einsum("ij,ij->i", unit[left[keep]], unit[right[keep]])
        return float(np.mean(1.0 - sims))
    sims = unit @ unit.T
    off_diag_sum = sims.sum() - np.trace(sims)
    num_pairs = n * (n - 1)
    return float(1.0 - off_diag_sum / num_pairs)


def neighbour_smoothness(embeddings: np.ndarray, rows: np.ndarray,
                         cols: np.ndarray, eps: float = 1e-12) -> float:
    """Mean cosine similarity across connected pairs (a companion probe:
    over-smoothed encoders drive this towards 1 together with low MAD)."""
    emb = np.asarray(embeddings, dtype=np.float64)
    norms = np.linalg.norm(emb, axis=1, keepdims=True)
    unit = emb / np.maximum(norms, eps)
    sims = np.einsum("ij,ij->i", unit[np.asarray(rows)],
                     unit[np.asarray(cols)])
    return float(np.mean(sims))
