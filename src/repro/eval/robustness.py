"""Noise-robustness protocol — paper Figure 3.

Train the same model family on increasingly corrupted copies of a dataset
(fake edges injected at ratios {0.05, ..., 0.25}) and report the metric value
*relative* to the clean run — the paper plots "Recall Change", i.e.
``recall(noisy) / recall(clean)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from .protocol import evaluate_ranking, scorer_from
from ..data import InteractionDataset
from ..graph import inject_fake_edges
from ..utils import component_registry

PROBE_REGISTRY = component_registry("probe")


def noise_robustness_curve(
        train_fn: Callable[[InteractionDataset], object],
        dataset: InteractionDataset,
        noise_ratios: Sequence[float] = (0.0, 0.05, 0.1, 0.15, 0.2, 0.25),
        metric: str = "recall@20",
        seed: int = 0) -> Dict[float, float]:
    """Relative-performance curve under structural noise.

    Parameters
    ----------
    train_fn:
        Callable that trains a fresh model on a dataset and returns a
        score source — the trained model itself (evaluated via the
        chunked engine, no dense matrix) or a dense score matrix.
        (Keeping the model opaque lets the same protocol drive GraphAug,
        NCL and LightGCN in the Fig 3 bench.)
    metric:
        ``"metric@k"`` key to track.
    Returns
    -------
    Mapping of noise ratio to ``metric(noisy) / metric(clean)``; the entry
    for ratio 0.0 is always 1.0.
    """
    metric_name, k = metric.split("@")
    ks = (int(k),)
    rng = np.random.default_rng(seed)
    curve: Dict[float, float] = {}
    baseline = None
    for ratio in noise_ratios:
        if ratio == 0.0:
            noisy = dataset
        else:
            noisy_graph, _, _ = inject_fake_edges(dataset.train, ratio, rng)
            noisy = dataset.with_train_graph(noisy_graph)
        scorer, context = scorer_from(train_fn(noisy))
        with context:
            result = evaluate_ranking(scorer, noisy, ks=ks,
                                      metrics=(metric_name,))
        value = result[metric]
        if baseline is None:
            if ratio != 0.0:
                raise ValueError("noise_ratios must start at 0.0 so the "
                                 "relative curve has a clean baseline")
            baseline = value if value > 0 else 1e-12
        curve[ratio] = value / baseline
    return curve


@PROBE_REGISTRY.register("noise_robustness")
def noise_robustness_probe(model, dataset: InteractionDataset,
                           noise_ratios: Sequence[float] = (0.0, 0.1, 0.25),
                           metric: str = "recall@20",
                           epochs: int = 10, batch_size: int = 512,
                           learning_rate: float = 1e-3,
                           seed: int = 0) -> Dict[str, float]:
    """Spec-driven probe form of :func:`noise_robustness_curve`.

    Retrains the *trained* model's family (same registry name, config and
    construction seed) on each noisy copy — the probe registry contract
    is ``probe(model, dataset, **options)``, so the training closure is
    derived from the model instead of passed in.  Keys are stringified
    ratios (JSON-friendly for the run directory).
    """
    # deferred: repro.eval must not hard-import the model zoo
    from ..models import build_model
    from ..train import TrainConfig, fit_model

    name = getattr(model, "name", type(model).__name__)
    construction_seed = int(getattr(model, "seed", 0))

    def train_fn(noisy: InteractionDataset):
        fresh = build_model(name, noisy, model.config,
                            seed=construction_seed)
        fit_model(fresh, noisy,
                  TrainConfig(epochs=epochs, batch_size=batch_size,
                              learning_rate=learning_rate,
                              eval_every=max(1, epochs)),
                  seed=seed)
        return fresh

    curve = noise_robustness_curve(train_fn, dataset,
                                   noise_ratios=tuple(noise_ratios),
                                   metric=metric, seed=seed)
    return {f"{ratio:g}": float(value) for ratio, value in curve.items()}
