"""Noise-robustness protocol — paper Figure 3.

Train the same model family on increasingly corrupted copies of a dataset
(fake edges injected at ratios {0.05, ..., 0.25}) and report the metric value
*relative* to the clean run — the paper plots "Recall Change", i.e.
``recall(noisy) / recall(clean)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from .protocol import evaluate_ranking, scorer_from
from ..data import InteractionDataset
from ..graph import inject_fake_edges


def noise_robustness_curve(
        train_fn: Callable[[InteractionDataset], object],
        dataset: InteractionDataset,
        noise_ratios: Sequence[float] = (0.0, 0.05, 0.1, 0.15, 0.2, 0.25),
        metric: str = "recall@20",
        seed: int = 0) -> Dict[float, float]:
    """Relative-performance curve under structural noise.

    Parameters
    ----------
    train_fn:
        Callable that trains a fresh model on a dataset and returns a
        score source — the trained model itself (evaluated via the
        chunked engine, no dense matrix) or a dense score matrix.
        (Keeping the model opaque lets the same protocol drive GraphAug,
        NCL and LightGCN in the Fig 3 bench.)
    metric:
        ``"metric@k"`` key to track.
    Returns
    -------
    Mapping of noise ratio to ``metric(noisy) / metric(clean)``; the entry
    for ratio 0.0 is always 1.0.
    """
    metric_name, k = metric.split("@")
    ks = (int(k),)
    rng = np.random.default_rng(seed)
    curve: Dict[float, float] = {}
    baseline = None
    for ratio in noise_ratios:
        if ratio == 0.0:
            noisy = dataset
        else:
            noisy_graph, _, _ = inject_fake_edges(dataset.train, ratio, rng)
            noisy = dataset.with_train_graph(noisy_graph)
        scorer, context = scorer_from(train_fn(noisy))
        with context:
            result = evaluate_ranking(scorer, noisy, ks=ks,
                                      metrics=(metric_name,))
        value = result[metric]
        if baseline is None:
            if ratio != 0.0:
                raise ValueError("noise_ratios must start at 0.0 so the "
                                 "relative curve has a clean baseline")
            baseline = value if value > 0 else 1e-12
        curve[ratio] = value / baseline
    return curve
