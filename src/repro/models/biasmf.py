"""BiasMF — matrix factorization with user/item bias terms (Koren et al.).

The paper's conventional-CF baseline (Sec IV-A.2(i)): preference is the dot
product of latent factors plus additive user and item biases, trained with
BPR on implicit feedback.
"""

from __future__ import annotations

import numpy as np

from .base import Recommender
from .registry import MODEL_REGISTRY
from ..autograd import Parameter, Tensor, no_grad, functional as F


@MODEL_REGISTRY.register("biasmf")
class BiasMF(Recommender):
    """``score(u, v) = p_u . q_v + b_u + b_v + mu``."""

    name = "biasmf"

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        self.user_bias = Parameter(np.zeros(self.num_users))
        self.item_bias = Parameter(np.zeros(self.num_items))
        self.global_bias = Parameter(np.zeros(1))

    def loss(self, users: np.ndarray, pos: np.ndarray,
             neg: np.ndarray) -> Tensor:
        u = self.user_emb.all().take_rows(users)
        vp = self.item_emb.all().take_rows(pos)
        vn = self.item_emb.all().take_rows(neg)
        pos_scores = ((u * vp).sum(axis=1)
                      + self.item_bias.take_rows(pos))
        neg_scores = ((u * vn).sum(axis=1)
                      + self.item_bias.take_rows(neg))
        # user & global biases cancel inside BPR but are kept for scoring
        return (F.bpr_loss(pos_scores, neg_scores)
                + self.embedding_reg(users, pos, neg))

    def score_users(self, user_ids=None) -> np.ndarray:
        with no_grad():
            user_vecs = self.user_emb.weight.data
            user_bias = self.user_bias.data
            if user_ids is not None:
                user_ids = np.asarray(user_ids, dtype=np.int64)
                user_vecs = user_vecs[user_ids]
                user_bias = user_bias[user_ids]
            scores = user_vecs @ self.item_emb.weight.data.T
            scores = scores + user_bias[:, None]
            scores = scores + self.item_bias.data[None, :]
            return scores + self.global_bias.data[0]
