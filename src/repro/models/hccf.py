"""HCCF (Xia et al., SIGIR'22) — hypergraph contrastive collaborative filtering.

Contrasts *local* embeddings (bipartite LightGCN propagation) against
*global* embeddings produced by a learnable low-rank hypergraph:
``Z_global = H (H^T Z)`` with hyperedge assignment ``H = E W``.  The
hyperedge side acts as a global information aggregator — the paper's
"hyperedge-based embedding fusion" characterization.
"""

from __future__ import annotations

import numpy as np

from .base import GraphRecommender, light_gcn_propagate
from .registry import MODEL_REGISTRY
from ..autograd import Parameter, Tensor, functional as F, init


@MODEL_REGISTRY.register("hccf")
class HCCF(GraphRecommender):
    """Local bipartite vs global learnable-hypergraph contrast."""
    name = "hccf"

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        dim = self.config.embedding_dim
        k = self.config.num_hyperedges
        self.hyper_user = Parameter(init.xavier_uniform((dim, k),
                                                        self.init_rng))
        self.hyper_item = Parameter(init.xavier_uniform((dim, k),
                                                        self.init_rng))

    def propagate(self):
        ego = self.ego_embeddings()
        final = light_gcn_propagate(self.norm_adj, ego,
                                    self.config.num_layers)
        return self.split_nodes(final)

    def _global_embeddings(self, user_local: Tensor, item_local: Tensor):
        """Two-step hypergraph message passing: node -> hyperedge -> node."""
        user_assign = user_local @ self.hyper_user        # (I, k)
        item_assign = item_local @ self.hyper_item        # (J, k)
        user_global = user_assign @ (user_assign.T @ user_local) \
            * (1.0 / self.num_users)
        item_global = item_assign @ (item_assign.T @ item_local) \
            * (1.0 / self.num_items)
        return user_global, item_global

    def loss(self, users, pos, neg):
        user_final, item_final = self.propagate()
        main = self.bpr_loss(user_final, item_final, users, pos, neg)

        user_global, item_global = self._global_embeddings(user_final,
                                                           item_final)
        batch_users = np.unique(users)
        batch_items = np.unique(np.concatenate([pos, neg]))
        ssl = (F.decomposed_infonce_loss(
                              user_final.take_rows(batch_users),
                              user_global.take_rows(batch_users),
                              self.config.temperature,
                              self.config.negative_weight)
               + F.decomposed_infonce_loss(
                                item_final.take_rows(batch_items),
                                item_global.take_rows(batch_items),
                                self.config.temperature,
                                self.config.negative_weight))
        return (main + self.config.ssl_weight * ssl
                + self.embedding_reg(users, pos, neg))
