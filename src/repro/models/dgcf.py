"""DGCF (Wang et al., SIGIR'20) — disentangled graph collaborative filtering.

Learns intent-aware interaction subgraphs by iteratively re-weighting each
edge across ``K`` intents and propagating per-intent channels; adds an
independence regularizer (distance-correlation surrogate) so the intents do
not collapse into one factor.
"""

from __future__ import annotations

import numpy as np

from .base import GraphRecommender
from .disentangled import (factor_routed_propagate, merge_channels,
                           split_channels)
from .registry import MODEL_REGISTRY
from ..autograd import Tensor, functional as F


@MODEL_REGISTRY.register("dgcf")
class DGCF(GraphRecommender):
    """Intent-disentangled propagation with an independence regularizer."""
    name = "dgcf"

    #: weight of the factor-independence regularizer
    independence_weight = 0.01

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        coo = self.adjacency.tocoo()
        self._rows = coo.row.astype(np.int64)
        self._cols = coo.col.astype(np.int64)

    def _propagate_channels(self):
        ego = self.ego_embeddings()
        channels = split_channels(ego, self.config.num_factors)
        return factor_routed_propagate(
            channels, self._rows, self._cols,
            self.num_users + self.num_items,
            num_iterations=self.config.num_layers)

    def propagate(self):
        final = merge_channels(self._propagate_channels())
        return self.split_nodes(final)

    def _independence(self, channels) -> Tensor:
        """Mean squared cosine between factor-mean directions (0 = independent)."""
        means = [F.l2_normalize(ch.mean(axis=0).reshape(1, -1))
                 for ch in channels]
        total = None
        count = 0
        for i in range(len(means)):
            for j in range(i + 1, len(means)):
                sim = (means[i] * means[j]).sum()
                term = sim * sim
                total = term if total is None else total + term
                count += 1
        return total * (1.0 / max(1, count))

    def loss(self, users, pos, neg):
        channels = self._propagate_channels()
        final = merge_channels(channels)
        user_final, item_final = self.split_nodes(final)
        return (self.bpr_loss(user_final, item_final, users, pos, neg)
                + self.independence_weight * self._independence(channels)
                + self.embedding_reg(users, pos, neg))
