"""The model registry: string name -> model class.

Benchmarks and examples build models by name so the Table II harness can
sweep the whole zoo with one loop.
"""

from __future__ import annotations

from typing import Optional

from ..data import InteractionDataset
from ..train.config import ModelConfig
from ..utils import Registry

MODEL_REGISTRY = Registry("model")


def build_model(name: str, dataset: InteractionDataset,
                config: Optional[ModelConfig] = None, seed: int = 0):
    """Instantiate a registered recommender by name."""
    cls = MODEL_REGISTRY.get(name)
    return cls(dataset, config=config, seed=seed)


def available_models() -> list:
    """Sorted list of every registered model name."""
    return MODEL_REGISTRY.names()
