"""The model registry: string name -> model class.

Benchmarks and examples build models by name so the Table II harness can
sweep the whole zoo with one loop.  The registry is the ``"model"`` kind
of the process-wide component table (:func:`repro.utils.
component_registry`), which is how the declarative experiment facade
(:mod:`repro.api`) resolves ``ExperimentSpec.model``.
"""

from __future__ import annotations

from typing import Optional

from ..data import InteractionDataset
from ..train.config import ModelConfig
from ..utils import component_registry

MODEL_REGISTRY = component_registry("model")


def build_model(name: str, dataset: InteractionDataset,
                config: Optional[ModelConfig] = None, seed: int = 0):
    """Instantiate a registered recommender by name."""
    cls = MODEL_REGISTRY.get(name)
    return cls(dataset, config=config, seed=seed)


def available_models() -> list:
    """Sorted list of every registered model name."""
    return MODEL_REGISTRY.names()
