"""NGCF (Wang et al., SIGIR'19) — neural graph collaborative filtering.

Per layer: ``h' = LeakyReLU(W1 (A h) + W2 (A h ⊙ h))`` — message passing
with a bilinear interaction term — and the final representation is the
concatenation of every layer's output.
"""

from __future__ import annotations

from .base import GraphRecommender
from .registry import MODEL_REGISTRY
from ..autograd import Linear, Tensor, concat, spmm, functional as F


@MODEL_REGISTRY.register("ngcf")
class NGCF(GraphRecommender):
    """Message passing with bilinear interaction terms, layers concatenated."""
    name = "ngcf"

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        dim = self.config.embedding_dim
        self.w1_layers, self.w2_layers = [], []
        for i in range(self.config.num_layers):
            w1 = Linear(dim, dim, self.init_rng)
            w2 = Linear(dim, dim, self.init_rng)
            setattr(self, f"w1_{i}", w1)
            setattr(self, f"w2_{i}", w2)
            self.w1_layers.append(w1)
            self.w2_layers.append(w2)

    def propagate(self):
        current = self.ego_embeddings()
        outputs = [current]
        slope = self.config.leaky_slope
        for w1, w2 in zip(self.w1_layers, self.w2_layers):
            side = spmm(self.norm_adj, current)
            message = w1(side) + w2(side * current)
            current = F.l2_normalize(message.leaky_relu(slope))
            outputs.append(current)
        final = concat(outputs, axis=1)
        return self.split_nodes(final)

    def amortized_ego_columns(self, final_dim: int) -> slice:
        # the layer concat starts with the raw ego block — the only
        # identity-rooted columns, so the only ones the stale schedule
        # may scatter gradients through (layer weights stay exact-only)
        return slice(0, self.config.embedding_dim)
