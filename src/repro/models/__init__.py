"""``repro.models`` — the baseline zoo (17 models + registry).

Importing this package registers every baseline under its paper name:
``biasmf``, ``ncf``, ``autorec``, ``gcmc``, ``pinsage``, ``ngcf``,
``lightgcn``, ``gccf``, ``disengcn``, ``dgcf``, ``mhcn``, ``stgcn``,
``slrec``, ``sgl``, ``dgcl``, ``hccf``, ``cgi``, ``ncl`` — plus
``graphaug`` itself (registered by :mod:`repro.core`) and ``simgcl`` as an
extension control (cited by the paper as [12] but not in its Table II).
"""

from .base import Recommender, GraphRecommender, light_gcn_propagate
from .registry import MODEL_REGISTRY, build_model, available_models

# importing the modules registers the models
from . import biasmf, ncf, autorec                       # classical CF
from . import gcmc, pinsage, ngcf, lightgcn, gccf        # GNN recommenders
from . import disengcn, dgcf                             # disentangled
from . import mhcn, stgcn                                # generative SSL
from . import slrec, sgl, dgcl, hccf, cgi, ncl           # contrastive SSL
from . import simgcl                                     # extension model
from .. import core as _core                             # registers graphaug

__all__ = [
    "Recommender", "GraphRecommender", "light_gcn_propagate",
    "MODEL_REGISTRY", "build_model", "available_models",
]
