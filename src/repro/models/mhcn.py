"""MHCN (Yu et al., WWW'21) — multi-channel hypergraph network with DGI SSL.

The original builds motif-induced hypergraph channels from a *social* graph.
The paper's datasets (and ours) have no social edges, so — as in the authors'
own social-free ablation — the channels are built from interaction structure:
a user-side hypergraph from co-interaction (``A A^T``) and an item-side one
from co-engagement (``A^T A``), fused with the plain bipartite propagation
by learned channel attention.  The generative-SSL objective follows DGI:
maximize agreement between node embeddings and the (real) global summary
while pushing away a row-shuffled corruption.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .base import GraphRecommender, light_gcn_propagate
from .registry import MODEL_REGISTRY
from ..autograd import (Linear, Parameter, Tensor, concat, spmm,
                        functional as F)
from ..graph import symmetric_normalize


def _co_occurrence_channel(matrix: sp.csr_matrix,
                           num_users: int, num_items: int,
                           user_side: bool) -> sp.csr_matrix:
    """Block-diagonal normalized co-occurrence operator on the unified graph."""
    if user_side:
        co = (matrix @ matrix.T).tocsr()
        co.setdiag(0)
        co.eliminate_zeros()
        block = sp.block_diag(
            [co, sp.csr_matrix((num_items, num_items))]).tocsr()
    else:
        co = (matrix.T @ matrix).tocsr()
        co.setdiag(0)
        co.eliminate_zeros()
        block = sp.block_diag(
            [sp.csr_matrix((num_users, num_users)), co]).tocsr()
    return symmetric_normalize(block, add_self_loops=True)


@MODEL_REGISTRY.register("mhcn")
class MHCN(GraphRecommender):
    """Multi-channel (co-occurrence hypergraph) encoder with DGI SSL."""
    name = "mhcn"

    #: weight of the DGI-style mutual-information auxiliary task
    ssl_weight_default = 0.05

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        matrix = dataset.train.matrix
        self.channels = [
            self.norm_adj,
            _co_occurrence_channel(matrix, self.num_users, self.num_items,
                                   user_side=True),
            _co_occurrence_channel(matrix, self.num_users, self.num_items,
                                   user_side=False),
        ]
        self.channel_attention = Parameter(np.zeros(len(self.channels)))
        self.discriminator = Linear(self.config.embedding_dim,
                                    self.config.embedding_dim, self.init_rng)

    def _channel_embeddings(self):
        ego = self.ego_embeddings()
        outs = [light_gcn_propagate(channel, ego, self.config.num_layers)
                for channel in self.channels]
        return outs

    def propagate(self):
        outs = self._channel_embeddings()
        att = F.softmax(self.channel_attention.reshape(1, -1)).reshape(-1)
        fused = None
        for idx, out in enumerate(outs):
            weighted = out * att[np.array([idx])]
            fused = weighted if fused is None else fused + weighted
        return self.split_nodes(fused)

    def _dgi_loss(self, embeddings: Tensor) -> Tensor:
        """Deep-Graph-Infomax binary objective against shuffled negatives."""
        summary = embeddings.mean(axis=0).reshape(1, -1).sigmoid()
        scores_real = (self.discriminator(embeddings)
                       * summary).sum(axis=1)
        perm = self.aug_rng.permutation(embeddings.shape[0])
        corrupted = embeddings.take_rows(perm)
        scores_fake = (self.discriminator(corrupted) * summary).sum(axis=1)
        real_term = -scores_real.logsigmoid().mean()
        fake_term = -(-scores_fake).logsigmoid().mean()
        return real_term + fake_term

    def loss(self, users, pos, neg):
        outs = self._channel_embeddings()
        att = F.softmax(self.channel_attention.reshape(1, -1)).reshape(-1)
        fused = None
        for idx, out in enumerate(outs):
            weighted = out * att[np.array([idx])]
            fused = weighted if fused is None else fused + weighted
        user_final, item_final = self.split_nodes(fused)
        ssl = self._dgi_loss(fused)
        return (self.bpr_loss(user_final, item_final, users, pos, neg)
                + self.ssl_weight_default * ssl
                + self.embedding_reg(users, pos, neg))
