"""CGI (Wei et al., 2022) — contrastive graph structure learning with IB.

Learns *which edges to drop* when building contrastive views instead of
dropping at random: per-edge keep logits are sampled with the Gumbel trick,
views are aligned with InfoNCE, and an information-bottleneck style penalty
pushes the views to keep less of the original graph than they need —
the closest published relative of GraphAug in the paper's Table II.
"""

from __future__ import annotations

import numpy as np

from .base import GraphRecommender, light_gcn_propagate
from .registry import MODEL_REGISTRY
from ..autograd import (Parameter, Tensor, weighted_spmm, functional as F,
                        init)
from ..graph import normalized_edge_weights


@MODEL_REGISTRY.register("cgi")
class CGI(GraphRecommender):
    """Learnable edge-drop contrastive views with an IB compression term."""
    name = "cgi"

    #: weight of the IB compression penalty on edge keep-rates
    ib_weight = 0.05

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        coo = self.adjacency.tocoo()
        self._rows = coo.row.astype(np.int64)
        self._cols = coo.col.astype(np.int64)
        # one learnable keep-logit per (directed) edge
        self.edge_logits = Parameter(
            init.normal((len(self._rows),), self.init_rng, std=0.1) + 2.0)

    def propagate(self):
        ego = self.ego_embeddings()
        final = light_gcn_propagate(self.norm_adj, ego,
                                    self.config.num_layers)
        return self.split_nodes(final)

    def _view(self):
        """One Gumbel-sampled learnable edge-drop view."""
        keep = F.gumbel_sigmoid(self.edge_logits, self.aug_rng,
                                self.config.gumbel_temperature)
        num_nodes = self.num_users + self.num_items
        norm = normalized_edge_weights(self._rows, self._cols,
                                       keep.data, num_nodes)
        scale = np.divide(norm, keep.data,
                          out=np.zeros_like(norm), where=keep.data > 1e-12)
        weights = keep * scale
        ego = self.ego_embeddings()
        current = ego
        acc = ego
        for _ in range(self.config.num_layers):
            current = weighted_spmm(self._rows, self._cols, weights,
                                    (num_nodes, num_nodes), current)
            acc = acc + current
        return acc * (1.0 / (self.config.num_layers + 1)), keep

    def loss(self, users, pos, neg):
        user_final, item_final = self.propagate()
        main = self.bpr_loss(user_final, item_final, users, pos, neg)

        view_a, keep_a = self._view()
        view_b, keep_b = self._view()
        batch_nodes = np.unique(np.concatenate(
            [users, pos + self.num_users, neg + self.num_users]))
        ssl = F.decomposed_infonce_loss(
                             view_a.take_rows(batch_nodes),
                             view_b.take_rows(batch_nodes),
                             self.config.temperature,
                             self.config.negative_weight)
        # IB: compress — keep as few edges as alignment allows
        compression = keep_a.mean() + keep_b.mean()
        return (main + self.config.ssl_weight * ssl
                + self.ib_weight * compression
                + self.embedding_reg(users, pos, neg))
