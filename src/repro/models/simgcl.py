"""SimGCL (Yu et al., SIGIR'22) — "Are graph augmentations necessary?".

Cited by the paper as [12]: instead of corrupting the *graph*, SimGCL
perturbs the *embeddings* with random uniform noise on the unit sphere and
contrasts the two noised propagations.  Included as an extension model
(not part of the paper's Table II grid) because it is the natural
no-augmentor control for GraphAug's learnable augmentation: if simple
noise views matched GraphAug, the learnable augmentor would be pointless.
"""

from __future__ import annotations

import numpy as np

from .base import GraphRecommender, light_gcn_propagate
from .registry import MODEL_REGISTRY
from ..autograd import Tensor, cast_like, spmm, functional as F


@MODEL_REGISTRY.register("simgcl")
class SimGCL(GraphRecommender):
    """LightGCN + uniform-noise embedding views (augmentation-free CL)."""
    name = "simgcl"

    #: magnitude of the uniform noise added to each layer's embeddings
    noise_eps = 0.1

    def propagate(self):
        ego = self.ego_embeddings()
        final = light_gcn_propagate(self.norm_adj, ego,
                                    self.config.num_layers)
        return self.split_nodes(final)

    def _noised_propagate(self) -> Tensor:
        """LightGCN propagation with sign-aligned uniform noise per layer."""
        current = self.ego_embeddings()
        outputs = []
        for _ in range(self.config.num_layers):
            current = spmm(self.norm_adj, current)
            noise = self.aug_rng.uniform(0, 1, size=current.shape)
            noise /= np.maximum(
                np.linalg.norm(noise, axis=1, keepdims=True), 1e-12)
            signed = cast_like(np.sign(current.data) * noise
                               * self.noise_eps, current)
            current = current + signed
            outputs.append(current)
        return sum(outputs[1:], outputs[0]) * (1.0 / len(outputs))

    def loss(self, users, pos, neg):
        user_final, item_final = self.propagate()
        main = self.bpr_loss(user_final, item_final, users, pos, neg)

        view_a = self._noised_propagate()
        view_b = self._noised_propagate()
        batch_users = np.unique(users)
        batch_items = np.unique(np.concatenate([pos, neg])) + self.num_users
        ssl = (F.decomposed_infonce_loss(
                   view_a.take_rows(batch_users),
                   view_b.take_rows(batch_users),
                   self.config.temperature, self.config.negative_weight)
               + F.decomposed_infonce_loss(
                   view_a.take_rows(batch_items),
                   view_b.take_rows(batch_items),
                   self.config.temperature, self.config.negative_weight))
        return (main + self.config.ssl_weight * ssl
                + self.embedding_reg(users, pos, neg))
