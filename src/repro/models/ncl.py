"""NCL (Lin et al., WWW'22) — neighborhood-enriched contrastive learning.

Two contrastive signals on top of a LightGCN encoder:

* **structural**: a node's layer-0 embedding is contrasted with its
  even-hop (layer-2) propagated embedding — its structural neighbourhood;
* **semantic (prototype)**: an EM step clusters node embeddings with
  k-means every few epochs; each node is contrasted against its prototype.

The paper calls out NCL's reliance on "accurate clustering results ... biased
towards high-degree nodes", which the Table V bench probes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import GraphRecommender, light_gcn_propagate
from .registry import MODEL_REGISTRY
from ..autograd import Tensor, concat, no_grad, spmm, functional as F


def kmeans(points: np.ndarray, num_clusters: int,
           rng: np.random.Generator, num_iterations: int = 10
           ) -> tuple:
    """Plain Lloyd's k-means; returns (centroids, assignment)."""
    n = points.shape[0]
    k = min(num_clusters, n)
    centroids = points[rng.choice(n, size=k, replace=False)].copy()
    assign = np.zeros(n, dtype=np.int64)
    for _ in range(num_iterations):
        dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(-1)
        new_assign = dists.argmin(axis=1)
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign
        for c in range(k):
            members = points[assign == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
    return centroids, assign


@MODEL_REGISTRY.register("ncl")
class NCL(GraphRecommender):
    """LightGCN + structural-neighbour and k-means prototype contrast."""
    name = "ncl"

    #: epochs between EM (k-means) prototype refreshes
    em_interval = 5
    #: weight of the structural neighbour contrast.  Kept small: aligning
    #: layer-0 with layer-2 embeddings is an explicit smoothing pressure
    #: that collapses ranking quality on dense miniature graphs.
    structural_weight = 0.002
    #: weight of the prototype contrast
    prototype_weight = 0.01

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        self._user_protos: Optional[np.ndarray] = None
        self._item_protos: Optional[np.ndarray] = None
        self._user_assign: Optional[np.ndarray] = None
        self._item_assign: Optional[np.ndarray] = None

    def propagate(self):
        ego = self.ego_embeddings()
        final = light_gcn_propagate(self.norm_adj, ego,
                                    self.config.num_layers)
        return self.split_nodes(final)

    def _layer_embeddings(self):
        """Per-layer propagated embeddings (layer 0 .. L)."""
        current = self.ego_embeddings()
        layers = [current]
        for _ in range(max(2, self.config.num_layers)):
            current = spmm(self.norm_adj, current)
            layers.append(current)
        return layers

    def on_epoch_start(self, epoch: int, rng: np.random.Generator) -> None:
        self.invalidate_propagation()  # resample ⇒ never train on old tables
        if epoch % self.em_interval not in (0, 1) \
                and self._user_protos is not None:
            return
        with no_grad():
            users, items = self.propagate()
        self._user_protos, self._user_assign = kmeans(
            users.data, self.config.num_clusters, self.aug_rng)
        self._item_protos, self._item_assign = kmeans(
            items.data, self.config.num_clusters, self.aug_rng)

    def loss(self, users, pos, neg):
        layers = self._layer_embeddings()
        final = sum(layers[1:], layers[0]) * (1.0 / len(layers))
        user_final, item_final = self.split_nodes(final)
        main = self.bpr_loss(user_final, item_final, users, pos, neg)

        batch_users = np.unique(users)
        batch_items = np.unique(np.concatenate([pos, neg]))
        batch_item_nodes = batch_items + self.num_users

        # structural: layer-0 vs layer-2 (even-hop neighbourhood)
        structural = (
            F.decomposed_infonce_loss(
                           layers[0].take_rows(batch_users),
                           layers[2].take_rows(batch_users),
                           self.config.temperature,
                           self.config.negative_weight)
            + F.decomposed_infonce_loss(
                             layers[0].take_rows(batch_item_nodes),
                             layers[2].take_rows(batch_item_nodes),
                             self.config.temperature,
                             self.config.negative_weight))

        # semantic: node vs its k-means prototype
        if self._user_protos is None:
            self.on_epoch_start(0, self.aug_rng)
        proto_u = Tensor(self._user_protos[self._user_assign[batch_users]])
        proto_i = Tensor(self._item_protos[self._item_assign[batch_items]])
        semantic = (
            F.decomposed_infonce_loss(
                user_final.take_rows(batch_users), proto_u,
                self.config.temperature, self.config.negative_weight)
            + F.decomposed_infonce_loss(
                item_final.take_rows(batch_items), proto_i,
                self.config.temperature, self.config.negative_weight))

        return (main + self.structural_weight * structural
                + self.prototype_weight * semantic
                + self.embedding_reg(users, pos, neg))
