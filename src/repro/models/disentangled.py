"""Shared machinery for intent-disentangled graph CF (DisenGCN, DGCF, DGCL).

Both DisenGCN's neighbourhood routing and DGCF's intent-aware graph
disentangling follow the same computational pattern at heart:

1. split the embedding into ``K`` factor channels;
2. compute per-edge, per-factor affinities between endpoint channel
   embeddings;
3. softmax the affinities *across factors* so each edge distributes its
   message over intents;
4. propagate each channel over its re-weighted adjacency.

:func:`factor_routed_propagate` implements steps 2-4 with gradients flowing
through the channel embeddings (the routing weights themselves are treated
as constants per iteration, the standard EM-style approximation both papers
use).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..autograd import Tensor, concat, weighted_spmm, functional as F
from ..graph import normalized_edge_weights


def split_channels(embeddings: Tensor, num_factors: int) -> List[Tensor]:
    """Split (n, d) into ``num_factors`` equal (n, d/K) channel tensors."""
    dim = embeddings.shape[1]
    if dim % num_factors != 0:
        raise ValueError(f"embedding dim {dim} not divisible by "
                         f"{num_factors} factors")
    width = dim // num_factors
    channels = []
    for k in range(num_factors):
        idx = np.arange(k * width, (k + 1) * width)
        channels.append(embeddings[:, idx])
    return channels


def factor_routed_propagate(channels: List[Tensor], rows: np.ndarray,
                            cols: np.ndarray, num_nodes: int,
                            num_iterations: int = 2) -> List[Tensor]:
    """Neighbourhood routing over a symmetric COO edge list.

    ``rows``/``cols`` must already contain both edge directions (a symmetric
    pattern).  Returns the propagated channel embeddings.
    """
    routed = channels
    for _ in range(num_iterations):
        # factor affinity per edge (constants for this iteration)
        affinities = np.stack([
            np.einsum("ed,ed->e", ch.data[rows], ch.data[cols])
            for ch in routed], axis=1)
        affinities -= affinities.max(axis=1, keepdims=True)
        weights = np.exp(affinities)
        weights /= weights.sum(axis=1, keepdims=True)

        new_channels = []
        for k, channel in enumerate(channels):
            edge_w = normalized_edge_weights(rows, cols, weights[:, k],
                                             num_nodes)
            propagated = weighted_spmm(rows, cols, Tensor(edge_w),
                                       (num_nodes, num_nodes), channel)
            new_channels.append(F.l2_normalize(channel + propagated))
        routed = new_channels
    return routed


def merge_channels(channels: List[Tensor]) -> Tensor:
    """Concatenate factor channels back into one (n, d) tensor."""
    return concat(channels, axis=1)
