"""DGCL (Li et al., NeurIPS'21) — disentangled contrastive learning on graphs.

Factor channels are propagated over two stochastically corrupted views; each
factor is aligned *factor-wise* across the views with InfoNCE (the
"factor-wise discriminative objective").  DGCL's larger parameter footprint
(per-factor projection heads) is what the paper blames for its slow
convergence in Fig 4 — the projections are kept here for that reason.
"""

from __future__ import annotations

import numpy as np

from .base import GraphRecommender
from .disentangled import merge_channels, split_channels
from .registry import MODEL_REGISTRY
from ..autograd import Linear, spmm, functional as F
from ..graph import edge_dropout, symmetric_normalize


@MODEL_REGISTRY.register("dgcl")
class DGCL(GraphRecommender):
    """Factor-wise contrast between corrupted views (disentangled CL)."""
    name = "dgcl"

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        dim = self.config.embedding_dim
        k = self.config.num_factors
        width = dim // k
        self.factor_heads = []
        for i in range(k):
            head = Linear(width, width, self.init_rng)
            setattr(self, f"factor_head_{i}", head)
            self.factor_heads.append(head)
        self._view_adjs = None
        self.on_epoch_start(0, self.aug_rng)

    def on_epoch_start(self, epoch: int, rng: np.random.Generator) -> None:
        self.invalidate_propagation()  # stale tables predate the new views
        views = []
        for _ in range(2):
            dropped = edge_dropout(self.dataset.train, self.config.dropout,
                                   self.aug_rng)
            views.append(symmetric_normalize(dropped.bipartite_adjacency(),
                                             add_self_loops=False))
        self._view_adjs = views

    def _propagate_factors(self, adj):
        ego = self.ego_embeddings()
        channels = split_channels(ego, self.config.num_factors)
        outs = []
        for channel in channels:
            current = channel
            acc = channel
            for _ in range(self.config.num_layers):
                current = spmm(adj, current)
                acc = acc + current
            outs.append(acc * (1.0 / (self.config.num_layers + 1)))
        return outs

    def propagate(self):
        final = merge_channels(self._propagate_factors(self.norm_adj))
        return self.split_nodes(final)

    def loss(self, users, pos, neg):
        final = merge_channels(self._propagate_factors(self.norm_adj))
        user_final, item_final = self.split_nodes(final)
        main = self.bpr_loss(user_final, item_final, users, pos, neg)

        factors_a = self._propagate_factors(self._view_adjs[0])
        factors_b = self._propagate_factors(self._view_adjs[1])
        batch_nodes = np.unique(np.concatenate(
            [users, pos + self.num_users, neg + self.num_users]))
        ssl = None
        for head, fa, fb in zip(self.factor_heads, factors_a, factors_b):
            term = F.decomposed_infonce_loss(
                                  head(fa.take_rows(batch_nodes)),
                                  head(fb.take_rows(batch_nodes)),
                                  self.config.temperature,
                                  self.config.negative_weight)
            ssl = term if ssl is None else ssl + term
        ssl = ssl * (1.0 / len(self.factor_heads))
        return (main + self.config.ssl_weight * ssl
                + self.embedding_reg(users, pos, neg))
