"""STGCN / STAR-GCN (Zhang et al., IJCAI'19) — stacked & reconstructed GCN.

Stacks graph-convolution blocks and adds a generative self-supervision task:
an autoencoder reconstructs (masked) input embeddings from the propagated
representations, so the encoder must keep enough information to rebuild the
raw preference signal.
"""

from __future__ import annotations

import numpy as np

from .base import GraphRecommender, light_gcn_propagate
from .registry import MODEL_REGISTRY
from ..autograd import Linear, Tensor, cast_like, functional as F


@MODEL_REGISTRY.register("stgcn")
class STGCN(GraphRecommender):
    """Stacked GCN with a masked embedding-reconstruction pretext task."""
    name = "stgcn"

    #: weight of the embedding-reconstruction pretext task
    recon_weight = 0.1
    #: fraction of nodes whose input embedding is masked before encoding
    mask_rate = 0.15

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        dim = self.config.embedding_dim
        self.encoder = Linear(dim, dim // 2, self.init_rng)
        self.decoder = Linear(dim // 2, dim, self.init_rng)

    def propagate(self):
        ego = self.ego_embeddings()
        final = light_gcn_propagate(self.norm_adj, ego,
                                    self.config.num_layers)
        return self.split_nodes(final)

    def loss(self, users, pos, neg):
        ego = self.ego_embeddings()
        num_nodes = ego.shape[0]
        mask = (self.aug_rng.random(num_nodes) >= self.mask_rate)
        masked_ego = ego * cast_like(mask[:, None], ego)
        final = light_gcn_propagate(self.norm_adj, masked_ego,
                                    self.config.num_layers)
        user_final, item_final = self.split_nodes(final)
        # reconstruct the *unmasked* input table from propagated embeddings
        recon = self.decoder(self.encoder(final).relu())
        recon_loss = F.mse_loss(recon, ego.detach())
        return (self.bpr_loss(user_final, item_final, users, pos, neg)
                + self.recon_weight * recon_loss
                + self.embedding_reg(users, pos, neg))
