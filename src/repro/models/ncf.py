"""NCF — Neural Collaborative Filtering (He et al., WWW'17).

NeuMF-style fusion of a GMF branch (elementwise product of embeddings) and
an MLP branch over concatenated embeddings, with a final linear scorer.
Trained pairwise (BPR) like every model in this reproduction.
"""

from __future__ import annotations

import numpy as np

from .base import Recommender
from .registry import MODEL_REGISTRY
from ..autograd import (Embedding, Linear, MLP, Tensor, concat, no_grad,
                        functional as F)


@MODEL_REGISTRY.register("ncf")
class NCF(Recommender):
    """NeuMF = GMF ⊕ MLP with separate embedding tables per branch."""

    name = "ncf"

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        dim = self.config.embedding_dim
        hidden = self.config.hidden_dim
        # MLP branch gets its own tables, as in the original paper.
        self.mlp_user_emb = Embedding(self.num_users, dim, self.init_rng)
        self.mlp_item_emb = Embedding(self.num_items, dim, self.init_rng)
        self.mlp = MLP([2 * dim, hidden, dim], self.init_rng,
                       activation=Tensor.relu)
        self.scorer = Linear(2 * dim, 1, self.init_rng)

    def _pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        gmf = (self.user_emb(users) * self.item_emb(items))
        mlp_in = concat([self.mlp_user_emb(users),
                         self.mlp_item_emb(items)], axis=1)
        mlp_out = self.mlp(mlp_in)
        fused = concat([gmf, mlp_out], axis=1)
        return self.scorer(fused).reshape(-1)

    def loss(self, users: np.ndarray, pos: np.ndarray,
             neg: np.ndarray) -> Tensor:
        pos_scores = self._pair_scores(users, pos)
        neg_scores = self._pair_scores(users, neg)
        return (F.bpr_loss(pos_scores, neg_scores)
                + self.embedding_reg(users, pos, neg))

    #: upper bound on (user, item) pairs alive per scoring slice; bounds
    #: the MLP's peak hidden-activation memory during chunked inference
    score_pair_budget = 1 << 14

    def score_users(self, user_ids=None) -> np.ndarray:
        """Score a user block with whole-chunk batched pair construction.

        The MLP scores (user, item) *pairs*, not embedding dots, so a
        block is the cross product ``user_ids x all items``.  Instead of
        materializing every pair's concatenated input (the former
        one-user-per-MLP-call loop did this implicitly, row by row), the
        first MLP layer is factorized::

            relu([u, i] @ W0 + b0) == relu(u @ W0_user + i @ W0_item + b0)

        so the user and item projections are each computed **once** per
        chunk and combined by a broadcast add; later layers run on the
        flattened pair activations.  The GMF branch never builds pairs at
        all: fusing it with the final linear scorer reduces it to one
        ``(users * w_gmf) @ item_emb.T`` GEMM.  Slices of
        ``score_pair_budget`` pairs bound peak activation memory.

        The math is identical to ``_pair_scores`` (which training still
        uses); only the evaluation order differs, so scores agree to
        float rounding.
        """
        if user_ids is None:
            user_ids = np.arange(self.num_users, dtype=np.int64)
        else:
            user_ids = np.asarray(user_ids, dtype=np.int64)
        num_items = self.num_items
        with no_grad():
            dim = self.item_emb.weight.data.shape[1]
            fuse_w = self.scorer.weight.data          # (2*dim, 1)
            fuse_b = self.scorer.bias.data            # (1,)
            w_gmf, w_mlp = fuse_w[:dim, 0], fuse_w[dim:, 0]
            linears = self.mlp._linears
            W0 = linears[0].weight.data               # (2*dim, hidden)
            b0 = linears[0].bias.data
            mlp_dim = self.mlp_user_emb.weight.data.shape[1]
            # per-chunk user / per-catalog item first-layer projections
            user_proj = self.mlp_user_emb.weight.data[user_ids] @ W0[:mlp_dim]
            item_proj = self.mlp_item_emb.weight.data @ W0[mlp_dim:]
            # GMF ⊕ scorer fused into one GEMM over the block
            gmf_scores = ((self.user_emb.weight.data[user_ids] * w_gmf)
                          @ self.item_emb.weight.data.T)
            out = np.empty((len(user_ids), num_items), dtype=gmf_scores.dtype)
            rows_per_slice = max(1, self.score_pair_budget
                                 // max(1, num_items))
            for start in range(0, len(user_ids), rows_per_slice):
                stop = min(start + rows_per_slice, len(user_ids))
                # (rows, num_items, hidden) broadcast of the factorized
                # first layer; relu matches the MLP's fixed activation
                x = np.maximum(user_proj[start:stop, None, :]
                               + item_proj[None, :, :] + b0, 0.0)
                x = x.reshape(-1, x.shape[-1])
                for layer in linears[1:-1]:
                    x = x @ layer.weight.data + layer.bias.data
                    np.maximum(x, 0.0, out=x)
                # the last linear feeds straight into the w_mlp dot (no
                # activation in between), so fold them into one GEMV:
                # (x @ W + b) @ w == x @ (W @ w) + b @ w
                last = linears[-1]
                mlp_scores = (x @ (last.weight.data @ w_mlp)
                              + last.bias.data @ w_mlp)
                out[start:stop] = (gmf_scores[start:stop]
                                   + mlp_scores.reshape(stop - start,
                                                        num_items)
                                   + fuse_b[0])
            return out
