"""NCF — Neural Collaborative Filtering (He et al., WWW'17).

NeuMF-style fusion of a GMF branch (elementwise product of embeddings) and
an MLP branch over concatenated embeddings, with a final linear scorer.
Trained pairwise (BPR) like every model in this reproduction.
"""

from __future__ import annotations

import numpy as np

from .base import Recommender
from .registry import MODEL_REGISTRY
from ..autograd import (Embedding, Linear, MLP, Tensor, concat, no_grad,
                        functional as F)


@MODEL_REGISTRY.register("ncf")
class NCF(Recommender):
    """NeuMF = GMF ⊕ MLP with separate embedding tables per branch."""

    name = "ncf"

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        dim = self.config.embedding_dim
        hidden = self.config.hidden_dim
        # MLP branch gets its own tables, as in the original paper.
        self.mlp_user_emb = Embedding(self.num_users, dim, self.init_rng)
        self.mlp_item_emb = Embedding(self.num_items, dim, self.init_rng)
        self.mlp = MLP([2 * dim, hidden, dim], self.init_rng,
                       activation=Tensor.relu)
        self.scorer = Linear(2 * dim, 1, self.init_rng)

    def _pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        gmf = (self.user_emb(users) * self.item_emb(items))
        mlp_in = concat([self.mlp_user_emb(users),
                         self.mlp_item_emb(items)], axis=1)
        mlp_out = self.mlp(mlp_in)
        fused = concat([gmf, mlp_out], axis=1)
        return self.scorer(fused).reshape(-1)

    def loss(self, users: np.ndarray, pos: np.ndarray,
             neg: np.ndarray) -> Tensor:
        pos_scores = self._pair_scores(users, pos)
        neg_scores = self._pair_scores(users, neg)
        return (F.bpr_loss(pos_scores, neg_scores)
                + self.embedding_reg(users, pos, neg))

    def score_users(self, user_ids=None) -> np.ndarray:
        """Score a user block row-by-row (the MLP scores pairs, not dots)."""
        if user_ids is None:
            user_ids = np.arange(self.num_users, dtype=np.int64)
        else:
            user_ids = np.asarray(user_ids, dtype=np.int64)
        with no_grad():
            out = np.empty((len(user_ids), self.num_items))
            all_items = np.arange(self.num_items)
            for row, user in enumerate(user_ids):
                users = np.full(self.num_items, user, dtype=np.int64)
                out[row] = self._pair_scores(users, all_items).data
            return out
