"""AutoR (AutoRec) — autoencoder-based collaborative filtering (WWW'15).

User-based AutoRec: encode each user's interaction row through a bottleneck
and reconstruct it; the reconstruction doubles as the preference score.  The
reconstruction objective is masked to observed entries plus the batch's
sampled negatives (the implicit-feedback adaptation), and a pairwise term
keeps it comparable with the BPR-trained baselines.
"""

from __future__ import annotations

import numpy as np

from .base import Recommender
from .registry import MODEL_REGISTRY
from ..autograd import Linear, Tensor, as_tensor, no_grad, functional as F


@MODEL_REGISTRY.register("autorec")
class AutoRec(Recommender):
    """``r_hat = W2 . sigmoid(W1 r + b1) + b2`` on user interaction rows."""

    name = "autorec"

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        hidden = self.config.hidden_dim
        self.encoder = Linear(self.num_items, hidden, self.init_rng)
        self.decoder = Linear(hidden, self.num_items, self.init_rng)
        # dense copy of the train matrix; fine at this reproduction's scale
        self._rows = np.asarray(dataset.train.matrix.todense())

    def _reconstruct(self, user_rows: np.ndarray) -> Tensor:
        hidden = self.encoder(as_tensor(user_rows)).sigmoid()
        return self.decoder(hidden)

    def loss(self, users: np.ndarray, pos: np.ndarray,
             neg: np.ndarray) -> Tensor:
        unique_users, inverse = np.unique(users, return_inverse=True)
        rows = self._rows[unique_users]
        recon = self._reconstruct(rows)
        # masked reconstruction: observed cells + this batch's negatives
        observed_mask = rows.copy()
        observed_mask[inverse, neg] = 1.0
        diff = (recon - rows) * observed_mask
        recon_loss = (diff * diff).sum() / max(1.0, observed_mask.sum())
        pos_scores = recon[inverse, pos]
        neg_scores = recon[inverse, neg]
        rank_loss = F.bpr_loss(pos_scores, neg_scores)
        reg = sum(((p * p).sum() for p in self.parameters()),
                  Tensor(np.zeros(())))
        return recon_loss + rank_loss + self.config.reg_weight * reg

    def score_users(self, user_ids=None) -> np.ndarray:
        rows = self._rows
        if user_ids is not None:
            rows = rows[np.asarray(user_ids, dtype=np.int64)]
        with no_grad():
            return self._reconstruct(rows).data
