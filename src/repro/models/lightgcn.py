"""LightGCN (He et al., SIGIR'20) — simplified graph convolution for CF.

Drops feature transforms and nonlinearities: final embeddings are the mean
of the per-layer propagated embeddings under symmetric normalization.  The
paper uses LightGCN both as a baseline and as the encoder convention its
mixhop encoder is normalized like.
"""

from __future__ import annotations

import numpy as np

from .base import GraphRecommender, light_gcn_propagate
from .registry import MODEL_REGISTRY
from ..autograd import Tensor


@MODEL_REGISTRY.register("lightgcn")
class LightGCN(GraphRecommender):
    """Mean-of-layers linear graph convolution (the paper's Eq 16 of [3])."""
    name = "lightgcn"

    def propagate(self):
        ego = self.ego_embeddings()
        final = light_gcn_propagate(self.norm_adj, ego,
                                    self.config.num_layers)
        return self.split_nodes(final)
