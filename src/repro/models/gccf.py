"""GCCF (Chen et al., AAAI'20) — linear residual graph convolution for CF.

"Revisiting graph based collaborative filtering": removes nonlinearities and
keeps a residual connection per propagation layer; the final embedding
concatenates every layer (linear residual aggregation).
"""

from __future__ import annotations

from .base import GraphRecommender
from .registry import MODEL_REGISTRY
from ..autograd import concat, spmm


@MODEL_REGISTRY.register("gccf")
class GCCF(GraphRecommender):
    """Linear residual graph convolution (no nonlinearities)."""
    name = "gccf"

    def __init__(self, dataset, config=None, seed: int = 0):
        # GCCF keeps self-loops in its propagation matrix
        super().__init__(dataset, config, seed, add_self_loops=True)

    def propagate(self):
        current = self.ego_embeddings()
        outputs = [current]
        for _ in range(self.config.num_layers):
            current = spmm(self.norm_adj, current)
            outputs.append(current)
        final = concat(outputs, axis=1)
        return self.split_nodes(final)
