"""SLRec (Yao et al., CIKM'21) — feature-level self-supervised CF.

Contrastive SSL via *feature* corruption (no structure changes): two random
feature-masked views of the embedding tables are aligned with InfoNCE while
the main task stays plain matrix factorization — exactly the "random
corruption on node features" characterization in the paper's baseline list.
"""

from __future__ import annotations

import numpy as np

from .base import Recommender
from .registry import MODEL_REGISTRY
from ..autograd import Tensor, cast_like, concat, functional as F
from ..graph import feature_mask


@MODEL_REGISTRY.register("slrec")
class SLRec(Recommender):
    """Matrix factorization + feature-mask contrastive SSL."""
    name = "slrec"

    def loss(self, users, pos, neg):
        user_final, item_final = self.propagate()
        main = self.bpr_loss(user_final, item_final, users, pos, neg)

        # feature-masked contrastive views over the batch's unique nodes
        batch_users = np.unique(users)
        batch_items = np.unique(np.concatenate([pos, neg]))
        dim = self.config.embedding_dim
        rate = self.config.dropout
        u_emb = user_final.take_rows(batch_users)
        i_emb = item_final.take_rows(batch_items)
        ssl = None
        for emb, count in ((u_emb, len(batch_users)),
                           (i_emb, len(batch_items))):
            mask_a = cast_like(feature_mask((count, dim), rate,
                                            self.aug_rng), emb)
            mask_b = cast_like(feature_mask((count, dim), rate,
                                            self.aug_rng), emb)
            term = F.decomposed_infonce_loss(
                emb * mask_a, emb * mask_b, self.config.temperature,
                self.config.negative_weight)
            ssl = term if ssl is None else ssl + term
        return (main + self.config.ssl_weight * ssl
                + self.embedding_reg(users, pos, neg))
