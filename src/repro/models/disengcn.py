"""DisenGCN (Ma et al., ICML'19) — disentangled graph convolution.

Neighbourhood routing dynamically assigns each neighbour to one of ``K``
latent factors; each factor channel then aggregates only its share of the
neighbourhood.  See :mod:`repro.models.disentangled` for the routing core.
"""

from __future__ import annotations

import numpy as np

from .base import GraphRecommender
from .disentangled import (factor_routed_propagate, merge_channels,
                           split_channels)
from .registry import MODEL_REGISTRY


@MODEL_REGISTRY.register("disengcn")
class DisenGCN(GraphRecommender):
    """Factor-channel encoder with neighbourhood routing."""
    name = "disengcn"

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        coo = self.adjacency.tocoo()
        self._rows = coo.row.astype(np.int64)
        self._cols = coo.col.astype(np.int64)

    def propagate(self):
        ego = self.ego_embeddings()
        channels = split_channels(ego, self.config.num_factors)
        routed = factor_routed_propagate(
            channels, self._rows, self._cols, self.num_users + self.num_items,
            num_iterations=self.config.num_layers)
        final = merge_channels(routed)
        return self.split_nodes(final)
