"""GC-MC (Berg et al., 2017) — graph convolutional matrix completion.

One graph-convolution layer with a dense transform and nonlinearity followed
by a dense (per-node) output transform, the "pioneering investigation" GNN
baseline in the paper's taxonomy.
"""

from __future__ import annotations

from .base import GraphRecommender
from .registry import MODEL_REGISTRY
from ..autograd import Linear, Tensor, spmm


@MODEL_REGISTRY.register("gcmc")
class GCMC(GraphRecommender):
    """One graph-conv layer + dense output transform."""
    name = "gcmc"

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        dim = self.config.embedding_dim
        self.conv = Linear(dim, dim, self.init_rng)
        self.dense = Linear(dim, dim, self.init_rng)

    def propagate(self):
        ego = self.ego_embeddings()
        hidden = self.conv(spmm(self.norm_adj, ego)).relu()
        final = self.dense(hidden)
        return self.split_nodes(final)
