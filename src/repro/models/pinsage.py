"""PinSage (Ying et al., KDD'18) — GraphSAGE-style CF encoder.

Web-scale PinSage samples neighbourhoods by random walks; at this
reproduction's scale we keep its architectural signature — concatenating the
node's own embedding with the aggregated neighbourhood, transforming, and
L2-normalizing per layer — over random-walk (row-normalized) propagation.
"""

from __future__ import annotations

from .base import GraphRecommender
from .registry import MODEL_REGISTRY
from ..autograd import Linear, Tensor, concat, spmm, functional as F
from ..graph import row_normalize


@MODEL_REGISTRY.register("pinsage")
class PinSage(GraphRecommender):
    """SAGE-style concat-aggregate-normalize encoder over random walks."""
    name = "pinsage"

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        dim = self.config.embedding_dim
        self.walk_adj = row_normalize(self.adjacency)
        self.layers = []
        for i in range(self.config.num_layers):
            layer = Linear(2 * dim, dim, self.init_rng)
            setattr(self, f"sage_{i}", layer)
            self.layers.append(layer)

    def propagate(self):
        current = self.ego_embeddings()
        for layer in self.layers:
            neighbour = spmm(self.walk_adj, current)
            fused = layer(concat([current, neighbour], axis=1)).relu()
            current = F.l2_normalize(fused)
        return self.split_nodes(current)
