"""SGL (Wu et al., SIGIR'21) — self-supervised graph learning for CF.

LightGCN encoder + two stochastically corrupted structural views (edge
dropout by default; node dropout / random-walk variants selectable), aligned
per node with InfoNCE.  Views are resampled at the start of every epoch, as
in the original implementation.
"""

from __future__ import annotations

import numpy as np

from .base import GraphRecommender, light_gcn_propagate
from .registry import MODEL_REGISTRY
from ..autograd import functional as F
from ..graph import edge_dropout, node_dropout, symmetric_normalize


@MODEL_REGISTRY.register("sgl")
class SGL(GraphRecommender):
    """LightGCN + stochastic structural views aligned contrastively."""
    name = "sgl"

    #: corruption operator: "edge", "node"
    augmentation = "edge"

    def __init__(self, dataset, config=None, seed: int = 0):
        super().__init__(dataset, config, seed)
        self._view_adjs = None
        self.on_epoch_start(0, self.aug_rng)

    def on_epoch_start(self, epoch: int, rng: np.random.Generator) -> None:
        """Resample the two corrupted structural views."""
        self.invalidate_propagation()  # stale tables predate the new views
        corrupt = edge_dropout if self.augmentation == "edge" else node_dropout
        views = []
        for _ in range(2):
            dropped = corrupt(self.dataset.train, self.config.dropout,
                              self.aug_rng)
            views.append(symmetric_normalize(dropped.bipartite_adjacency(),
                                             add_self_loops=False))
        self._view_adjs = views

    def propagate(self):
        ego = self.ego_embeddings()
        final = light_gcn_propagate(self.norm_adj, ego,
                                    self.config.num_layers)
        return self.split_nodes(final)

    def _view_embeddings(self):
        ego = self.ego_embeddings()
        return [light_gcn_propagate(adj, ego, self.config.num_layers)
                for adj in self._view_adjs]

    def loss(self, users, pos, neg):
        user_final, item_final = self.propagate()
        main = self.bpr_loss(user_final, item_final, users, pos, neg)

        view_a, view_b = self._view_embeddings()
        batch_users = np.unique(users)
        batch_items = np.unique(np.concatenate([pos, neg])) + self.num_users
        ssl = (F.decomposed_infonce_loss(
                              view_a.take_rows(batch_users),
                              view_b.take_rows(batch_users),
                              self.config.temperature,
                              self.config.negative_weight)
               + F.decomposed_infonce_loss(
                                view_a.take_rows(batch_items),
                                view_b.take_rows(batch_items),
                                self.config.temperature,
                                self.config.negative_weight))
        return (main + self.config.ssl_weight * ssl
                + self.embedding_reg(users, pos, neg))
