"""The shared recommender interface and graph-encoder building blocks.

Every baseline and the paper's GraphAug implement this contract so the
:class:`repro.train.Trainer`, the evaluation protocol and all benchmark
harnesses can drive any of them interchangeably:

* ``loss(users, pos_items, neg_items)`` — scalar training loss on a BPR
  batch, *including* the model's own SSL / regularization terms;
* ``propagate()`` — final user and item embedding tensors;
* ``score_users(user_ids)`` — ``(len(user_ids), num_items)`` preference
  block for a subset of users (the inference contract, below);
* ``score_all_users()`` — dense ``(num_users, num_items)`` preference
  matrix; a thin compatibility wrapper over ``score_users``;
* ``node_embeddings()`` — stacked user+item embeddings (MAD / Fig 7 probes).

Scoring contract
----------------
The chunked ranking engine (:mod:`repro.eval.protocol`) drives inference
exclusively through ``score_users`` so peak memory stays at ``chunk_size
x num_items`` instead of the all-pairs matrix:

* ``score_users(user_ids)`` returns scores for exactly those users, in
  order; ``score_users(None)`` means *all* users and is what
  ``score_all_users()`` forwards to.
* The default implementation derives scores from ``propagate()`` as a
  user-block/item dot product.  Models whose scores are *not* an
  embedding dot product (``ncf``, ``autorec``, ``biasmf``) override
  ``score_users`` — never ``score_all_users``.
* ``inference_cache()`` is a context manager that memoizes one
  ``propagate()`` across repeated ``score_users`` calls; evaluators hold
  it open for the duration of one evaluation pass.  Outside the context
  every call re-propagates, so training never sees stale embeddings.

Snapshot / serving state contract
---------------------------------
The serving tier (:mod:`repro.serve`) persists and restores models
without their training pipeline.  Three guarantees make that possible:

* ``propagate()`` (and therefore ``score_users``) is **deterministic
  given the parameters and the training graph** — structural randomness
  (augmented views, noise propagations, EM steps) lives in ``loss`` /
  ``on_epoch_start`` only.  A model rebuilt from the registry with the
  same dataset graph, ``state_dict`` and parameter dtype reproduces its
  inference scores bit-for-bit.
* ``self.seed`` records the construction seed, so registry round-trips
  rebuild construction-time structural state (e.g. GraphAug's candidate
  edge set) identically.
* ``serving_embeddings()`` returns the propagated ``(user, item)``
  arrays when ``score_users`` is the inherited embedding dot product —
  a complete, model-free serving state — and ``None`` for models with a
  custom scorer (``ncf``, ``autorec``, ``biasmf``), which serving
  restores through the registry and drives via ``score_users``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..autograd import (Embedding, Module, Tensor, fused_bpr_loss,
                        fused_kernels_enabled, light_propagate, no_grad, spmm,
                        functional as F)
from ..data import InteractionDataset
from ..graph import symmetric_normalize
from ..train.config import ModelConfig
from ..utils import spawn_rngs


class Recommender(Module):
    """Base class: id embeddings + BPR loss + full-matrix scoring."""

    name = "base"

    def __init__(self, dataset: InteractionDataset,
                 config: Optional[ModelConfig] = None, seed: int = 0):
        super().__init__()
        self.dataset = dataset
        self.config = config or ModelConfig()
        self.seed = seed
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        # independent generators: parameter init / structural sampling
        self.init_rng, self.aug_rng = spawn_rngs(seed, 2)
        dim = self.config.embedding_dim
        self.user_emb = Embedding(self.num_users, dim, self.init_rng)
        self.item_emb = Embedding(self.num_items, dim, self.init_rng)
        self._inference_caching = False
        self._inference_embeddings: Optional[Tuple[np.ndarray,
                                                   np.ndarray]] = None
        self._propagation_cache: Optional[Tuple[np.ndarray,
                                                np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # embedding production
    # ------------------------------------------------------------------ #
    def propagate(self) -> Tuple[Tensor, Tensor]:
        """Return final (user, item) embedding tensors.

        The base implementation is pure matrix factorization (no message
        passing); graph models override this.
        """
        return self.user_emb.all(), self.item_emb.all()

    @contextmanager
    def inference_cache(self):
        """Share one ``propagate()`` across many ``score_users`` calls.

        Chunked evaluation calls ``score_users`` once per user block;
        holding this context open makes all blocks read the same final
        embeddings instead of re-running message passing per block.  The
        cache dies with the context, so parameter updates after it are
        always reflected.
        """
        outer = self._inference_caching
        self._inference_caching = True
        try:
            yield self
        finally:
            self._inference_caching = outer
            if not outer:
                self._inference_embeddings = None

    def _final_embeddings(self) -> Tuple[np.ndarray, np.ndarray]:
        """Propagated (user, item) arrays, memoized under inference_cache."""
        if self._inference_embeddings is not None:
            return self._inference_embeddings
        with no_grad():
            users, items = self.propagate()
        pair = (users.data, items.data)
        if self._inference_caching:
            self._inference_embeddings = pair
        return pair

    # ------------------------------------------------------------------ #
    # training-time propagation cache (the amortized schedule)
    # ------------------------------------------------------------------ #
    def supports_amortized_propagation(self) -> bool:
        """Whether the stale-propagation training schedule applies.

        The amortized scheduler (:mod:`repro.train.parallel`) trains
        stale batches against frozen ``propagate()`` tables, which is
        only meaningful when scores *are* that embedding dot product —
        the same eligibility rule ``serving_embeddings`` uses.  Models
        overriding ``score_users`` with a custom scorer (ncf, autorec,
        biasmf) return False and must train with ``propagate_every=1``.
        """
        return type(self).score_users is Recommender.score_users

    def refresh_propagation(self) -> Tuple[np.ndarray, np.ndarray]:
        """Recompute and cache the propagated ``(user, item)`` tables.

        The trainer calls this at every refresh batch of the amortized
        schedule (``TrainConfig.propagate_every`` > 1); the returned
        arrays are **copies**, frozen snapshots of the current
        parameters — later optimizer steps never leak into them, which
        is what makes a stale window's gradients independent of the
        updates applied inside it (and therefore worker-count
        invariant).  Unlike ``inference_cache`` — whose cache dies with
        its context so *evaluation* always sees live parameters — this
        cache lives until the next refresh or
        :meth:`invalidate_propagation` (structural resampling).
        """
        with no_grad():
            users, items = self.propagate()
        self._propagation_cache = (users.data.copy(), items.data.copy())
        return self._propagation_cache

    def propagation_cache(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The frozen tables from the last refresh (None = invalidated)."""
        return self._propagation_cache

    def amortized_ego_columns(self, final_dim: int) -> slice:
        """Columns of ``propagate()`` output scattered back onto ego tables.

        The stale schedule treats the frozen tables as *ego + constant
        propagation offset*, so a stale gradient flows back through an
        identity scatter — valid only for columns whose dependence on
        the ego tables really is identity-rooted.  When the propagated
        width equals the ego width (LightGCN-style mean pooling) that is
        every column; models that concatenate layers (NGCF) override
        this to name their raw layer-0 block.
        """
        dim = self.user_emb.weight.data.shape[1]
        if final_dim == dim:
            return slice(0, dim)
        raise ValueError(
            f"model {self.name!r} propagates {final_dim}-wide tables over "
            f"{dim}-wide ego embeddings; override amortized_ego_columns "
            "to name the identity-rooted block (or train it with "
            "propagate_every=1)")

    def invalidate_propagation(self) -> None:
        """Drop the stale tables; the next window must re-propagate.

        Models that resample structure in ``on_epoch_start`` (SGL / NCL
        / DGCL views, EM steps) call this so a cache computed on the old
        structure is never trained against.
        """
        self._propagation_cache = None

    def score_users(self, user_ids: Optional[np.ndarray] = None
                    ) -> np.ndarray:
        """``(len(user_ids), num_items)`` preference block (inference).

        ``None`` scores every user.  See the module docstring for the
        full scoring contract.
        """
        users, items = self._final_embeddings()
        if user_ids is None:
            return users @ items.T
        return users[np.asarray(user_ids, dtype=np.int64)] @ items.T

    def serving_embeddings(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Propagated ``(user, item)`` arrays iff they fully determine scores.

        Part of the snapshot/serving contract (module docstring): when
        ``score_users`` is the inherited embedding dot product, the final
        propagated arrays are a complete serving state — a snapshot can
        score from them without rebuilding the model.  Models overriding
        ``score_users`` with a non-dot scorer return ``None`` here (the
        default below detects the override), and the serving tier falls
        back to a registry-restored live model.
        """
        if type(self).score_users is not Recommender.score_users:
            return None
        users, items = self._final_embeddings()
        return users.copy(), items.copy()

    def score_all_users(self) -> np.ndarray:
        """Dense preference scores for every user-item pair.

        Compatibility wrapper: prefer ``score_users`` blocks (via
        ``repro.eval.evaluate_model``) when the all-pairs matrix is not
        actually needed.
        """
        return self.score_users()

    def node_embeddings(self) -> np.ndarray:
        """Stacked (num_users + num_items, d) final embeddings."""
        with no_grad():
            users, items = self.propagate()
            return np.vstack([users.data, items.data])

    # ------------------------------------------------------------------ #
    # losses
    # ------------------------------------------------------------------ #
    def bpr_loss(self, user_final: Tensor, item_final: Tensor,
                 users: np.ndarray, pos: np.ndarray,
                 neg: np.ndarray) -> Tensor:
        """Pairwise ranking loss (paper Eq 15) on propagated embeddings.

        Routes the whole triplet pipeline through the one-node
        :func:`repro.autograd.fused.fused_bpr_loss` kernel when its
        ``fused`` backend is selected (spec-visible via
        ``TrainConfig.autograd_backend``); the composed score graph
        stays the bit-reproducible default.
        """
        u = user_final.take_rows(users)
        vp = item_final.take_rows(pos)
        vn = item_final.take_rows(neg)
        if fused_kernels_enabled("fused_bpr_loss"):
            return fused_bpr_loss(u, vp, vn)
        pos_scores = (u * vp).sum(axis=1)
        neg_scores = (u * vn).sum(axis=1)
        return F.bpr_loss(pos_scores, neg_scores)

    def embedding_reg(self, users: np.ndarray, pos: np.ndarray,
                      neg: np.ndarray) -> Tensor:
        """Batch-wise L2 on the *ego* embeddings involved in the batch.

        This is the standard practical form of the paper's
        ``beta3 ||Theta||_F^2`` term: regularizing the full table every step
        would swamp tiny datasets.
        """
        u = self.user_emb.all().take_rows(users)
        vp = self.item_emb.all().take_rows(pos)
        vn = self.item_emb.all().take_rows(neg)
        total = (u * u).sum() + (vp * vp).sum() + (vn * vn).sum()
        return total * (self.config.reg_weight / max(1, len(users)))

    def loss(self, users: np.ndarray, pos: np.ndarray,
             neg: np.ndarray) -> Tensor:
        user_final, item_final = self.propagate()
        return (self.bpr_loss(user_final, item_final, users, pos, neg)
                + self.embedding_reg(users, pos, neg))


class GraphRecommender(Recommender):
    """Adds the precomputed normalized bipartite adjacency used by GNN models.

    ``self.norm_adj`` is ``D^{-1/2} A D^{-1/2}`` over the unified
    ``(I+J)`` node set, *without* self loops (the LightGCN convention);
    models that want self loops (the paper's mixhop encoder) normalize their
    own variant.
    """

    def __init__(self, dataset: InteractionDataset,
                 config: Optional[ModelConfig] = None, seed: int = 0,
                 add_self_loops: bool = False):
        super().__init__(dataset, config, seed)
        self.adjacency = dataset.train.bipartite_adjacency()
        self.norm_adj = symmetric_normalize(self.adjacency,
                                            add_self_loops=add_self_loops)
        # node index arrays are constant; build once instead of per batch
        self._user_node_idx = np.arange(self.num_users, dtype=np.int64)
        self._item_node_idx = np.arange(self.num_users,
                                        self.num_users + self.num_items,
                                        dtype=np.int64)

    def ego_embeddings(self) -> Tensor:
        """Concatenate user and item tables into one (I+J, d) tensor."""
        from ..autograd import concat
        return concat([self.user_emb.all(), self.item_emb.all()], axis=0)

    def split_nodes(self, embeddings: Tensor) -> Tuple[Tensor, Tensor]:
        """Split a unified node tensor back into (users, items)."""
        return (embeddings.take_rows(self._user_node_idx),
                embeddings.take_rows(self._item_node_idx))


def light_gcn_propagate(norm_adj: sp.csr_matrix, ego: Tensor,
                        num_layers: int) -> Tensor:
    """LightGCN propagation: mean of the per-layer embeddings.

    ``E_final = mean(E^0, A E^0, A^2 E^0, ..., A^L E^0)`` with no transforms
    or nonlinearity — the workhorse encoder for LightGCN, SGL, NCL, HCCF
    and the "w/o Mixhop" GraphAug ablation.

    When the ``fused`` backend is selected for ``light_propagate`` the
    loop collapses into that single propagate-and-pool tape node
    (bit-identical forward; gradient accumulation order differs, which
    is why it is opt-in).
    """
    if fused_kernels_enabled("light_propagate"):
        return light_propagate(norm_adj, ego, num_layers)
    layers = [ego]
    current = ego
    for _ in range(num_layers):
        current = spmm(norm_adj, current)
        layers.append(current)
    return sum(layers[1:], layers[0]) * (1.0 / len(layers))
