"""The shared recommender interface and graph-encoder building blocks.

Every baseline and the paper's GraphAug implement this contract so the
:class:`repro.train.Trainer`, the evaluation protocol and all benchmark
harnesses can drive any of them interchangeably:

* ``loss(users, pos_items, neg_items)`` — scalar training loss on a BPR
  batch, *including* the model's own SSL / regularization terms;
* ``propagate()`` — final user and item embedding tensors;
* ``score_all_users()`` — dense ``(num_users, num_items)`` preference matrix;
* ``node_embeddings()`` — stacked user+item embeddings (MAD / Fig 7 probes).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..autograd import (Embedding, Module, Tensor, no_grad, spmm,
                        functional as F)
from ..data import InteractionDataset
from ..graph import symmetric_normalize
from ..train.config import ModelConfig
from ..utils import spawn_rngs


class Recommender(Module):
    """Base class: id embeddings + BPR loss + full-matrix scoring."""

    name = "base"

    def __init__(self, dataset: InteractionDataset,
                 config: Optional[ModelConfig] = None, seed: int = 0):
        super().__init__()
        self.dataset = dataset
        self.config = config or ModelConfig()
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        # independent generators: parameter init / structural sampling
        self.init_rng, self.aug_rng = spawn_rngs(seed, 2)
        dim = self.config.embedding_dim
        self.user_emb = Embedding(self.num_users, dim, self.init_rng)
        self.item_emb = Embedding(self.num_items, dim, self.init_rng)

    # ------------------------------------------------------------------ #
    # embedding production
    # ------------------------------------------------------------------ #
    def propagate(self) -> Tuple[Tensor, Tensor]:
        """Return final (user, item) embedding tensors.

        The base implementation is pure matrix factorization (no message
        passing); graph models override this.
        """
        return self.user_emb.all(), self.item_emb.all()

    def score_all_users(self) -> np.ndarray:
        """Dense preference scores for every user-item pair (inference)."""
        with no_grad():
            users, items = self.propagate()
            return users.data @ items.data.T

    def node_embeddings(self) -> np.ndarray:
        """Stacked (num_users + num_items, d) final embeddings."""
        with no_grad():
            users, items = self.propagate()
            return np.vstack([users.data, items.data])

    # ------------------------------------------------------------------ #
    # losses
    # ------------------------------------------------------------------ #
    def bpr_loss(self, user_final: Tensor, item_final: Tensor,
                 users: np.ndarray, pos: np.ndarray,
                 neg: np.ndarray) -> Tensor:
        """Pairwise ranking loss (paper Eq 15) on propagated embeddings."""
        u = user_final.take_rows(users)
        vp = item_final.take_rows(pos)
        vn = item_final.take_rows(neg)
        pos_scores = (u * vp).sum(axis=1)
        neg_scores = (u * vn).sum(axis=1)
        return F.bpr_loss(pos_scores, neg_scores)

    def embedding_reg(self, users: np.ndarray, pos: np.ndarray,
                      neg: np.ndarray) -> Tensor:
        """Batch-wise L2 on the *ego* embeddings involved in the batch.

        This is the standard practical form of the paper's
        ``beta3 ||Theta||_F^2`` term: regularizing the full table every step
        would swamp tiny datasets.
        """
        u = self.user_emb.all().take_rows(users)
        vp = self.item_emb.all().take_rows(pos)
        vn = self.item_emb.all().take_rows(neg)
        total = (u * u).sum() + (vp * vp).sum() + (vn * vn).sum()
        return total * (self.config.reg_weight / max(1, len(users)))

    def loss(self, users: np.ndarray, pos: np.ndarray,
             neg: np.ndarray) -> Tensor:
        user_final, item_final = self.propagate()
        return (self.bpr_loss(user_final, item_final, users, pos, neg)
                + self.embedding_reg(users, pos, neg))


class GraphRecommender(Recommender):
    """Adds the precomputed normalized bipartite adjacency used by GNN models.

    ``self.norm_adj`` is ``D^{-1/2} A D^{-1/2}`` over the unified
    ``(I+J)`` node set, *without* self loops (the LightGCN convention);
    models that want self loops (the paper's mixhop encoder) normalize their
    own variant.
    """

    def __init__(self, dataset: InteractionDataset,
                 config: Optional[ModelConfig] = None, seed: int = 0,
                 add_self_loops: bool = False):
        super().__init__(dataset, config, seed)
        self.adjacency = dataset.train.bipartite_adjacency()
        self.norm_adj = symmetric_normalize(self.adjacency,
                                            add_self_loops=add_self_loops)
        # node index arrays are constant; build once instead of per batch
        self._user_node_idx = np.arange(self.num_users, dtype=np.int64)
        self._item_node_idx = np.arange(self.num_users,
                                        self.num_users + self.num_items,
                                        dtype=np.int64)

    def ego_embeddings(self) -> Tensor:
        """Concatenate user and item tables into one (I+J, d) tensor."""
        from ..autograd import concat
        return concat([self.user_emb.all(), self.item_emb.all()], axis=0)

    def split_nodes(self, embeddings: Tensor) -> Tuple[Tensor, Tensor]:
        """Split a unified node tensor back into (users, items)."""
        return (embeddings.take_rows(self._user_node_idx),
                embeddings.take_rows(self._item_node_idx))


def light_gcn_propagate(norm_adj: sp.csr_matrix, ego: Tensor,
                        num_layers: int) -> Tensor:
    """LightGCN propagation: mean of the per-layer embeddings.

    ``E_final = mean(E^0, A E^0, A^2 E^0, ..., A^L E^0)`` with no transforms
    or nonlinearity — the workhorse encoder for LightGCN, SGL, NCL, HCCF
    and the "w/o Mixhop" GraphAug ablation.
    """
    layers = [ego]
    current = ego
    for _ in range(num_layers):
        current = spmm(norm_adj, current)
        layers.append(current)
    return sum(layers[1:], layers[0]) * (1.0 / len(layers))
