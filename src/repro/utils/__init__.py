"""Small shared utilities: seeding, timing and a name registry."""

from .rng import seeded_rng, spawn_rngs
from .timer import Timer
from .registry import Registry, component_registry, component_kinds

__all__ = ["seeded_rng", "spawn_rngs", "Timer", "Registry",
           "component_registry", "component_kinds"]
