"""Small shared utilities: seeding, timing and a name registry."""

from .rng import seeded_rng, spawn_rngs
from .timer import Timer
from .registry import Registry, component_registry, component_kinds
from .threads import (BLAS_ENV_VARS, BLAS_THREADS_ENV, available_cores,
                      apply_blas_thread_limit, blas_thread_budget,
                      blas_thread_limit)

__all__ = ["seeded_rng", "spawn_rngs", "Timer", "Registry",
           "component_registry", "component_kinds",
           "BLAS_ENV_VARS", "BLAS_THREADS_ENV", "available_cores",
           "apply_blas_thread_limit", "blas_thread_budget",
           "blas_thread_limit"]
