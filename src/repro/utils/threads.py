"""BLAS thread-pool tuning for process-parallel workloads.

numpy links against a threaded BLAS (OpenBLAS / MKL / ...) whose pool
defaults to "all the cores".  That is the right call for one process,
and exactly wrong for N worker processes: N pools x all cores
oversubscribes the machine and the workers spend their time context
switching instead of multiplying.  Every process-parallel tier in this
repo (the sweep pool, the training worker pool) therefore caps each
worker's BLAS pool at ``cores // workers``.

Two mechanisms, one knob:

* **Environment variables** (:data:`BLAS_ENV_VARS`) — honored by every
  BLAS at *load* time.  Our pools use the ``spawn`` start method, so
  setting the variables in the parent just before the workers start
  (:class:`blas_thread_limit`) caps the freshly imported numpy in each
  child.  This is dependency-free and covers OpenBLAS, MKL, numexpr and
  Accelerate.
* **threadpoolctl**, when importable, additionally re-limits pools that
  are already loaded (the parent's own, or a ``fork``-started child's).
  It is optional on purpose: the env-var path is the load-bearing one.

``REPRO_BLAS_THREADS`` overrides the computed per-worker budget
everywhere (:func:`blas_thread_budget`).
"""

from __future__ import annotations

import os
from typing import Dict, Optional

#: the load-time thread-count switches recognized across BLAS/LAPACK
#: implementations (OpenBLAS, MKL, numexpr, Accelerate, generic OpenMP)
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: the override knob: when set, every worker gets exactly this many
#: BLAS threads no matter how many workers share the machine
BLAS_THREADS_ENV = "REPRO_BLAS_THREADS"


def available_cores() -> int:
    """CPU cores usable by this process (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return max(1, len(os.sched_getaffinity(0)))
    return max(1, os.cpu_count() or 1)


def blas_thread_budget(workers: int = 1) -> int:
    """Per-worker BLAS thread budget for ``workers`` concurrent processes.

    ``REPRO_BLAS_THREADS`` (when set and positive) wins; otherwise the
    machine's cores are split evenly, never below one thread:

    >>> import os
    >>> os.environ.pop("REPRO_BLAS_THREADS", None) and None
    >>> blas_thread_budget(workers=available_cores()) >= 1
    True
    """
    override = os.environ.get(BLAS_THREADS_ENV, "").strip()
    if override:
        try:
            value = int(override)
        except ValueError:
            raise ValueError(
                f"{BLAS_THREADS_ENV} must be an integer, got {override!r}")
        if value > 0:
            return value
    return max(1, available_cores() // max(1, workers))


def _limit_running_pools(threads: int):
    """Cap already-loaded BLAS pools via threadpoolctl, when available.

    Returns the active ``threadpool_limits`` controller (so the caller
    can restore the previous limits) or ``None`` when threadpoolctl is
    not installed — the env-var path still covers spawned children.
    """
    try:
        from threadpoolctl import threadpool_limits
    except ImportError:
        return None
    controller = threadpool_limits(limits=threads)
    return controller


class blas_thread_limit:
    """Context manager: cap BLAS pools at ``threads`` for the block.

    Sets the :data:`BLAS_ENV_VARS` (inherited by any process spawned
    inside the block — the whole point: our worker pools start their
    children here) and, when threadpoolctl is importable, re-limits the
    current process's already-loaded pools too.  Previous values are
    restored on exit.

    >>> with blas_thread_limit(1):
    ...     os.environ["OPENBLAS_NUM_THREADS"]
    '1'
    """

    def __init__(self, threads: int):
        if threads < 1:
            raise ValueError(f"thread limit must be >= 1, got {threads}")
        self.threads = int(threads)
        self._saved: Optional[Dict[str, Optional[str]]] = None
        self._controller = None

    def __enter__(self):
        self._saved = {name: os.environ.get(name) for name in BLAS_ENV_VARS}
        for name in BLAS_ENV_VARS:
            os.environ[name] = str(self.threads)
        self._controller = _limit_running_pools(self.threads)
        return self

    def __exit__(self, *exc):
        for name, previous in (self._saved or {}).items():
            if previous is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = previous
        if self._controller is not None:
            restore = getattr(self._controller, "restore_original_limits",
                              None) or getattr(self._controller,
                                               "unregister", None)
            if restore is not None:
                restore()
            self._controller = None
        return False


def apply_blas_thread_limit(threads: int) -> None:
    """Persistently cap BLAS threads for *this* process (no restore).

    The worker-side half of :class:`blas_thread_limit`: pool
    initializers call this so a worker that later re-imports or
    lazily initializes a BLAS keeps the cap for its whole lifetime.
    """
    if threads < 1:
        raise ValueError(f"thread limit must be >= 1, got {threads}")
    for name in BLAS_ENV_VARS:
        os.environ[name] = str(threads)
    _limit_running_pools(threads)
