"""Wall-clock timing for the cost-time evaluation (paper Table VI)."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context-manager stopwatch accumulating across multiple sections."""

    def __init__(self):
        self.total = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        # reset() inside an open context clears _start; exiting must not
        # blow up with a TypeError on None arithmetic
        if self._start is not None:
            self.total += time.perf_counter() - self._start
            self._start = None
        return False

    @property
    def minutes(self) -> float:
        return self.total / 60.0

    def reset(self) -> None:
        self.total = 0.0
        self._start = None
