"""String-keyed registries: the model zoo and the experiment components.

Two layers:

* :class:`Registry` — a free-standing name -> constructor mapping (any
  code can make one for local use);
* :func:`component_registry` — the process-wide table of *component
  kinds* the declarative experiment API (:mod:`repro.api`) resolves
  through.  ``component_registry("model")`` is the model zoo,
  ``"dataset"`` the named dataset loaders, ``"probe"`` the post-training
  analysis probes, ``"callback"`` the post-fit artifact writers.  Each
  kind is created on first request and shared by every caller, so a
  package registers its components simply by being imported.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, TypeVar

T = TypeVar("T")


class Registry:
    """Decorator-based name -> constructor mapping."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, Callable] = {}

    def register(self, name: str) -> Callable[[T], T]:
        if name in self._entries:
            raise KeyError(f"{self.kind} {name!r} registered twice")

        def decorator(obj: T) -> T:
            self._entries[name] = obj
            return obj

        return decorator

    def get(self, name: str) -> Callable:
        if name not in self._entries:
            raise KeyError(f"unknown {self.kind} {name!r}; "
                           f"available: {sorted(self._entries)}")
        return self._entries[name]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> list:
        return sorted(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


#: process-wide component registries, keyed by kind (see module docstring)
_COMPONENT_REGISTRIES: Dict[str, Registry] = {}


def component_registry(kind: str) -> Registry:
    """The shared registry of one component kind (created on demand).

    Every caller asking for the same ``kind`` gets the same
    :class:`Registry` instance, which is how the experiment facade
    resolves models, datasets, probes and callbacks registered by their
    defining modules.
    """
    if kind not in _COMPONENT_REGISTRIES:
        _COMPONENT_REGISTRIES[kind] = Registry(kind)
    return _COMPONENT_REGISTRIES[kind]


def component_kinds() -> List[str]:
    """Sorted list of component kinds registered so far."""
    return sorted(_COMPONENT_REGISTRIES)
