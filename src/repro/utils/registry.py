"""A minimal string-keyed registry used for the model zoo."""

from __future__ import annotations

from typing import Callable, Dict, Iterator, TypeVar

T = TypeVar("T")


class Registry:
    """Decorator-based name -> constructor mapping."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, Callable] = {}

    def register(self, name: str) -> Callable[[T], T]:
        if name in self._entries:
            raise KeyError(f"{self.kind} {name!r} registered twice")

        def decorator(obj: T) -> T:
            self._entries[name] = obj
            return obj

        return decorator

    def get(self, name: str) -> Callable:
        if name not in self._entries:
            raise KeyError(f"unknown {self.kind} {name!r}; "
                           f"available: {sorted(self._entries)}")
        return self._entries[name]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> list:
        return sorted(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())
