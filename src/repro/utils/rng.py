"""Deterministic random-number helpers.

Every stochastic component in this repository takes an explicit
``numpy.random.Generator`` — no global state — so experiments are exactly
reproducible from a single seed.
"""

from __future__ import annotations

from typing import List

import numpy as np


def seeded_rng(seed: int) -> np.random.Generator:
    """A fresh PCG64 generator from an integer seed."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Independent child generators (one per component) from one seed."""
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
