"""Tests for the shared utilities (registry, rng, timer)."""

import time

import numpy as np
import pytest

from repro.utils import Registry, Timer, seeded_rng, spawn_rngs


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("thing")

        @reg.register("a")
        def thing_a():
            return "a"

        assert reg.get("a") is thing_a
        assert "a" in reg
        assert reg.names() == ["a"]

    def test_duplicate_raises(self):
        reg = Registry("thing")
        reg.register("x")(object)
        with pytest.raises(KeyError):
            reg.register("x")(object)

    def test_unknown_raises_with_available(self):
        reg = Registry("thing")
        reg.register("known")(object)
        with pytest.raises(KeyError, match="known"):
            reg.get("unknown")

    def test_iteration_sorted(self):
        reg = Registry("thing")
        for name in ("c", "a", "b"):
            reg.register(name)(object)
        assert list(reg) == ["a", "b", "c"]


class TestRng:
    def test_seeded_deterministic(self):
        a = seeded_rng(42).random(5)
        b = seeded_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_spawn_independent(self):
        rngs = spawn_rngs(7, 3)
        assert len(rngs) == 3
        draws = [rng.random(4) for rng in rngs]
        # children differ from each other
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_deterministic(self):
        a = spawn_rngs(7, 2)[0].random(3)
        b = spawn_rngs(7, 2)[0].random(3)
        np.testing.assert_array_equal(a, b)


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        first = timer.total
        with timer:
            time.sleep(0.01)
        assert timer.total > first >= 0.01

    def test_minutes(self):
        timer = Timer()
        timer.total = 120.0
        assert timer.minutes == 2.0

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.total == 0.0

    def test_reset_inside_open_context(self):
        """reset() inside a `with` block must not break the exit path."""
        timer = Timer()
        with timer:
            timer.reset()  # seed code raised TypeError on __exit__
        assert timer.total == 0.0
        # the timer is still usable afterwards
        with timer:
            time.sleep(0.001)
        assert timer.total > 0.0
