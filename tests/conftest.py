"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.train import ModelConfig, TrainConfig


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset():
    """A session-cached tiny dataset (60 users, 50 items)."""
    return tiny_dataset(seed=7)


@pytest.fixture
def fast_model_config():
    return ModelConfig(embedding_dim=16, num_layers=2)


@pytest.fixture
def fast_train_config():
    return TrainConfig(epochs=5, batch_size=128, eval_every=5)
