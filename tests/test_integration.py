"""End-to-end integration tests across the whole library.

These exercise the same paths a downstream user (and the benchmark
harness) takes: generate data -> build model -> train -> evaluate ->
analyse, including file round-trips and the robustness / group protocols
driving real models rather than oracles.
"""

import numpy as np
import pytest

from repro.core import GraphAug
from repro.data import load_npz, load_profile, save_npz, tiny_dataset
from repro.eval import (evaluate_item_groups, evaluate_scores,
                        evaluate_user_groups, mean_average_distance,
                        noise_robustness_curve, uniformity)
from repro.graph import inject_fake_edges
from repro.models import build_model
from repro.train import ModelConfig, TrainConfig, fit_model


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=77, num_users=80, num_items=60,
                        mean_degree=9.0)


@pytest.fixture(scope="module")
def trained_graphaug(dataset):
    model = build_model(
        "graphaug", dataset,
        ModelConfig(embedding_dim=16, num_layers=2, ssl_weight=1.0),
        seed=0)
    result = fit_model(model, dataset,
                       TrainConfig(epochs=15, batch_size=128,
                                   eval_every=5), seed=0)
    return model, result


class TestFullPipeline:
    def test_train_eval_analyse(self, dataset, trained_graphaug):
        model, result = trained_graphaug
        assert result.best_metrics["recall@20"] > 0
        scores = model.score_all_users()
        metrics = evaluate_scores(scores, dataset, ks=(10, 20))
        assert set(metrics) == {"recall@10", "recall@20", "ndcg@10",
                                "ndcg@20"}
        emb = model.node_embeddings()
        assert 0.0 <= mean_average_distance(emb) <= 2.0
        assert np.isfinite(uniformity(emb[:dataset.num_users]))

    def test_group_protocols_with_real_model(self, dataset,
                                             trained_graphaug):
        model, _ = trained_graphaug
        scores = model.score_all_users()
        users = evaluate_user_groups(scores, dataset, num_groups=3,
                                     ks=(20,))
        items = evaluate_item_groups(scores, dataset, num_groups=3,
                                     ks=(20,))
        assert len(users) == 3 and len(items) == 3
        for metrics in list(users.values()) + list(items.values()):
            for value in metrics.values():
                assert 0.0 <= value <= 1.0

    def test_noise_protocol_with_real_model(self, dataset):
        def train_fn(ds):
            model = build_model("lightgcn", ds,
                                ModelConfig(embedding_dim=16,
                                            num_layers=2), seed=0)
            fit_model(model, ds, TrainConfig(epochs=8, batch_size=128,
                                             eval_every=8), seed=0)
            return model.score_all_users()

        curve = noise_robustness_curve(train_fn, dataset,
                                       noise_ratios=(0.0, 0.2), seed=1)
        assert curve[0.0] == 1.0
        assert curve[0.2] > 0

    def test_dataset_roundtrip_then_train(self, dataset, tmp_path):
        path = str(tmp_path / "roundtrip.npz")
        save_npz(dataset, path)
        loaded = load_npz(path)
        model = build_model("biasmf", loaded,
                            ModelConfig(embedding_dim=8), seed=0)
        result = fit_model(model, loaded,
                           TrainConfig(epochs=3, batch_size=64,
                                       eval_every=3), seed=0)
        assert result.best_metrics

    def test_fake_edges_then_graphaug_probes(self, dataset):
        rng = np.random.default_rng(0)
        noisy_graph, fake_u, fake_i = inject_fake_edges(dataset.train,
                                                        0.2, rng)
        noisy = dataset.with_train_graph(noisy_graph)
        model = build_model("graphaug", noisy,
                            ModelConfig(embedding_dim=16, num_layers=2,
                                        ssl_weight=1.0), seed=0)
        fit_model(model, noisy, TrainConfig(epochs=10, batch_size=128,
                                            eval_every=10), seed=0)
        probs = model.edge_keep_probabilities()
        assert probs.shape == (len(model.candidates),)
        users, items = model.propagate()
        assert np.isfinite(users.data).all()
        assert np.isfinite(items.data).all()

    def test_profiles_train_end_to_end(self):
        """Each Table-I profile trains a real model without surprises."""
        for name in ("gowalla", "retail_rocket", "amazon"):
            ds = load_profile(name, seed=1)
            model = build_model("lightgcn", ds,
                                ModelConfig(embedding_dim=16,
                                            num_layers=2), seed=0)
            result = fit_model(model, ds,
                               TrainConfig(epochs=4, batch_size=512,
                                           eval_every=4), seed=0)
            assert result.best_metrics["recall@20"] > 0
