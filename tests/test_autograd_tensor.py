"""Unit tests for the core autograd Tensor: every op gradchecked."""

import numpy as np
import pytest

from repro.autograd import (Tensor, concat, stack, where, gradcheck,
                            no_grad, unbroadcast)


def t(shape, seed=0, requires_grad=True):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestBasics:
    def test_leaf_properties(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
        assert x.shape == (2, 2)
        assert x.ndim == 2
        assert x.size == 4
        assert x.grad is None

    def test_backward_requires_grad(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_backward_non_scalar_needs_grad(self):
        x = t((3,))
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_detach_breaks_graph(self):
        x = t((3,))
        y = (x * 2).detach()
        assert not y.requires_grad
        z = (y * 3).sum()
        assert not z.requires_grad

    def test_no_grad_context(self):
        x = t((3,))
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad

    def test_item_and_numpy(self):
        x = Tensor([2.5])
        assert x.item() == 2.5
        assert isinstance(x.numpy(), np.ndarray)

    def test_grad_accumulates_across_backward_calls(self):
        x = t((2,))
        (x.sum()).backward()
        (x.sum()).backward()
        np.testing.assert_allclose(x.grad, 2 * np.ones(2))


class TestArithmeticGradients:
    def test_add(self):
        assert gradcheck(lambda a, b: (a + b).sum(), [t((3, 4)), t((3, 4), 1)])

    def test_add_broadcast(self):
        assert gradcheck(lambda a, b: (a + b).sum(), [t((3, 4)), t((4,), 1)])

    def test_sub(self):
        assert gradcheck(lambda a, b: (a - b).sum(), [t((3, 2)), t((3, 2), 1)])

    def test_mul(self):
        assert gradcheck(lambda a, b: (a * b).sum(), [t((2, 5)), t((2, 5), 1)])

    def test_mul_broadcast_scalar_tensor(self):
        assert gradcheck(lambda a, b: (a * b).sum(), [t((2, 3)), t((1,), 1)])

    def test_div(self):
        b = t((2, 3), 1)
        b.data = np.abs(b.data) + 1.0
        assert gradcheck(lambda a, b: (a / b).sum(), [t((2, 3)), b])

    def test_pow(self):
        x = t((4,))
        x.data = np.abs(x.data) + 0.5
        assert gradcheck(lambda a: (a ** 3).sum(), [x])

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            t((2,)) ** t((2,))

    def test_neg(self):
        assert gradcheck(lambda a: (-a).sum(), [t((3,))])

    def test_scalar_radd_rmul(self):
        assert gradcheck(lambda a: (2.0 + 3.0 * a).sum(), [t((3,))])

    def test_rsub_rdiv(self):
        x = t((3,))
        x.data = np.abs(x.data) + 1.0
        assert gradcheck(lambda a: (1.0 - a).sum(), [x])
        assert gradcheck(lambda a: (1.0 / a).sum(), [x])


class TestElementwiseGradients:
    def test_exp(self):
        assert gradcheck(lambda a: a.exp().sum(), [t((3, 3))])

    def test_log(self):
        x = t((3,))
        x.data = np.abs(x.data) + 0.5
        assert gradcheck(lambda a: a.log().sum(), [x])

    def test_sqrt(self):
        x = t((3,))
        x.data = np.abs(x.data) + 0.5
        assert gradcheck(lambda a: a.sqrt().sum(), [x])

    def test_sigmoid(self):
        assert gradcheck(lambda a: a.sigmoid().sum(), [t((4, 2))])

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor([-800.0, 800.0])
        y = x.sigmoid()
        assert np.all(np.isfinite(y.data))
        np.testing.assert_allclose(y.data, [0.0, 1.0], atol=1e-12)

    def test_tanh(self):
        assert gradcheck(lambda a: a.tanh().sum(), [t((5,))])

    def test_relu(self):
        x = t((10,))
        x.data += 0.1 * np.sign(x.data)  # keep away from kink
        assert gradcheck(lambda a: a.relu().sum(), [x])

    def test_leaky_relu(self):
        x = t((10,))
        x.data += 0.1 * np.sign(x.data)
        assert gradcheck(lambda a: a.leaky_relu(0.5).sum(), [x])

    def test_leaky_relu_negative_slope_value(self):
        x = Tensor([-2.0, 2.0])
        np.testing.assert_allclose(x.leaky_relu(0.5).data, [-1.0, 2.0])

    def test_softplus(self):
        assert gradcheck(lambda a: a.softplus().sum(), [t((6,))])

    def test_softplus_large_values_stable(self):
        x = Tensor([900.0, -900.0])
        y = x.softplus()
        assert np.all(np.isfinite(y.data))
        np.testing.assert_allclose(y.data[1], 0.0, atol=1e-12)

    def test_logsigmoid(self):
        assert gradcheck(lambda a: a.logsigmoid().sum(), [t((6,))])

    def test_abs(self):
        x = t((5,))
        x.data += 0.2 * np.sign(x.data)
        assert gradcheck(lambda a: a.abs().sum(), [x])

    def test_clamp_gradient_masked(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        y = x.clamp(low=-1.0, high=1.0)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])
        np.testing.assert_allclose(y.data, [-1.0, 0.5, 1.0])


class TestReductions:
    def test_sum_all(self):
        assert gradcheck(lambda a: a.sum(), [t((3, 4))])

    def test_sum_axis(self):
        assert gradcheck(lambda a: (a.sum(axis=0) ** 2).sum(), [t((3, 4))])

    def test_sum_keepdims(self):
        assert gradcheck(lambda a: (a.sum(axis=1, keepdims=True) * a).sum(),
                         [t((3, 4))])

    def test_mean_all(self):
        assert gradcheck(lambda a: a.mean(), [t((4, 2))])

    def test_mean_axis(self):
        assert gradcheck(lambda a: (a.mean(axis=1) ** 2).sum(), [t((3, 4))])

    def test_max_all(self):
        x = t((4, 3))
        assert gradcheck(lambda a: a.max(), [x])

    def test_max_axis(self):
        x = t((4, 3))
        assert gradcheck(lambda a: a.max(axis=1).sum(), [x])

    def test_logsumexp(self):
        assert gradcheck(lambda a: a.logsumexp(axis=1).sum(), [t((3, 5))])

    def test_logsumexp_keepdims_shape(self):
        x = t((3, 5))
        assert x.logsumexp(axis=1, keepdims=True).shape == (3, 1)
        assert x.logsumexp(axis=1).shape == (3,)

    def test_logsumexp_stability(self):
        x = Tensor([[1000.0, 1000.0]])
        np.testing.assert_allclose(x.logsumexp(axis=1).data,
                                   [1000.0 + np.log(2)])


class TestLinearAlgebraAndShape:
    def test_matmul(self):
        assert gradcheck(lambda a, b: (a @ b).sum(), [t((3, 4)), t((4, 2), 1)])

    def test_matmul_vector(self):
        assert gradcheck(lambda a, b: (a @ b).sum(), [t((3, 4)), t((4,), 1)])

    def test_transpose(self):
        assert gradcheck(lambda a: (a.T @ a).sum(), [t((3, 4))])

    def test_reshape(self):
        assert gradcheck(lambda a: (a.reshape(6) ** 2).sum(), [t((2, 3))])

    def test_reshape_tuple_arg(self):
        x = t((2, 3))
        assert x.reshape((3, 2)).shape == (3, 2)
        assert x.reshape(-1).shape == (6,)

    def test_take_rows(self):
        idx = np.array([0, 2, 2, 1])
        assert gradcheck(lambda a: (a.take_rows(idx) ** 2).sum(), [t((3, 4))])

    def test_take_rows_repeated_accumulates(self):
        x = t((3, 2))
        y = x.take_rows(np.array([1, 1, 1]))
        y.sum().backward()
        np.testing.assert_allclose(x.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(x.grad[0], [0.0, 0.0])

    def test_getitem_fancy(self):
        x = t((4, 3))
        assert gradcheck(
            lambda a: (a[np.array([0, 1]), np.array([2, 0])] ** 2).sum(), [x])

    def test_getitem_column_slice(self):
        x = t((4, 6))
        cols = np.arange(2, 5)
        assert gradcheck(lambda a: (a[:, cols] ** 2).sum(), [x])

    def test_concat(self):
        assert gradcheck(
            lambda a, b: (concat([a, b], axis=1) ** 2).sum(),
            [t((3, 2)), t((3, 4), 1)])

    def test_concat_axis0(self):
        assert gradcheck(
            lambda a, b: (concat([a, b], axis=0) ** 2).sum(),
            [t((2, 3)), t((4, 3), 1)])

    def test_stack(self):
        assert gradcheck(
            lambda a, b: (stack([a, b], axis=0) ** 2).sum(),
            [t((2, 3)), t((2, 3), 1)])

    def test_where(self):
        cond = np.array([True, False, True])
        assert gradcheck(
            lambda a, b: where(cond, a, b).sum(), [t((3,)), t((3,), 1)])


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert unbroadcast(g, (3, 4)).shape == (3, 4)

    def test_leading_axis(self):
        g = np.ones((5, 3, 4))
        out = unbroadcast(g, (3, 4))
        np.testing.assert_allclose(out, 5 * np.ones((3, 4)))

    def test_expanded_axis(self):
        g = np.ones((3, 4))
        out = unbroadcast(g, (3, 1))
        np.testing.assert_allclose(out, 4 * np.ones((3, 1)))

    def test_scalar_target(self):
        g = np.ones((2, 2))
        out = unbroadcast(g, ())
        assert out.shape == ()
        assert out == 4.0


class TestGraphTopology:
    def test_diamond_graph(self):
        # x feeds two paths that rejoin: gradient must accumulate once each
        x = t((3,))
        y = (x * 2 + x.exp()).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, 2 + np.exp(x.data))

    def test_deep_chain(self):
        x = t((2,))
        y = x
        for _ in range(50):
            y = y * 1.01
        y.sum().backward()
        np.testing.assert_allclose(x.grad, 1.01 ** 50 * np.ones(2),
                                   rtol=1e-10)

    def test_shared_subexpression(self):
        # the same intermediate feeds two consumers — grads must accumulate
        assert gradcheck(lambda a: (a.sigmoid() * a.sigmoid()).sum(),
                         [t((2, 2), 3)])
