"""Tests for the experiment pipeline (``repro.api.experiment``).

Acceptance contract: ``Experiment.run(spec)`` reproduces the historical
CLI ``train`` path bit-identically (same metrics for the same
seed/spec), and ``run_sweep`` writes one replayable run directory per
cell with shared dataset loading.
"""

import json
import os

import numpy as np
import pytest

from repro.api import (Experiment, ExperimentSpec, RunResult, expand_grid,
                       recommend_topk, run_experiment, run_sweep)
from repro.data import save_tsv, tiny_dataset
from repro.models import build_model
from repro.train import ModelConfig, TrainConfig, fit_model, load_state

FAST_TRAIN = {"epochs": 2, "batch_size": 128, "eval_every": 2}


def _fast_spec(model="biasmf", dataset="tiny", **overrides):
    base = dict(model=model, dataset=dataset,
                model_config={"embedding_dim": 8},
                train_config=dict(FAST_TRAIN))
    base.update(overrides)
    return ExperimentSpec(**base)


class TestRunMatchesManualPath:
    """The facade reproduces manual build_model + fit_model exactly."""

    @pytest.mark.parametrize("model", ["lightgcn", "sgl", "ncf"])
    def test_bit_identical_metrics(self, model):
        seed = 5
        spec = ExperimentSpec(
            model=model, dataset="tiny", seed=seed,
            model_config={"embedding_dim": 8, "num_layers": 2},
            train_config=dict(FAST_TRAIN))
        result = Experiment(spec).run()

        # the historical CLI path: load -> build -> fit, same seeds
        dataset = tiny_dataset(seed=seed)
        manual = build_model(model, dataset,
                             ModelConfig(embedding_dim=8, num_layers=2),
                             seed=seed)
        fit = fit_model(manual, dataset,
                        TrainConfig(**FAST_TRAIN), seed=seed)
        assert result.metrics == fit.best_metrics
        assert result.best_epoch == fit.best_epoch

    def test_replay_from_run_dir_is_bit_identical(self, tmp_path):
        run_dir = str(tmp_path / "run")
        first = Experiment(_fast_spec()).run(run_dir=run_dir)
        replay = Experiment.from_run_dir(run_dir).run()
        assert replay.metrics == first.metrics


class TestRunDirectory:
    def test_contract_files(self, tmp_path):
        run_dir = str(tmp_path / "run")
        spec = _fast_spec(probes={"user_groups": {"num_groups": 2}})
        result = Experiment(spec).run(run_dir=run_dir)
        for name in ("spec.json", "metrics.jsonl", "timing.json",
                     "environment.json", "probes.json", "history.csv"):
            assert os.path.exists(os.path.join(run_dir, name)), name

        with open(os.path.join(run_dir, "spec.json")) as fh:
            assert ExperimentSpec.from_dict(json.load(fh)) == spec
        with open(os.path.join(run_dir, "metrics.jsonl")) as fh:
            events = [json.loads(line) for line in fh]
        assert [e["event"] for e in events].count("best") == 1
        assert events[-1]["metrics"] == result.metrics
        epochs = [e for e in events if e["event"] == "epoch"]
        assert len(epochs) == FAST_TRAIN["epochs"]
        with open(os.path.join(run_dir, "environment.json")) as fh:
            stamp = json.load(fh)
        assert {"python", "numpy", "scipy", "repro",
                "default_dtype"} <= set(stamp)

    def test_run_result_load(self, tmp_path):
        run_dir = str(tmp_path / "run")
        result = Experiment(_fast_spec()).run(run_dir=run_dir)
        loaded = RunResult.load(run_dir)
        assert loaded.spec == result.spec
        assert loaded.metrics == result.metrics
        assert loaded.best_epoch == result.best_epoch
        assert loaded.timing["train_seconds"] > 0
        assert loaded.fit is None

    def test_load_rejects_non_run_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="spec.json"):
            RunResult.load(str(tmp_path))


class TestArtifacts:
    def test_checkpoint_and_history_and_snapshot(self, tmp_path):
        run_dir = str(tmp_path / "run")
        spec = _fast_spec(artifacts={"checkpoint": "best.npz",
                                     "history": "history.csv",
                                     "snapshot": "serve.npz"})
        result = Experiment(spec).run(run_dir=run_dir)
        assert set(result.artifacts) >= {"checkpoint", "history",
                                         "snapshot"}
        # relative artifact paths land inside the run directory
        assert result.artifacts["checkpoint"] == \
            os.path.join(run_dir, "best.npz")
        assert os.path.exists(result.artifacts["snapshot"])
        state = load_state(result.artifacts["checkpoint"])
        assert state  # non-empty state dict round-trips

    def test_checkpoint_feeds_evaluate(self, tmp_path):
        ckpt = str(tmp_path / "best.npz")
        spec = _fast_spec(artifacts={"checkpoint": ckpt})
        Experiment(spec).run()
        metrics = Experiment(_fast_spec()).evaluate(checkpoint=ckpt)
        assert "recall@20" in metrics

    def test_absolute_artifact_path_untouched(self, tmp_path):
        snap = str(tmp_path / "abs-snap.npz")
        spec = _fast_spec(artifacts={"snapshot": snap})
        result = Experiment(spec).run(run_dir=str(tmp_path / "run"))
        assert result.artifacts["snapshot"] == snap

    def test_nested_artifact_dirs_are_created(self, tmp_path):
        spec = _fast_spec(
            artifacts={"checkpoint": "ckpts/best.npz",
                       "snapshot": str(tmp_path / "deep/dir/s.npz")})
        result = Experiment(spec).run(run_dir=str(tmp_path / "run"))
        assert os.path.exists(result.artifacts["checkpoint"])
        assert os.path.exists(result.artifacts["snapshot"])


class TestProbes:
    def test_probe_outputs_in_result(self):
        spec = _fast_spec(probes={"user_groups": {"num_groups": 2,
                                                  "ks": [5]},
                                  "beyond_accuracy": {"k": 5}})
        result = Experiment(spec).run()
        assert set(result.probes) == {"user_groups", "beyond_accuracy"}
        assert "coverage@5" in result.probes["beyond_accuracy"]

    def test_probes_persist_to_run_dir(self, tmp_path):
        run_dir = str(tmp_path / "run")
        spec = _fast_spec(probes={"beyond_accuracy": {"k": 5}})
        Experiment(spec).run(run_dir=run_dir)
        loaded = RunResult.load(run_dir)
        assert "coverage@5" in loaded.probes["beyond_accuracy"]


class TestSweep:
    def test_grid_over_models_and_datasets(self, tmp_path):
        # two models x two datasets, one replayable run dir per cell
        tsv = str(tmp_path / "edges.tsv")
        save_tsv(tiny_dataset(seed=9, num_users=40, num_items=30), tsv)
        base = _fast_spec()
        specs = expand_grid(base, models=["biasmf", "lightgcn"],
                            datasets=["tiny", tsv])
        assert len(specs) == 4
        base_dir = str(tmp_path / "sweep")
        results = run_sweep(specs, base_dir=base_dir)
        assert len(results) == 4
        # one run dir per cell, plus the sweep manifest + aggregation
        cell_dirs = [d for d in os.listdir(base_dir)
                     if os.path.isdir(os.path.join(base_dir, d))]
        assert len(cell_dirs) == 4
        assert {"sweep.json", "results.csv",
                "leaderboard.md"} <= set(os.listdir(base_dir))
        for spec, result in zip(specs, results):
            assert result.run_dir == os.path.join(base_dir, spec.run_name)
            replay = RunResult.load(result.run_dir)
            assert replay.metrics == result.metrics
            rerun = Experiment.from_run_dir(result.run_dir).run()
            assert rerun.metrics == result.metrics

    def test_shared_dataset_loading(self):
        specs = expand_grid(_fast_spec(),
                            models=["biasmf", "lightgcn"])
        cache = {}
        experiments = [Experiment(spec) for spec in specs]
        datasets = [e.dataset(cache=cache) for e in experiments]
        assert datasets[0] is datasets[1]  # one load per (dataset, seed)
        assert len(cache) == 1

    def test_name_collisions_get_suffixes(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        spec = _fast_spec()
        results = run_sweep([spec, spec], base_dir=base_dir)
        dirs = sorted(os.path.basename(r.run_dir) for r in results)
        assert dirs == ["biasmf-tiny-seed0", "biasmf-tiny-seed0-2"]

    def test_sweep_accepts_plain_dicts(self):
        results = run_sweep([_fast_spec().to_dict()])
        assert len(results) == 1 and results[0].metrics

    def test_run_experiment_convenience(self):
        result = run_experiment(_fast_spec().to_dict())
        assert "recall@20" in result.metrics


class TestRecommendFacade:
    def test_trains_snapshot_when_missing_then_serves(self, tmp_path):
        snap = str(tmp_path / "serve.npz")
        payload = recommend_topk(snap, users=[0, 3], k=5,
                                 train_spec=_fast_spec())
        assert os.path.exists(snap)
        assert payload["model"] == "biasmf"
        assert sorted(payload["recommendations"]) == ["0", "3"]
        assert all(len(v) == 5
                   for v in payload["recommendations"].values())
        # second call serves the existing artifact (no train_spec needed)
        again = recommend_topk(snap, users=[3], k=5)
        assert again["recommendations"]["3"] == \
            payload["recommendations"]["3"]

    def test_missing_snapshot_without_spec_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="train_spec"):
            recommend_topk(str(tmp_path / "none.npz"))

    def test_relative_snapshot_with_run_dir_still_serves(self, tmp_path,
                                                         monkeypatch):
        # a run_dir must not relocate the snapshot away from the path
        # the serving step reads back
        monkeypatch.chdir(tmp_path)
        payload = recommend_topk("rel-serve.npz", users=[0], k=3,
                                 train_spec=_fast_spec(),
                                 run_dir=str(tmp_path / "run"))
        assert os.path.exists(tmp_path / "rel-serve.npz")
        assert payload["recommendations"]["0"]
