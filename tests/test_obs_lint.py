"""Static lint: observability goes through ``repro.obs``, nowhere else.

The unified observability layer's contract is that user-facing output
and timing instrumentation have exactly one home.  This AST walk over
``src/repro/`` fails the build if someone reintroduces an ad-hoc
``print(...)`` (use :func:`repro.obs.console`, or a metric/span) or a
raw ``time.perf_counter()`` timing site (use
:meth:`repro.obs.Histogram.time`, :func:`repro.obs.span`, or
:class:`repro.utils.Timer`) outside the sanctioned modules.

Allowlist
---------
``repro/obs/``               the layer itself (owns the clock + sink)
``repro/cli.py``             a CLI's job is to print
``repro/utils/timer.py``     the Timer abstraction wraps the clock
``repro/autograd/primitives.py``  the per-primitive profiler's hot path
                             deliberately calls the clock inline (a
                             Timer object per primitive dispatch would
                             cost more than the measurement)
"""

import ast
import pathlib

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
OBS_DIR = SRC_ROOT / "obs"

#: modules allowed to call print() — relative to SRC_ROOT
PRINT_ALLOWED = {"cli.py"}

#: modules allowed to call time.perf_counter() — relative to SRC_ROOT
CLOCK_ALLOWED = {"utils/timer.py", "autograd/primitives.py"}


def _modules_outside_obs():
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if OBS_DIR not in path.parents:
            yield path


def _is_perf_counter_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "perf_counter":
        return True
    return isinstance(func, ast.Name) and func.id == "perf_counter"


def _violations(path: pathlib.Path, *, allow_print=False,
                allow_clock=False):
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if not allow_print and isinstance(node.func, ast.Name) \
                and node.func.id == "print":
            found.append((node.lineno,
                          "calls print() — route output through "
                          "repro.obs.console() or a metric"))
        if not allow_clock and _is_perf_counter_call(node):
            found.append((node.lineno,
                          "calls time.perf_counter() — use "
                          "Histogram.time(), span(), or repro.utils."
                          "Timer"))
    return found


def test_no_ad_hoc_observability_outside_obs():
    offenders = []
    for path in _modules_outside_obs():
        rel = path.relative_to(SRC_ROOT).as_posix()
        for lineno, why in _violations(
                path,
                allow_print=rel in PRINT_ALLOWED,
                allow_clock=rel in CLOCK_ALLOWED):
            offenders.append(f"repro/{rel}:{lineno}: {why}")
    assert not offenders, (
        "ad-hoc observability code outside repro/obs/ — go through the "
        "observability layer instead:\n" + "\n".join(offenders))


def test_allowlists_point_at_real_modules():
    """A renamed module must not silently widen the lint."""
    for rel in PRINT_ALLOWED | CLOCK_ALLOWED:
        assert (SRC_ROOT / rel).exists(), f"stale allowlist entry: {rel}"


def test_lint_actually_detects_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import time\n"
        "def work():\n"
        "    start = time.perf_counter()\n"
        "    print('took', time.perf_counter() - start)\n")
    found = _violations(bad)
    assert len(found) == 3
    assert sum("print()" in why for _, why in found) == 1
    assert sum("perf_counter" in why for _, why in found) == 2


def test_allow_flags_suppress_matching_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nprint(time.perf_counter())\n")
    assert len(_violations(bad)) == 2
    assert len(_violations(bad, allow_print=True)) == 1
    assert len(_violations(bad, allow_clock=True)) == 1
    assert _violations(bad, allow_print=True, allow_clock=True) == []
