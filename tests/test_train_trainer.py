"""Tests for the shared training loop."""

import numpy as np
import pytest

from repro.models import build_model
from repro.train import ModelConfig, TrainConfig, Trainer, fit_model


class TestTrainer:
    def test_history_length(self, small_dataset, fast_model_config):
        model = build_model("lightgcn", small_dataset, fast_model_config)
        cfg = TrainConfig(epochs=4, batch_size=64, eval_every=2)
        result = fit_model(model, small_dataset, cfg, seed=0)
        assert len(result.history) == 4
        assert all(rec.epoch == i + 1 for i, rec in
                   enumerate(result.history))

    def test_eval_cadence(self, small_dataset, fast_model_config):
        model = build_model("lightgcn", small_dataset, fast_model_config)
        cfg = TrainConfig(epochs=6, batch_size=64, eval_every=3)
        result = fit_model(model, small_dataset, cfg, seed=0)
        evaluated = [rec.epoch for rec in result.history if rec.metrics]
        assert evaluated == [3, 6]

    def test_loss_decreases(self, small_dataset, fast_model_config):
        model = build_model("biasmf", small_dataset, fast_model_config)
        cfg = TrainConfig(epochs=10, batch_size=128, eval_every=10)
        result = fit_model(model, small_dataset, cfg, seed=0)
        first = np.mean([r.loss for r in result.history[:3]])
        last = np.mean([r.loss for r in result.history[-3:]])
        assert last < first

    def test_training_beats_random_scores(self, small_dataset,
                                          fast_model_config):
        # recall@5: on the 50-item tiny catalogue random@20 is ~0.5, so the
        # discriminative cut-off has to be small
        from repro.eval import evaluate_scores
        model = build_model("lightgcn", small_dataset, fast_model_config)
        cfg = TrainConfig(epochs=30, batch_size=128, eval_every=10,
                          eval_ks=(5,), eval_metrics=("recall",),
                          early_stop_metric="recall@5")
        result = fit_model(model, small_dataset, cfg, seed=0)
        rng = np.random.default_rng(0)
        random_recalls = []
        for _ in range(5):  # average several draws: single draws are noisy
            random_scores = rng.normal(size=(small_dataset.num_users,
                                             small_dataset.num_items))
            random_recalls.append(evaluate_scores(
                random_scores, small_dataset, ks=(5,),
                metrics=("recall",))["recall@5"])
        assert result.best_metrics["recall@5"] > np.mean(random_recalls)

    def test_wall_time_monotone(self, small_dataset, fast_model_config):
        model = build_model("biasmf", small_dataset, fast_model_config)
        cfg = TrainConfig(epochs=3, batch_size=64, eval_every=3)
        result = fit_model(model, small_dataset, cfg, seed=0)
        times = [rec.wall_time for rec in result.history]
        assert times == sorted(times)
        assert result.train_seconds >= times[-1] - 1e-9

    def test_early_stopping(self, small_dataset, fast_model_config):
        model = build_model("biasmf", small_dataset, fast_model_config)
        cfg = TrainConfig(epochs=50, batch_size=64, eval_every=1,
                          early_stop_patience=2)
        result = fit_model(model, small_dataset, cfg, seed=0)
        assert len(result.history) < 50

    def test_metric_curve(self, small_dataset, fast_model_config):
        model = build_model("lightgcn", small_dataset, fast_model_config)
        cfg = TrainConfig(epochs=4, batch_size=64, eval_every=2)
        result = fit_model(model, small_dataset, cfg, seed=0)
        curve = result.metric_curve("recall@20")
        assert len(curve) == 2

    def test_final_metrics_nonempty(self, small_dataset, fast_model_config):
        model = build_model("lightgcn", small_dataset, fast_model_config)
        cfg = TrainConfig(epochs=2, batch_size=64, eval_every=1)
        result = fit_model(model, small_dataset, cfg, seed=0)
        assert "recall@20" in result.final_metrics()

    def test_eval_never_during_training_still_reports(self, small_dataset,
                                                      fast_model_config):
        model = build_model("biasmf", small_dataset, fast_model_config)
        cfg = TrainConfig(epochs=2, batch_size=64, eval_every=100)
        result = fit_model(model, small_dataset, cfg, seed=0)
        assert result.best_metrics  # fallback evaluation at the end

    def test_deterministic_given_seed(self, small_dataset,
                                      fast_model_config):
        results = []
        for _ in range(2):
            model = build_model("lightgcn", small_dataset,
                                fast_model_config, seed=3)
            cfg = TrainConfig(epochs=3, batch_size=64, eval_every=3)
            results.append(fit_model(model, small_dataset, cfg, seed=3))
        assert results[0].best_metrics == results[1].best_metrics
        assert [r.loss for r in results[0].history] == \
            [r.loss for r in results[1].history]


class TestHotpathTimings:
    def test_sampler_seconds_recorded(self, small_dataset,
                                      fast_model_config):
        model = build_model("biasmf", small_dataset, fast_model_config,
                            seed=0)
        cfg = TrainConfig(epochs=2, batch_size=64, eval_every=2)
        result = fit_model(model, small_dataset, cfg, seed=0)
        assert result.sampler_seconds > 0.0
        assert result.sampler_seconds <= result.train_seconds

    def test_spmm_seconds_zero_without_profiling(self, small_dataset,
                                                 fast_model_config):
        model = build_model("lightgcn", small_dataset, fast_model_config,
                            seed=0)
        cfg = TrainConfig(epochs=1, batch_size=64, eval_every=1)
        result = fit_model(model, small_dataset, cfg, seed=0)
        assert result.spmm_seconds == 0.0

    def test_spmm_seconds_with_profiling(self, small_dataset,
                                         fast_model_config):
        from repro.autograd import enable_spmm_profiling
        model = build_model("lightgcn", small_dataset, fast_model_config,
                            seed=0)
        cfg = TrainConfig(epochs=1, batch_size=64, eval_every=1)
        enable_spmm_profiling(True)
        try:
            result = fit_model(model, small_dataset, cfg, seed=0)
        finally:
            enable_spmm_profiling(False)
        assert result.spmm_seconds > 0.0


class TestConfigs:
    def test_with_overrides(self):
        cfg = ModelConfig().with_overrides(embedding_dim=8)
        assert cfg.embedding_dim == 8
        assert ModelConfig().embedding_dim == 32  # original untouched

    def test_train_config_overrides(self):
        cfg = TrainConfig().with_overrides(epochs=99)
        assert cfg.epochs == 99
