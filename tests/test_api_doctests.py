"""Tier-1 doctest lane for the ``repro.api`` facade and autograd registry.

Every public symbol of the facade — and of the autograd primitive/VJP
registry surface — carries a doctested example; this module executes
them all as part of the fast suite, so the examples in the docstrings
can never rot.  The same examples run standalone via::

    PYTHONPATH=src python -m pytest --doctest-modules src/repro/api
    PYTHONPATH=src python -m pytest --doctest-modules \\
        src/repro/autograd/primitives.py src/repro/autograd/fused.py
"""

import doctest
import importlib

import pytest

API_MODULES = ("repro.api", "repro.api.spec", "repro.api.experiment",
               "repro.api.rundir", "repro.api.sweep",
               "repro.autograd.primitives", "repro.autograd.fused")

#: facade symbols that must ship a doctested example, per the docs
#: contract (module name -> attribute)
REQUIRED_EXAMPLES = (
    ("repro.api.spec", "ExperimentSpec"),
    ("repro.api.experiment", "Experiment"),
    ("repro.api.experiment", "RunResult"),
    ("repro.api.experiment", "recommend_topk"),
    ("repro.api.sweep", "SweepRunner"),
    ("repro.api.sweep", "run_sweep"),
    ("repro.api.sweep", "expand_grid"),
    ("repro.autograd.primitives", "primitive"),
    ("repro.autograd.primitives", "defvjp"),
    ("repro.autograd.primitives", "use_backend"),
    ("repro.autograd.fused", "fused_bpr_loss"),
    ("repro.autograd.fused", "light_propagate"),
)

OPTION_FLAGS = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE


@pytest.mark.parametrize("name", API_MODULES)
def test_module_doctests_pass(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, optionflags=OPTION_FLAGS,
                             verbose=False)
    assert result.failed == 0, (
        f"{result.failed} doctest failure(s) in {name}")


@pytest.mark.parametrize("module_name,symbol", REQUIRED_EXAMPLES,
                         ids=[f"{m}.{s}" for m, s in REQUIRED_EXAMPLES])
def test_public_symbol_has_doctested_example(module_name, symbol):
    obj = getattr(importlib.import_module(module_name), symbol)
    examples = [test for test in doctest.DocTestFinder().find(obj)
                if test.examples]
    assert examples, (
        f"{module_name}.{symbol} has no doctested example in its "
        "docstring (the repro.api docs contract requires one)")
