"""Tests for the Module/Parameter system and layers."""

import numpy as np
import pytest

from repro.autograd import (Embedding, Linear, MLP, Module, Parameter,
                            Sequential, Tensor, gradcheck)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModuleRegistration:
    def test_parameters_recursion(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(3, 4, rng)
                self.scale = Parameter(np.ones(1))

        net = Net()
        params = list(net.parameters())
        assert len(params) == 3  # weight, bias, scale
        assert all(p.requires_grad for p in params)

    def test_no_duplicate_parameters(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 2, rng)
                self.b = self.a  # alias, must not double-count

        assert len(list(Net().parameters())) == 2

    def test_named_parameters(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.inner = Linear(2, 3, rng)

        names = dict(Net().named_parameters())
        assert "inner.weight" in names
        assert "inner.bias" in names

    def test_zero_grad(self, rng):
        layer = Linear(3, 2, rng)
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self, rng):
        net = Sequential(Linear(2, 2, rng), Linear(2, 2, rng))
        net.eval()
        assert not net.training
        assert not net.layer_0.training
        net.train()
        assert net.layer_1.training

    def test_num_parameters(self, rng):
        layer = Linear(3, 4, rng)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_state_dict_roundtrip(self, rng):
        a = Linear(3, 4, rng)
        b = Linear(3, 4, np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_shape_mismatch(self, rng):
        a = Linear(3, 4, rng)
        bad = {k: np.zeros((1, 1)) for k in a.state_dict()}
        with pytest.raises(ValueError):
            a.load_state_dict(bad)

    def test_state_dict_missing_key(self, rng):
        a = Linear(3, 4, rng)
        with pytest.raises(KeyError):
            a.load_state_dict({})


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(5, 3, rng)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, rng, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_gradcheck_through_layer(self, rng):
        layer = Linear(3, 2, rng)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)),
                   requires_grad=True)
        assert gradcheck(
            lambda w, b: (layer(x) ** 2).sum(),
            [layer.weight, layer.bias])


class TestMLP:
    def test_depth(self, rng):
        mlp = MLP([4, 8, 8, 2], rng)
        out = mlp(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)

    def test_needs_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_final_activation(self, rng):
        mlp = MLP([4, 2], rng, final_activation=Tensor.sigmoid)
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(5, 4))))
        assert ((out.data > 0) & (out.data < 1)).all()

    def test_gradients_flow_to_all_layers(self, rng):
        mlp = MLP([3, 5, 1], rng)
        out = mlp(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        for param in mlp.parameters():
            assert param.grad is not None


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([0, 3, 3, 9]))
        assert out.shape == (4, 4)

    def test_gradient_scatter(self, rng):
        emb = Embedding(5, 2, rng)
        out = emb(np.array([1, 1, 2])).sum()
        out.backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[2], [1.0, 1.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])

    def test_all_returns_full_table(self, rng):
        emb = Embedding(6, 3, rng)
        assert emb.all() is emb.weight


class TestSequential:
    def test_mixed_callables(self, rng):
        net = Sequential(Linear(3, 3, rng), Tensor.relu, Linear(3, 1, rng))
        out = net(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 1)
        assert len(list(net.parameters())) == 4
