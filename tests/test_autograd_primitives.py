"""Combo-check sweep over the primitive registry.

The classic ``autograd``-package discipline: every operation "must be
primitive, have gradient implemented" — so this module sweeps **every
registered primitive** through finite-difference :func:`gradcheck`
across dtypes and broadcast shapes, and a completeness check fails the
build when a primitive is registered without a combo case (or a VJP).
An op added without a gradient cannot slip through silently.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import (Tensor, concat, defvjp, fused_bpr_loss,
                            fused_bpr_scores, gradcheck, light_propagate,
                            list_primitives, primitive, spmm, stack,
                            unregister_primitive, weighted_spmm, where)
from repro.autograd.primitives import get_primitive


def _arr(shape, seed, positive=False, spread=False):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    if spread:  # distinct magnitudes: keeps max/abs/relu away from ties
        data = data + np.linspace(0.3, 2.7, num=int(np.prod(shape))
                                  ).reshape(shape) * np.sign(data + 1e-9)
    if positive:
        data = np.abs(data) + 0.5
    return data


def _scalarize(out: Tensor) -> Tensor:
    """Deterministic scalar head for non-scalar primitive outputs."""
    w = np.random.default_rng(out.data.size).normal(size=out.shape)
    return (out * Tensor(w.astype(out.data.dtype))).sum()


_ADJ = sp.random(6, 6, density=0.4, random_state=7, format="csr")
_WS_ROWS = np.array([0, 1, 2, 2, 3], dtype=np.int64)
_WS_COLS = np.array([1, 2, 0, 3, 1], dtype=np.int64)
_WS_DUP_ROWS = np.array([0, 1, 0], dtype=np.int64)
_WS_DUP_COLS = np.array([1, 2, 1], dtype=np.int64)  # duplicate (0, 1)
_COND = np.random.default_rng(21).random((3, 4)) > 0.5


#: primitive name -> list of (case_id, fn, input specs); every input spec
#: is (shape, seed, kwargs-for-_arr) and becomes a requires_grad Tensor
CASES = {
    "add": [
        ("same", lambda a, b: _scalarize(a + b),
         [((3, 4), 0, {}), ((3, 4), 1, {})]),
        ("bcast-row", lambda a, b: _scalarize(a + b),
         [((3, 4), 2, {}), ((4,), 3, {})]),
        ("bcast-outer", lambda a, b: _scalarize(a + b),
         [((3, 1), 4, {}), ((1, 4), 5, {})]),
    ],
    "neg": [("basic", lambda a: _scalarize(-a), [((3, 4), 6, {})])],
    "mul": [
        ("same", lambda a, b: _scalarize(a * b),
         [((3, 4), 7, {}), ((3, 4), 8, {})]),
        ("bcast", lambda a, b: _scalarize(a * b),
         [((3, 1), 9, {}), ((1, 4), 10, {})]),
        ("scalar", lambda a: _scalarize(a * 2.5), [((3, 4), 11, {})]),
    ],
    "div": [
        ("same", lambda a, b: _scalarize(a / b),
         [((3, 4), 12, {}), ((3, 4), 13, {"positive": True})]),
        ("bcast", lambda a, b: _scalarize(a / b),
         [((3, 4), 14, {}), ((4,), 15, {"positive": True})]),
    ],
    "pow": [("fractional", lambda a: _scalarize(a ** 2.5),
             [((3, 4), 16, {"positive": True})])],
    "exp": [("basic", lambda a: _scalarize(a.exp()), [((3, 4), 17, {})])],
    "log": [("basic", lambda a: _scalarize(a.log()),
             [((3, 4), 18, {"positive": True})])],
    "sqrt": [("basic", lambda a: _scalarize(a.sqrt()),
              [((3, 4), 19, {"positive": True})])],
    "sigmoid": [("basic", lambda a: _scalarize(a.sigmoid()),
                 [((3, 4), 20, {})])],
    "tanh": [("basic", lambda a: _scalarize(a.tanh()), [((3, 4), 21, {})])],
    "relu": [("basic", lambda a: _scalarize(a.relu()),
              [((3, 4), 22, {"spread": True})])],
    "leaky_relu": [("slope", lambda a: _scalarize(a.leaky_relu(0.3)),
                    [((3, 4), 23, {"spread": True})])],
    "softplus": [("basic", lambda a: _scalarize(a.softplus()),
                  [((3, 4), 24, {})])],
    "abs": [("basic", lambda a: _scalarize(a.abs()),
             [((3, 4), 25, {"spread": True})])],
    "clamp": [("both", lambda a: _scalarize(a.clamp(-1.3, 1.3)),
               [((3, 4), 26, {"spread": True})])],
    "sum": [
        ("all", lambda a: a.sum(), [((3, 4), 27, {})]),
        ("axis", lambda a: _scalarize(a.sum(axis=1)), [((3, 4), 28, {})]),
        ("keepdims", lambda a: _scalarize(a.sum(axis=0, keepdims=True)),
         [((3, 4), 29, {})]),
    ],
    "mean": [
        ("all", lambda a: a.mean(), [((3, 4), 30, {})]),
        ("axis", lambda a: _scalarize(a.mean(axis=0)), [((3, 4), 31, {})]),
    ],
    "max": [
        ("all", lambda a: a.max(), [((3, 4), 32, {"spread": True})]),
        ("axis", lambda a: _scalarize(a.max(axis=1)),
         [((3, 4), 33, {"spread": True})]),
    ],
    "logsumexp": [
        ("axis", lambda a: _scalarize(a.logsumexp(axis=1)),
         [((3, 4), 34, {})]),
        ("keepdims", lambda a: _scalarize(a.logsumexp(axis=0,
                                                      keepdims=True)),
         [((3, 4), 35, {})]),
    ],
    "matmul": [
        ("mat-mat", lambda a, b: _scalarize(a @ b),
         [((3, 4), 36, {}), ((4, 5), 37, {})]),
        ("mat-vec", lambda a, b: _scalarize(a @ b),
         [((3, 4), 38, {}), ((4,), 39, {})]),
        ("vec-mat", lambda a, b: _scalarize(a @ b),
         [((4,), 40, {}), ((4, 5), 41, {})]),
    ],
    "transpose": [("basic", lambda a: _scalarize(a.T), [((3, 4), 42, {})])],
    "reshape": [("basic", lambda a: _scalarize(a.reshape(4, 3)),
                 [((3, 4), 43, {})])],
    "take_rows": [("repeated", lambda a: _scalarize(
        a.take_rows(np.array([0, 2, 2, 4, 1]))), [((5, 3), 44, {})])],
    "getitem": [
        ("fancy-pair", lambda a: _scalarize(
            a[np.arange(3), np.arange(3)]), [((3, 4), 45, {})]),
        ("mask", lambda a: _scalarize(a[_COND]), [((3, 4), 46, {})]),
    ],
    "concat": [("axis0", lambda a, b, c: _scalarize(
        concat([a, b, c], axis=0)),
        [((2, 3), 47, {}), ((1, 3), 48, {}), ((3, 3), 49, {})])],
    "stack": [("axis0", lambda a, b: _scalarize(stack([a, b], axis=0)),
               [((3, 4), 50, {}), ((3, 4), 51, {})])],
    "where": [("bcast", lambda a, b: _scalarize(where(_COND, a, b)),
               [((3, 4), 52, {}), ((1, 4), 53, {})])],
    "spmm": [("dense-grad", lambda x: _scalarize(spmm(_ADJ, x)),
              [((6, 3), 54, {})])],
    "weighted_spmm": [
        ("pattern", lambda v, x: _scalarize(
            weighted_spmm(_WS_ROWS, _WS_COLS, v, (4, 4), x)),
         [((5,), 55, {}), ((4, 3), 56, {})]),
        ("duplicates", lambda v, x: _scalarize(
            weighted_spmm(_WS_DUP_ROWS, _WS_DUP_COLS, v, (3, 3), x)),
         [((3,), 57, {}), ((3, 2), 58, {})]),
    ],
    "fused_bpr_loss": [("triplet", fused_bpr_loss,
                        [((7, 5), 59, {}), ((7, 5), 60, {}),
                         ((7, 5), 61, {})])],
    "fused_bpr_scores": [("scores", fused_bpr_scores,
                          [((9,), 62, {}), ((9,), 63, {})])],
    "light_propagate": [("two-layer", lambda e: _scalarize(
        light_propagate(_ADJ, e, 2)), [((6, 3), 64, {})])],
}

SWEEP = [(name, case_id, fn, specs)
         for name, cases in sorted(CASES.items())
         for case_id, fn, specs in cases]
SWEEP_IDS = [f"{name}-{case_id}" for name, case_id, _, _ in SWEEP]


def _build_inputs(specs, dtype):
    return tuple(Tensor(_arr(shape, seed, **kw).astype(dtype),
                        requires_grad=True)
                 for shape, seed, kw in specs)


class TestComboSweep:
    @pytest.mark.parametrize("name,case_id,fn,specs", SWEEP, ids=SWEEP_IDS)
    def test_float64_gradcheck(self, name, case_id, fn, specs):
        inputs = _build_inputs(specs, np.float64)
        assert gradcheck(fn, inputs)

    @pytest.mark.parametrize("name,case_id,fn,specs", SWEEP, ids=SWEEP_IDS)
    def test_float32_matches_float64_analytic(self, name, case_id, fn,
                                              specs):
        ref = _build_inputs(specs, np.float64)
        fn(*ref).backward()
        low = _build_inputs(specs, np.float32)
        out = fn(*low)
        assert out.data.dtype == np.float32  # no silent promotion
        out.backward()
        for t64, t32 in zip(ref, low):
            assert t32.grad.dtype == np.float32
            np.testing.assert_allclose(t32.grad, t64.grad,
                                       rtol=2e-3, atol=2e-4)


class TestRegistryCompleteness:
    def test_every_primitive_has_a_combo_case(self):
        missing = set(list_primitives()) - set(CASES)
        assert not missing, (
            f"primitives registered without a combo-check case: "
            f"{sorted(missing)} — add one to CASES so its VJPs are swept")

    def test_every_case_names_a_registered_primitive(self):
        stale = set(CASES) - set(list_primitives())
        assert not stale, f"combo cases for unregistered primitives: {stale}"

    def test_every_differentiable_primitive_has_vjps(self):
        missing = [name for name in list_primitives()
                   if not get_primitive(name).vjps]
        assert not missing, f"primitives with no VJPs at all: {missing}"


class TestLoudFailures:
    def test_missing_vjp_raises_not_implemented(self):
        prim = primitive("_test_no_vjp")(lambda x: x * 2.0)
        try:
            out = prim(Tensor(np.ones(3), requires_grad=True))
            with pytest.raises(NotImplementedError, match="_test_no_vjp"):
                out.sum().backward()
        finally:
            unregister_primitive("_test_no_vjp")

    def test_partial_vjp_raises_for_uncovered_argument(self):
        prim = primitive("_test_partial_vjp")(lambda a, b: a + b)
        defvjp("_test_partial_vjp", lambda g, ans, a, b: g)  # arg 0 only
        try:
            x = Tensor(np.ones(3), requires_grad=True)
            y = Tensor(np.ones(3), requires_grad=True)
            with pytest.raises(NotImplementedError, match="argument 1"):
                prim(x, y).sum().backward()
        finally:
            unregister_primitive("_test_partial_vjp")

    def test_wrong_vjp_fails_gradcheck(self):
        prim = primitive("_test_wrong_vjp")(lambda x: x * 3.0)
        defvjp("_test_wrong_vjp", lambda g, ans, x: g * 2.0)  # should be 3
        try:
            x = Tensor(np.random.default_rng(0).normal(size=4),
                       requires_grad=True)
            with pytest.raises(AssertionError, match="gradient mismatch"):
                gradcheck(lambda t: prim(t).sum(), (x,))
        finally:
            unregister_primitive("_test_wrong_vjp")

    def test_unknown_primitive_lookup_names_roster(self):
        with pytest.raises(KeyError, match="no primitive named"):
            get_primitive("_never_registered")
