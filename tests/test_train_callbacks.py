"""Tests for checkpointing and history export."""

import csv
import json

import numpy as np
import pytest

from repro.models import build_model
from repro.train import (BestCheckpoint, ModelConfig, TrainConfig,
                         fit_model, history_to_csv, history_to_json,
                         load_state, save_state)


@pytest.fixture(scope="module")
def trained(small_dataset_module):
    dataset = small_dataset_module
    model = build_model("lightgcn", dataset,
                        ModelConfig(embedding_dim=8, num_layers=2), seed=0)
    result = fit_model(model, dataset,
                       TrainConfig(epochs=4, batch_size=64, eval_every=2),
                       seed=0)
    return dataset, model, result


@pytest.fixture(scope="module")
def small_dataset_module():
    from repro.data import tiny_dataset
    return tiny_dataset(seed=111)


class TestStatePersistence:
    def test_roundtrip(self, trained, tmp_path):
        _, model, _ = trained
        path = str(tmp_path / "state.npz")
        save_state(model.state_dict(), path)
        loaded = load_state(path)
        for name, value in model.state_dict().items():
            np.testing.assert_allclose(loaded[name], value)

    def test_load_into_fresh_model(self, trained, tmp_path,
                                   small_dataset_module):
        _, model, _ = trained
        path = str(tmp_path / "state.npz")
        save_state(model.state_dict(), path)
        fresh = build_model("lightgcn", small_dataset_module,
                            ModelConfig(embedding_dim=8, num_layers=2),
                            seed=99)
        fresh.load_state_dict(load_state(path))
        np.testing.assert_allclose(fresh.score_all_users(),
                                   model.score_all_users())


class TestBestCheckpoint:
    def test_tracks_best(self, trained):
        _, model, _ = trained
        ckpt = BestCheckpoint(metric="recall@20")
        assert ckpt.update(model, {"recall@20": 0.5})
        assert not ckpt.update(model, {"recall@20": 0.4})
        assert ckpt.update(model, {"recall@20": 0.6})
        assert ckpt.best_value == 0.6

    def test_restore(self, trained, small_dataset_module):
        _, model, _ = trained
        ckpt = BestCheckpoint()
        ckpt.update(model, {"recall@20": 1.0})
        before = model.score_all_users().copy()
        model.user_emb.weight.data += 1.0  # corrupt
        ckpt.restore(model)
        np.testing.assert_allclose(model.score_all_users(), before)

    def test_restore_without_update_raises(self, trained):
        _, model, _ = trained
        with pytest.raises(RuntimeError):
            BestCheckpoint().restore(model)

    def test_missing_metric_ignored(self, trained):
        _, model, _ = trained
        ckpt = BestCheckpoint(metric="recall@20")
        assert not ckpt.update(model, {"ndcg@20": 0.9})


class TestHistoryExport:
    def test_csv(self, trained, tmp_path):
        _, _, result = trained
        path = str(tmp_path / "history.csv")
        history_to_csv(result, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][:3] == ["epoch", "loss", "wall_time"]
        assert len(rows) == len(result.history) + 1

    def test_json(self, trained, tmp_path):
        _, _, result = trained
        path = str(tmp_path / "history.json")
        history_to_json(result, path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["best_epoch"] == result.best_epoch
        assert len(payload["history"]) == len(result.history)
