"""Tests for dataset file round-trips and registry-driven resolution."""

import numpy as np
import pytest

from repro.data import (available_datasets, load_npz, load_tsv,
                        resolve_dataset, save_npz, save_tsv, tiny_dataset)


class TestResolveDataset:
    def test_registered_names(self):
        assert {"gowalla", "retail_rocket", "amazon", "tiny"} <= \
            set(available_datasets())
        ds = resolve_dataset("tiny", seed=3)
        assert ds.name == "tiny"
        # same (name, seed) resolves to an identical dataset
        again = resolve_dataset("tiny", seed=3)
        assert (ds.train.matrix != again.train.matrix).nnz == 0

    def test_tsv_path(self, tmp_path):
        path = str(tmp_path / "edges.tsv")
        save_tsv(tiny_dataset(seed=6), path)
        ds = resolve_dataset(path, seed=0, test_fraction=0.25)
        assert ds.num_users > 0

    def test_npz_path(self, tmp_path):
        path = str(tmp_path / "data.npz")
        save_npz(tiny_dataset(seed=5), path)
        loaded = resolve_dataset(path)
        assert loaded.name == "tiny"

    def test_npz_rejects_loader_options(self, tmp_path):
        # the split is baked into the artifact; options must not be
        # silently dropped
        path = str(tmp_path / "data.npz")
        save_npz(tiny_dataset(seed=5), path)
        with pytest.raises(ValueError, match="test_fraction"):
            resolve_dataset(path, test_fraction=0.3)

    def test_unresolvable_name(self):
        with pytest.raises(ValueError, match="cannot resolve dataset"):
            resolve_dataset("no-such-dataset")


class TestNpzRoundtrip:
    def test_full_roundtrip(self, tmp_path):
        ds = tiny_dataset(seed=5)
        path = str(tmp_path / "data.npz")
        save_npz(ds, path)
        loaded = load_npz(path)
        assert loaded.name == ds.name
        assert (loaded.train.matrix != ds.train.matrix).nnz == 0
        assert (loaded.test_matrix != ds.test_matrix).nnz == 0
        np.testing.assert_allclose(loaded.user_factors, ds.user_factors)
        np.testing.assert_array_equal(loaded.item_categories,
                                      ds.item_categories)


class TestTsvRoundtrip:
    def test_save_then_load(self, tmp_path):
        ds = tiny_dataset(seed=6)
        path = str(tmp_path / "edges.tsv")
        save_tsv(ds, path, include_test=True)
        loaded = load_tsv(path, name="tiny2", test_fraction=0.2, seed=0)
        assert loaded.name == "tiny2"
        total = (loaded.num_train_interactions
                 + loaded.num_test_interactions)
        expected = ds.num_train_interactions + ds.num_test_interactions
        assert total == expected

    def test_load_with_string_ids(self, tmp_path):
        path = tmp_path / "raw.tsv"
        path.write_text("alice item_1\nalice item_2\nbob item_2\n"
                        "# comment\n\ncarol item_3\n")
        ds = load_tsv(str(path), test_fraction=0.3, seed=0)
        assert ds.num_users == 3
        assert ds.num_items == 3

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only_one_token\n")
        with pytest.raises(ValueError):
            load_tsv(str(path))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError):
            load_tsv(str(path))

    def test_min_interactions_filter(self, tmp_path):
        path = tmp_path / "filter.tsv"
        lines = [f"heavy item_{i}" for i in range(10)]
        lines.append("light item_0")
        path.write_text("\n".join(lines) + "\n")
        ds = load_tsv(str(path), min_interactions=5, test_fraction=0.2,
                      seed=0)
        assert ds.num_users == 1
