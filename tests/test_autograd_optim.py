"""Tests for the optimizers and lr scheduling."""

import numpy as np
import pytest

from repro.autograd import (Adam, AdamW, ExponentialLR, Parameter, SGD,
                            Tensor)


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def step_quadratic(param, optimizer, steps):
    """Minimize f(x) = x^2 with the given optimizer."""
    for _ in range(steps):
        loss = (param * param).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return abs(param.data[0])


class TestSGD:
    def test_minimizes_quadratic(self):
        p = quadratic_param()
        assert step_quadratic(p, SGD([p], lr=0.1), 100) < 1e-4

    def test_momentum_faster_than_plain(self):
        p1, p2 = quadratic_param(), quadratic_param()
        plain = step_quadratic(p1, SGD([p1], lr=0.01), 50)
        momentum = step_quadratic(p2, SGD([p2], lr=0.01, momentum=0.9), 50)
        assert momentum < plain

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(3))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        # zero gradient loss: decay alone should shrink the weights
        loss = (p * 0.0).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert (np.abs(p.data) < 1.0).all()

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=-0.1)

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad yet: must be a no-op, not a crash
        assert p.data[0] == 5.0


class TestAdam:
    def test_minimizes_quadratic(self):
        p = quadratic_param()
        assert step_quadratic(p, Adam([p], lr=0.2), 200) < 1e-3

    def test_bias_correction_first_step(self):
        # after one step with g=const, update should be ~lr*sign(g)
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        (p * 2.0).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1, abs=1e-6)

    def test_handles_multiple_params(self):
        a, b = quadratic_param(2.0), quadratic_param(-3.0)
        opt = Adam([a, b], lr=0.3)
        for _ in range(150):
            loss = (a * a).sum() + (b * b).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert abs(a.data[0]) < 1e-2 and abs(b.data[0]) < 1e-2


class TestAdamW:
    def test_decoupled_decay_applies(self):
        p = Parameter(np.ones(2))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        (p.sum() * 0.0 + 0.0 * p.sum()).backward()
        opt.step()
        # decay shrinks by lr*wd even with ~zero gradient
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5, abs=1e-6)

    def test_weight_decay_preserved_after_step(self):
        p = quadratic_param()
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        (p * p).sum().backward()
        opt.step()
        assert opt.weight_decay == 0.5  # restored after the internal swap


class TestExponentialLR:
    def test_decay(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert opt.lr == 0.5
        sched.step()
        assert opt.lr == 0.25

    def test_min_lr_floor(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = ExponentialLR(opt, gamma=0.1, min_lr=0.05)
        for _ in range(10):
            sched.step()
        assert opt.lr == 0.05
