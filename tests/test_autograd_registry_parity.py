"""End-to-end parity and backend-table contracts for the registry tape.

Three guarantees the autograd refactor must keep:

* **Bit-identity of the default path** — committed golden
  ``run_dir_fingerprint`` values, captured on the pre-registry closure
  tape, must be reproduced exactly by the registry-based tape (same
  float ops in the same order, VJPs included).
* **Fused-kernel equivalence** — the opt-in fused BPR / propagate
  kernels match the composed graphs (bit-identical forward for
  ``light_propagate``, float tolerance elsewhere) and train to the same
  place.
* **Backend table semantics** — per-primitive selection, scoping,
  fallback to reference, and env-string parsing.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import Experiment, ExperimentSpec, run_dir_fingerprint
from repro.autograd import (Tensor, defimpl, defvjp, enable_spmm_profiling,
                            fused_bpr_loss, fused_bpr_scores,
                            light_propagate, primitive, selected_backend,
                            set_default_backend, set_primitive_backend,
                            unregister_primitive, use_backend,
                            fused_kernels_enabled, functional as F)
from repro.autograd.primitives import configure_from_env
from repro.data import tiny_dataset
from repro.models import build_model
from repro.models.base import light_gcn_propagate
from repro.train import ModelConfig, TrainConfig, fit_model

#: fingerprints of 5-epoch gowalla runs captured on the pre-refactor
#: closure-based tape (seed 0, d=16, L=2, batch 256).  The registry tape
#: must reproduce them bit-for-bit: spec echo, per-epoch losses, metrics
#: and probe outputs all hash in.
GOLDEN_FINGERPRINTS = {
    "lightgcn": ("9f018e3f8018074708708920764b25b7"
                 "0aae66fc106ef881a266f8080e310db7"),
    "sgl": ("06538d6d51508b0bceb02ce10d5bedd2"
            "5982ae1b1b3b06eca6846dfb81a5a52d"),
    "ngcf": ("9703ee99eeffb8d1e9cf797b14b7eda4"
             "9972d118f08124ab2c4cd595b3295d22"),
}


class TestGoldenFingerprints:
    @pytest.mark.parametrize("model", sorted(GOLDEN_FINGERPRINTS))
    def test_registry_tape_is_bit_identical_to_closure_tape(self, model,
                                                            tmp_path):
        spec = ExperimentSpec(
            model=model, dataset="gowalla", seed=0,
            model_config={"embedding_dim": 16, "num_layers": 2},
            train_config={"epochs": 5, "batch_size": 256, "eval_every": 5})
        result = Experiment(spec).run(run_dir=str(tmp_path / model))
        assert run_dir_fingerprint(result.run_dir) == \
            GOLDEN_FINGERPRINTS[model]


def _triplet(seed, n=32, d=8):
    rng = np.random.default_rng(seed)
    return tuple(Tensor(rng.normal(size=(n, d)), requires_grad=True)
                 for _ in range(3))


class TestFusedParity:
    def test_fused_bpr_loss_matches_composed(self):
        u, vp, vn = _triplet(0)
        composed = F.bpr_loss((u * vp).sum(axis=1), (u * vn).sum(axis=1))
        composed.backward()
        expected = (u.grad.copy(), vp.grad.copy(), vn.grad.copy())
        for t in (u, vp, vn):
            t.zero_grad()
        fused = fused_bpr_loss(u, vp, vn)
        fused.backward()
        np.testing.assert_allclose(fused.data, composed.data, rtol=1e-12)
        for got, want in zip((u.grad, vp.grad, vn.grad), expected):
            np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)

    def test_fused_bpr_scores_matches_composed(self):
        rng = np.random.default_rng(3)
        pos = Tensor(rng.normal(size=64), requires_grad=True)
        neg = Tensor(rng.normal(size=64), requires_grad=True)
        composed = F.bpr_loss(pos, neg)
        composed.backward()
        expected = (pos.grad.copy(), neg.grad.copy())
        pos.zero_grad(), neg.zero_grad()
        fused = fused_bpr_scores(pos, neg)
        fused.backward()
        np.testing.assert_allclose(fused.data, composed.data, rtol=1e-12)
        for got, want in zip((pos.grad, neg.grad), expected):
            np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)

    def test_light_propagate_forward_bit_identical(self):
        adj = sp.random(10, 10, density=0.3, random_state=5, format="csr")
        ego = Tensor(np.random.default_rng(5).normal(size=(10, 4)),
                     requires_grad=True)
        composed = light_gcn_propagate(adj, ego, 3)
        fused = light_propagate(adj, ego, 3)
        # same csr matvecs in the same order: bit-for-bit, not just close
        np.testing.assert_array_equal(fused.data, composed.data)

    def test_light_propagate_backward_matches_composed(self):
        adj = sp.random(10, 10, density=0.3, random_state=6, format="csr")
        data = np.random.default_rng(6).normal(size=(10, 4))
        head = np.random.default_rng(7).normal(size=(10, 4))
        ego_a = Tensor(data.copy(), requires_grad=True)
        (light_gcn_propagate(adj, ego_a, 3) * Tensor(head)).sum().backward()
        ego_b = Tensor(data.copy(), requires_grad=True)
        (light_propagate(adj, ego_b, 3) * Tensor(head)).sum().backward()
        np.testing.assert_allclose(ego_b.grad, ego_a.grad,
                                   rtol=1e-9, atol=1e-12)

    def test_training_with_fused_backend_matches_reference(self):
        dataset = tiny_dataset(seed=2)
        losses = {}
        metrics = {}
        for backend in (None, "fused"):
            model = build_model("lightgcn", dataset,
                                ModelConfig(embedding_dim=8, num_layers=2),
                                seed=2)
            cfg = TrainConfig(epochs=3, batch_size=128, eval_every=3,
                              autograd_backend=backend)
            fit = fit_model(model, dataset, cfg, seed=2)
            losses[backend] = [rec.loss for rec in fit.history]
            metrics[backend] = fit.best_metrics
        # gradient accumulation order differs, float values must not
        np.testing.assert_allclose(losses["fused"], losses[None],
                                   rtol=1e-6)
        assert metrics["fused"].keys() == metrics[None].keys()
        for key, want in metrics[None].items():
            assert metrics["fused"][key] == pytest.approx(want, abs=1e-6)


class TestBackendTable:
    def test_defimpl_selection_and_fallback(self):
        prim = primitive("_bt_double")(lambda x: x * 2.0)
        defvjp("_bt_double", lambda g, ans, x: g * 2.0)
        defimpl("_bt_double", "turbo")(lambda x: x + x)
        try:
            x = Tensor(np.arange(3.0))
            assert prim.impl() is prim.impls["reference"]
            with use_backend("turbo"):
                assert selected_backend("_bt_double") == "turbo"
                assert prim.impl() is prim.impls["turbo"]
                np.testing.assert_array_equal(prim(x).data, [0.0, 2.0, 4.0])
            with use_backend("nonexistent"):
                # selected backend has no impl: resolution falls back
                assert prim.impl() is prim.impls["reference"]
            assert selected_backend("_bt_double") == "reference"
        finally:
            unregister_primitive("_bt_double")

    def test_per_primitive_override_beats_default(self):
        try:
            set_primitive_backend("spmm", "fused")
            assert selected_backend("spmm") == "fused"
            assert selected_backend("matmul") == "reference"
            with use_backend("other"):
                # the global default moves; the pin does not
                assert selected_backend("spmm") == "fused"
                assert selected_backend("matmul") == "other"
        finally:
            set_primitive_backend("spmm", None)
        assert selected_backend("spmm") == "reference"

    def test_use_backend_scoped_to_primitives(self):
        with use_backend("fused", primitives=("light_propagate",)):
            assert fused_kernels_enabled("light_propagate")
            assert not fused_kernels_enabled("fused_bpr_loss")
        assert not fused_kernels_enabled("light_propagate")

    def test_env_spec_parsing(self):
        try:
            configure_from_env("fused")
            assert selected_backend("fused_bpr_loss") == "fused"
            configure_from_env(
                "reference,light_propagate=fused, spmm = reference ")
            assert selected_backend("light_propagate") == "fused"
            assert selected_backend("spmm") == "reference"
            assert selected_backend("fused_bpr_loss") == "reference"
        finally:
            set_default_backend("reference")
            set_primitive_backend("light_propagate", None)
            set_primitive_backend("spmm", None)

    def test_empty_env_spec_is_noop(self):
        configure_from_env("")
        assert selected_backend("matmul") == "reference"


class TestTrainerIntegration:
    def test_fused_fit_reports_primitive_seconds(self):
        dataset = tiny_dataset(seed=4)
        model = build_model("lightgcn", dataset,
                            ModelConfig(embedding_dim=8, num_layers=2),
                            seed=4)
        cfg = TrainConfig(epochs=2, batch_size=128, eval_every=2,
                          autograd_backend="fused")
        enable_spmm_profiling(True)
        try:
            fit = fit_model(model, dataset, cfg, seed=4)
        finally:
            enable_spmm_profiling(False)
        assert selected_backend("light_propagate") == "reference"  # restored
        # the fused kernels actually ran ...
        assert "light_propagate" in fit.primitive_seconds
        assert "fused_bpr_loss" in fit.primitive_seconds
        # ... and spmm_seconds is the derived family sum
        family = sum(fit.primitive_seconds.get(name, 0.0)
                     for name in ("spmm", "weighted_spmm",
                                  "light_propagate"))
        assert fit.spmm_seconds == pytest.approx(family, rel=1e-6)

    def test_default_fit_records_composed_primitives(self):
        dataset = tiny_dataset(seed=5)
        model = build_model("lightgcn", dataset,
                            ModelConfig(embedding_dim=8, num_layers=2),
                            seed=5)
        enable_spmm_profiling(True)
        try:
            fit = fit_model(model, dataset,
                            TrainConfig(epochs=1, batch_size=128,
                                        eval_every=1), seed=5)
        finally:
            enable_spmm_profiling(False)
        assert "spmm" in fit.primitive_seconds
        assert "light_propagate" not in fit.primitive_seconds
        assert fit.spmm_seconds == pytest.approx(
            fit.primitive_seconds["spmm"], rel=1e-6)
