"""Documentation-contract tests: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = ["repro", "repro.autograd", "repro.graph", "repro.data",
            "repro.eval", "repro.train", "repro.models", "repro.core",
            "repro.serve", "repro.utils", "repro.api", "repro.obs",
            "repro.dispatch"]


def _walk_modules():
    seen = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        seen.append(module)
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                seen.append(importlib.import_module(
                    f"{name}.{info.name}"))
    return seen


MODULES = _walk_modules()


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} is missing a module docstring")


def _public_classes():
    items = []
    for module in MODULES:
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(obj) and obj.__module__ == module.__name__:
                items.append(obj)
    return items


@pytest.mark.parametrize("cls", _public_classes(),
                         ids=lambda c: f"{c.__module__}.{c.__name__}")
def test_public_class_has_docstring(cls):
    assert cls.__doc__ and cls.__doc__.strip(), (
        f"{cls.__module__}.{cls.__name__} is missing a docstring")


def test_public_functions_documented():
    undocumented = []
    for module in MODULES:
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isfunction(obj) and \
                    obj.__module__ == module.__name__:
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, (
        "functions missing docstrings: " + ", ".join(undocumented))
