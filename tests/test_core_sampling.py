"""Tests for reparameterized graph sampling (paper Eq 5)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import build_candidate_edges, sample_view
from repro.data import tiny_dataset


@pytest.fixture(scope="module")
def setup():
    ds = tiny_dataset(seed=51)
    cands = build_candidate_edges(ds.train, np.random.default_rng(0))
    num_nodes = ds.train.num_nodes
    return ds, cands, num_nodes


class TestSampleView:
    def test_threshold_filters(self, setup):
        _, cands, n = setup
        logits = Tensor(np.zeros(len(cands)), requires_grad=True)
        rng = np.random.default_rng(1)
        strict = sample_view(logits, cands, n, rng, threshold=0.8)
        rng = np.random.default_rng(1)
        loose = sample_view(logits, cands, n, rng, threshold=0.1)
        assert strict.keep_mask.sum() < loose.keep_mask.sum()

    def test_high_logits_keep_nearly_all(self, setup):
        _, cands, n = setup
        logits = Tensor(np.full(len(cands), 8.0))
        view = sample_view(logits, cands, n, np.random.default_rng(2),
                           threshold=0.2)
        assert view.keep_mask.mean() > 0.95

    def test_low_logits_drop_nearly_all_but_never_empty(self, setup):
        _, cands, n = setup
        logits = Tensor(np.full(len(cands), -8.0))
        view = sample_view(logits, cands, n, np.random.default_rng(3),
                           threshold=0.9)
        assert view.keep_mask.sum() >= 1
        assert view.keep_mask.mean() < 0.05

    def test_symmetric_pattern(self, setup):
        _, cands, n = setup
        logits = Tensor(np.zeros(len(cands)))
        view = sample_view(logits, cands, n, np.random.default_rng(4))
        pairs = set(zip(view.rows.tolist(), view.cols.tolist()))
        for r, c in list(pairs):
            assert (c, r) in pairs

    def test_two_draws_differ(self, setup):
        """G' and G'' from the same logits must be different samples."""
        _, cands, n = setup
        logits = Tensor(np.zeros(len(cands)))
        rng = np.random.default_rng(5)
        a = sample_view(logits, cands, n, rng, threshold=0.5)
        b = sample_view(logits, cands, n, rng, threshold=0.5)
        assert not np.array_equal(a.keep_mask, b.keep_mask)

    def test_gradient_flows_to_logits(self, setup):
        _, cands, n = setup
        logits = Tensor(np.random.default_rng(6).normal(
            size=len(cands)), requires_grad=True)
        view = sample_view(logits, cands, n, np.random.default_rng(7))
        x = Tensor(np.random.default_rng(8).normal(size=(n, 6)))
        out = view.propagate_fn()(x).sum()
        out.backward()
        assert logits.grad is not None
        assert np.abs(logits.grad).sum() > 0

    def test_propagation_shape(self, setup):
        _, cands, n = setup
        logits = Tensor(np.zeros(len(cands)))
        view = sample_view(logits, cands, n, np.random.default_rng(9))
        x = Tensor(np.ones((n, 4)))
        out = view.propagate_fn()(x)
        assert out.shape == (n, 4)

    def test_soft_scores_recorded(self, setup):
        _, cands, n = setup
        logits = Tensor(np.zeros(len(cands)))
        view = sample_view(logits, cands, n, np.random.default_rng(10))
        assert view.soft_scores.shape == (len(cands),)
        assert ((view.soft_scores > 0) & (view.soft_scores < 1)).all()
