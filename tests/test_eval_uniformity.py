"""Tests for the embedding-distribution statistics (Fig 7 probes)."""

import numpy as np
import pytest

from repro.eval import alignment, pca_projection, radial_spread, uniformity


class TestUniformity:
    def test_collapsed_less_uniform_than_spread(self):
        rng = np.random.default_rng(0)
        collapsed = np.ones((32, 6)) + 0.01 * rng.normal(size=(32, 6))
        spread = rng.normal(size=(32, 6))
        assert uniformity(spread) < uniformity(collapsed)

    def test_value_nonpositive(self):
        rng = np.random.default_rng(1)
        assert uniformity(rng.normal(size=(20, 4))) <= 0.0


class TestAlignment:
    def test_identical_views_zero(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(10, 5))
        assert alignment(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_bounded_by_four(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(10, 5))
        b = rng.normal(size=(10, 5))
        assert 0.0 <= alignment(a, b) <= 4.0


class TestRadialSpread:
    def test_zero_for_constant_norms(self):
        emb = np.eye(5) * 3.0
        assert radial_spread(emb) == pytest.approx(0.0)

    def test_positive_otherwise(self):
        emb = np.diag([1.0, 2.0, 3.0])
        assert radial_spread(emb) > 0


class TestPCA:
    def test_shapes(self):
        rng = np.random.default_rng(4)
        emb = rng.normal(size=(30, 8))
        proj, ratio = pca_projection(emb, num_components=2)
        assert proj.shape == (30, 2)
        assert ratio.shape == (2,)
        assert 0 < ratio.sum() <= 1.0 + 1e-9

    def test_captures_dominant_direction(self):
        rng = np.random.default_rng(5)
        direction = np.array([1.0, 1.0, 0.0, 0.0])
        emb = (rng.normal(size=(100, 1)) * 5.0) * direction[None, :]
        emb += 0.01 * rng.normal(size=(100, 4))
        _, ratio = pca_projection(emb, num_components=1)
        assert ratio[0] > 0.95
