"""Tests for the configurable autograd dtype and gradient-buffer reuse.

float32 is the training hot-path mode; float64 (the default) is preserved
for finite-difference gradient checking.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import (Adam, Embedding, Linear, Tensor, default_dtype,
                            get_default_dtype, gradcheck, ones,
                            set_default_dtype, spmm, weighted_spmm, zeros)


class TestDefaultDtypeConfig:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64

    def test_set_and_restore(self):
        set_default_dtype(np.float32)
        try:
            assert get_default_dtype() == np.float32
        finally:
            set_default_dtype(np.float64)
        assert get_default_dtype() == np.float64

    def test_context_manager_restores_on_exit(self):
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with default_dtype("float32"):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.float64

    def test_rejects_non_float_dtypes(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)
        with pytest.raises(ValueError):
            set_default_dtype(np.float16)


class TestFloat32Mode:
    def test_leaf_coercion(self):
        with default_dtype("float32"):
            assert Tensor([1, 2, 3]).data.dtype == np.float32
            assert zeros(2, 3).data.dtype == np.float32
            assert ones(4).data.dtype == np.float32
        # explicit float arrays keep their dtype either way
        assert Tensor(np.zeros(3, np.float32)).data.dtype == np.float32
        assert Tensor(np.zeros(3, np.float64)).data.dtype == np.float64

    def test_parameter_copies_caller_array(self):
        """In-place optimizer updates must never reach caller-owned data."""
        from repro.autograd import Parameter, SGD
        source = np.ones((2, 2))
        param = Parameter(source)
        assert param.data is not source
        param.grad = np.ones((2, 2))
        SGD([param], lr=0.5).step()
        np.testing.assert_allclose(source, 1.0)  # caller array untouched
        np.testing.assert_allclose(param.data, 0.5)

    def test_parameters_cast_to_active_dtype(self):
        rng = np.random.default_rng(0)
        with default_dtype("float32"):
            layer = Linear(4, 3, rng)
            emb = Embedding(5, 4, rng)
        assert layer.weight.data.dtype == np.float32
        assert layer.bias.data.dtype == np.float32
        assert emb.weight.data.dtype == np.float32

    def test_training_step_stays_float32(self):
        rng = np.random.default_rng(1)
        with default_dtype("float32"):
            emb = Embedding(6, 4, rng)
            opt = Adam(emb.parameters(), lr=0.01)
            out = emb.weight.take_rows(np.array([0, 1, 1, 3]))
            loss = (out * out).sum()
            loss.backward()
        assert loss.data.dtype == np.float32
        assert emb.weight.grad.dtype == np.float32
        opt.step()
        assert emb.weight.data.dtype == np.float32

    def test_python_scalar_operands_do_not_promote(self):
        """Regression: NEP-50 0-d float64 wrappers upcast float32 exprs."""
        x = Tensor(np.ones((2, 3), np.float32), requires_grad=True)
        assert (x * 0.5).data.dtype == np.float32
        assert (x + 1).data.dtype == np.float32
        assert (x - 0.5).data.dtype == np.float32
        assert (x / 2.0).data.dtype == np.float32
        assert (1.0 - x).data.dtype == np.float32
        assert (1.0 / x).data.dtype == np.float32

    # one representative per promotion hazard: plain spmm, weighted_spmm
    # augmentor, feature masks, per-layer noise, node masking
    @pytest.mark.parametrize("name", ["lightgcn", "graphaug", "slrec",
                                      "simgcl", "stgcn", "cgi"])
    def test_gnn_loss_stays_float32_end_to_end(self, name):
        from repro.data import tiny_dataset
        from repro.models import build_model
        from repro.train import ModelConfig
        data = tiny_dataset(seed=0)
        rng = np.random.default_rng(0)
        with default_dtype("float32"):
            model = build_model(name, data,
                                ModelConfig(embedding_dim=8, num_layers=2),
                                seed=0)
            if hasattr(model, "on_epoch_start"):
                model.on_epoch_start(1, rng)
            loss = model.loss(np.array([0, 1]), np.array([0, 1]),
                              np.array([2, 3]))
            loss.backward()
        assert loss.data.dtype == np.float32
        assert model.user_emb.weight.grad.dtype == np.float32

    def test_spmm_float32_operands(self):
        matrix = sp.random(5, 4, density=0.5, random_state=0, format="csr")
        x = Tensor(np.random.default_rng(2).normal(size=(4, 3))
                   .astype(np.float32), requires_grad=True)
        out = spmm(matrix, x)
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32

    def test_weighted_spmm_float32_operands(self):
        rows = np.array([0, 1, 2])
        cols = np.array([1, 0, 2])
        w = Tensor(np.ones(3, np.float32), requires_grad=True)
        x = Tensor(np.random.default_rng(3).normal(size=(3, 2))
                   .astype(np.float32), requires_grad=True)
        out = weighted_spmm(rows, cols, w, (3, 3), x)
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32


class TestTakeRowsScatter:
    def test_negative_indices_backward(self):
        """Regression: the bincount scatter must accept negative indices."""
        t = Tensor(np.ones((4, 3)), requires_grad=True)
        t.take_rows(np.array([-1, 0, -1])).sum().backward()
        np.testing.assert_allclose(t.grad.sum(axis=1), [3.0, 0.0, 0.0, 6.0])

    def test_out_of_range_negative_index_raises(self):
        """Regression: -5 into 4 rows must raise, not wrap to row -1."""
        t = Tensor(np.ones((4, 3)), requires_grad=True)
        with pytest.raises(IndexError):
            t.take_rows(np.array([-5]))

    def test_duplicate_indices_accumulate(self):
        t = Tensor(np.zeros((5, 2)), requires_grad=True)
        t.take_rows(np.array([2, 2, 2])).sum().backward()
        np.testing.assert_allclose(t.grad[2], [3.0, 3.0])


class TestGradAccumulationBuffer:
    def test_in_place_reuse(self):
        t = Tensor(np.zeros((3, 2)), requires_grad=True)
        t._accumulate(np.ones((3, 2)))
        buffer = t.grad
        t._accumulate(np.full((3, 2), 2.0))
        assert t.grad is buffer  # same buffer, updated in place
        np.testing.assert_allclose(t.grad, 3.0)

    def test_first_accumulation_copies(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        g = np.ones(3)
        t._accumulate(g)
        g[:] = 99.0
        np.testing.assert_allclose(t.grad, 1.0)

    def test_repeated_backward_through_shared_node(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = x * 3.0
        z = (y + y).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [6.0, 6.0])


class TestGradcheckFloat64Mode:
    def test_gradcheck_still_passes_in_float64(self):
        """The satellite acceptance: float64 finite differences stay tight."""
        matrix = sp.random(5, 5, density=0.5, random_state=4, format="csr")
        rng = np.random.default_rng(5)

        def fn(x, w):
            h = spmm(matrix, x)
            return (h @ w).tanh().sum()

        assert gradcheck(fn, [
            Tensor(rng.normal(size=(5, 3)), requires_grad=True),
            Tensor(rng.normal(size=(3, 2)), requires_grad=True),
        ])

    def test_gradcheck_rejects_float32_inputs(self):
        bad = Tensor(np.ones(3, np.float32), requires_grad=True)
        with pytest.raises(TypeError, match="float64"):
            gradcheck(lambda t: (t * t).sum(), [bad])
