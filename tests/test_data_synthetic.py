"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import PROFILES, generate_synthetic, load_profile, \
    tiny_dataset
from repro.data.synthetic import SyntheticProfile


class TestProfiles:
    def test_all_three_paper_datasets_present(self):
        assert set(PROFILES) == {"gowalla", "retail_rocket", "amazon"}

    def test_relative_density_ordering_matches_table1(self):
        """Table I: gowalla much denser than retail_rocket ~ amazon."""
        stats = {name: load_profile(name, seed=0).density
                 for name in PROFILES}
        assert stats["gowalla"] > stats["amazon"]
        assert stats["gowalla"] > 2 * stats["retail_rocket"]

    def test_retail_rocket_sparsest_per_user(self):
        degrees = {}
        for name in PROFILES:
            ds = load_profile(name, seed=0)
            degrees[name] = ds.train.user_degrees().mean()
        assert degrees["retail_rocket"] < degrees["amazon"]
        assert degrees["retail_rocket"] < degrees["gowalla"]

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            load_profile("netflix")


class TestGeneration:
    def test_deterministic(self):
        a = load_profile("gowalla", seed=3)
        b = load_profile("gowalla", seed=3)
        assert (a.train.matrix != b.train.matrix).nnz == 0
        assert (a.test_matrix != b.test_matrix).nnz == 0

    def test_seed_changes_data(self):
        a = load_profile("gowalla", seed=1)
        b = load_profile("gowalla", seed=2)
        assert (a.train.matrix != b.train.matrix).nnz > 0

    def test_ground_truth_attached(self):
        ds = load_profile("amazon", seed=0)
        assert ds.user_factors.shape[0] == ds.num_users
        assert ds.item_factors.shape[0] == ds.num_items
        assert ds.item_categories.shape == (ds.num_items,)

    def test_long_tail_skew(self):
        """Item popularity must be heavy-tailed (top decile dominates)."""
        ds = load_profile("gowalla", seed=0)
        degrees = np.sort(ds.train.item_degrees())[::-1]
        top_decile = degrees[: len(degrees) // 10].sum()
        assert top_decile > 0.2 * degrees.sum()

    def test_every_user_has_train_interactions(self):
        ds = load_profile("retail_rocket", seed=0)
        assert (ds.train.user_degrees() >= 1).all()

    def test_test_fraction_respected(self):
        ds = load_profile("gowalla", seed=0, test_fraction=0.2)
        ratio = ds.num_test_interactions / (
            ds.num_train_interactions + ds.num_test_interactions)
        assert 0.1 < ratio < 0.25

    def test_preferences_learnable(self):
        """Ground-truth affinity must predict held-out items above chance."""
        ds = load_profile("gowalla", seed=0)
        scores = ds.user_factors @ ds.item_factors.T
        hits, total = 0, 0
        for user in ds.test_users()[:50]:
            ranked = np.argsort(-scores[user])
            positives = set(ds.test_items_of(user).tolist())
            top = set(ranked[:20].tolist())
            hits += len(top & positives)
            total += len(positives)
        chance = 20 / ds.num_items
        assert hits / total > 2 * chance


class TestTinyDataset:
    def test_small_and_fast(self):
        ds = tiny_dataset(seed=0)
        assert ds.num_users <= 100
        assert ds.num_items <= 100
        assert ds.num_test_interactions > 0

    def test_custom_sizes(self):
        ds = tiny_dataset(seed=0, num_users=30, num_items=20)
        assert ds.num_users == 30
        assert ds.num_items == 20
