"""Tests for the assembled GraphAug model (paper Sec III / Algorithm 1)."""

import numpy as np
import pytest

from repro.core import GraphAug, make_graphaug_variant
from repro.data import tiny_dataset
from repro.eval import evaluate_scores, mean_average_distance
from repro.models import build_model
from repro.train import ModelConfig, TrainConfig, fit_model


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=61)


@pytest.fixture(scope="module")
def config():
    return ModelConfig(embedding_dim=16, num_layers=2)


class TestConstruction:
    def test_registered(self, dataset, config):
        model = build_model("graphaug", dataset, config)
        assert isinstance(model, GraphAug)

    def test_flags(self, dataset, config):
        model = GraphAug(dataset, config, use_mixhop=False, use_gib=False,
                         use_cl=False)
        assert not model.use_mixhop

    def test_variant_factory(self, dataset, config):
        for variant, attr in (("full", None), ("wo_mixhop", "use_mixhop"),
                              ("wo_gib", "use_gib"), ("wo_cl", "use_cl")):
            model = make_graphaug_variant(variant)(dataset, config, seed=0)
            if attr is not None:
                assert not getattr(model, attr)

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError):
            make_graphaug_variant("wo_everything")


class TestForward:
    def test_loss_components_all_contribute(self, dataset, config):
        rng = np.random.default_rng(0)
        users = rng.integers(0, dataset.num_users, size=32)
        pos = np.array([dataset.train_items_of(u)[0] for u in users])
        neg = rng.integers(0, dataset.num_items, size=32)

        losses = {}
        for variant in ("full", "wo_gib", "wo_cl"):
            model = make_graphaug_variant(variant)(dataset, config, seed=0)
            losses[variant] = model.loss(users, pos, neg).item()
        # the full loss includes strictly more (positive) terms
        assert losses["full"] > losses["wo_gib"] or \
            losses["full"] > losses["wo_cl"]

    def test_loss_backward_reaches_augmentor(self, dataset, config):
        model = GraphAug(dataset, config, seed=0)
        rng = np.random.default_rng(1)
        users = rng.integers(0, dataset.num_users, size=16)
        pos = np.array([dataset.train_items_of(u)[0] for u in users])
        neg = rng.integers(0, dataset.num_items, size=16)
        model.loss(users, pos, neg).backward()
        aug_params = list(model.augmentor.parameters())
        assert any(p.grad is not None and np.abs(p.grad).sum() > 0
                   for p in aug_params)

    def test_views_sampled_fresh(self, dataset, config):
        model = GraphAug(dataset, config, seed=0)
        emb = model._encode_original()
        a1, b1 = model.sample_augmented_views(emb)
        assert not np.array_equal(a1.keep_mask, b1.keep_mask)

    def test_edge_keep_probabilities(self, dataset, config):
        model = GraphAug(dataset, config, seed=0)
        probs = model.edge_keep_probabilities()
        assert probs.shape == (len(model.candidates),)
        assert ((probs >= 0) & (probs <= 1)).all()


class TestTraining:
    def test_improves_over_initialization(self, dataset, config):
        model = build_model("graphaug", dataset, config, seed=0)
        before = evaluate_scores(model.score_all_users(), dataset, ks=(5,),
                                 metrics=("recall",))
        cfg = TrainConfig(epochs=12, batch_size=128, eval_every=6,
                          eval_ks=(5,), eval_metrics=("recall",),
                          early_stop_metric="recall@5")
        result = fit_model(model, dataset, cfg, seed=0)
        assert result.best_metrics["recall@5"] > before["recall@5"]

    def test_threshold_zero_keeps_every_candidate(self, dataset):
        cfg = ModelConfig(embedding_dim=16, edge_threshold=0.0)
        model = GraphAug(dataset, cfg, seed=0)
        emb = model._encode_original()
        view, _ = model.sample_augmented_views(emb)
        assert view.keep_mask.all()

    def test_mixhop_architecture_resists_deep_smoothing(self, dataset):
        """Table III's architectural claim: at depth, the Eq-11 mixhop
        encoder keeps node embeddings more distinct (higher MAD) than pure
        vanilla propagation of the same depth.

        Measured on the *encoder output* (not trained models): on miniature
        trained models the raw MAD is dominated by the popularity cone the
        ranking objective itself induces — see EXPERIMENTS.md.
        """
        import numpy as np
        from repro.autograd import Tensor, spmm
        from repro.core import MixhopEncoder
        from repro.graph import symmetric_normalize
        from repro.models import light_gcn_propagate

        rng = np.random.default_rng(0)
        ego = rng.normal(size=(dataset.train.num_nodes, 18))
        depth = 6
        adj = symmetric_normalize(dataset.train.bipartite_adjacency(),
                                  add_self_loops=True)
        vanilla_adj = symmetric_normalize(dataset.train
                                          .bipartite_adjacency(),
                                          add_self_loops=False)
        vanilla = light_gcn_propagate(vanilla_adj, Tensor(ego), depth)
        encoder = MixhopEncoder(18, depth, (0, 1, 2),
                                np.random.default_rng(1), mode="dense")
        mixed = encoder(Tensor(ego), lambda h: spmm(adj, h))
        assert mean_average_distance(mixed.data) > \
            mean_average_distance(vanilla.data)
