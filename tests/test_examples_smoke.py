"""Tier-1 smoke test: every example walkthrough runs under fast configs.

Each ``examples/*.py`` exposes a parameterized ``main()`` (dataset and
budget knobs with full-size defaults); this suite imports each module by
path and drives it with a tiny dataset and 1-2 epochs, so a facade or
API change that breaks a walkthrough fails the fast suite instead of
being discovered by a user.  All items carry the ``examples`` marker
(``pytest -m examples`` runs just these).
"""

import importlib.util
import os
import sys

import pytest

pytestmark = pytest.mark.examples

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")


def _load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    _load_example("quickstart").main(dataset="tiny", epochs=2)
    out = capsys.readouterr().out
    assert "recall@20" in out
    assert "top-5 recommendations" in out


def test_serving(capsys):
    _load_example("serving").main(dataset="tiny", epochs=2)
    out = capsys.readouterr().out
    assert "identical to the live model" in out
    assert "users/sec" in out


def test_model_comparison(capsys):
    _load_example("model_comparison").main(
        dataset="tiny", epochs=2, models=("biasmf", "lightgcn"))
    out = capsys.readouterr().out
    assert "biasmf" in out and "lightgcn" in out
    assert "Recall@20" in out


def test_custom_dataset(capsys):
    _load_example("custom_dataset").main(epochs=2)
    out = capsys.readouterr().out
    assert "best metrics:" in out


def test_noise_robustness(capsys):
    _load_example("noise_robustness").main(dataset="tiny", epochs=1,
                                           ratios=(0.0, 0.25))
    out = capsys.readouterr().out
    assert "relative drop" in out


def test_popularity_bias(capsys):
    _load_example("popularity_bias").main(dataset="tiny", epochs=2)
    out = capsys.readouterr().out
    assert "gini" in out


def test_sweep(capsys):
    _load_example("sweep").main(dataset="tiny", epochs=2,
                                models=("biasmf", "lightgcn"),
                                seeds=(0,), workers=2)
    out = capsys.readouterr().out
    assert "2/2 cells completed" in out
    assert "leaderboard ->" in out
    assert "nothing re-run" in out


def test_parallel_training(capsys):
    _load_example("parallel_training").main(
        dataset="tiny", epochs=2, batch_size=128, propagate_every=2,
        workers=2)
    out = capsys.readouterr().out
    assert "bit-identical to the in-process schedule" in out
    assert "epochs/sec" in out


def test_denoising_case_study(capsys):
    _load_example("denoising_case_study").main(dataset_name="tiny",
                                               epochs=2)
    out = capsys.readouterr().out
    assert "mean embedding similarity" in out


def test_every_example_is_covered():
    """A new example must come with a smoke test."""
    covered = {name[len("test_"):] for name in globals()
               if name.startswith("test_") and name != "test_every_example_is_covered"}
    on_disk = {os.path.splitext(f)[0] for f in os.listdir(EXAMPLES_DIR)
               if f.endswith(".py")}
    assert on_disk <= covered, f"examples missing smoke tests: " \
                               f"{sorted(on_disk - covered)}"
