"""Property-based tests (hypothesis) for the autograd engine.

These certify algebraic invariants over randomized inputs rather than
hand-picked cases: linearity of the tape, broadcasting gradients, softmax
normalization, stability of the stable primitives.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, functional as F, gradcheck, unbroadcast

finite_floats = st.floats(min_value=-10.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False)


def arrays(max_side=4, min_dims=1, max_dims=2):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims,
                               min_side=1, max_side=max_side),
        elements=finite_floats)


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_sum_gradient_is_ones(data):
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))


@settings(max_examples=30, deadline=None)
@given(arrays(), st.floats(min_value=-3, max_value=3, allow_nan=False))
def test_scalar_mul_gradient(data, scalar):
    x = Tensor(data, requires_grad=True)
    (x * scalar).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(data, scalar))


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_add_self_doubles_gradient(data):
    x = Tensor(data, requires_grad=True)
    (x + x).sum().backward()
    np.testing.assert_allclose(x.grad, 2 * np.ones_like(data))


@settings(max_examples=30, deadline=None)
@given(arrays(max_side=5, min_dims=2, max_dims=2))
def test_softmax_rows_are_distributions(data):
    probs = F.softmax(Tensor(data)).data
    assert (probs >= 0).all()
    np.testing.assert_allclose(probs.sum(axis=-1),
                               np.ones(data.shape[0]), atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(arrays(max_side=5, min_dims=2, max_dims=2))
def test_logsumexp_bounds(data):
    # max(x) <= logsumexp(x) <= max(x) + log(n)
    out = Tensor(data).logsumexp(axis=-1).data
    row_max = data.max(axis=-1)
    n = data.shape[-1]
    assert (out >= row_max - 1e-10).all()
    assert (out <= row_max + np.log(n) + 1e-10).all()


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_sigmoid_range_and_symmetry(data):
    x = Tensor(data)
    s = x.sigmoid().data
    assert ((s > 0) & (s < 1)).all()
    np.testing.assert_allclose(s + (-x).sigmoid().data,
                               np.ones_like(data), atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(arrays(max_side=4, min_dims=2, max_dims=2))
def test_l2_normalize_idempotent(data):
    x = Tensor(data + 0.1)  # keep rows away from zero
    once = F.l2_normalize(x).data
    twice = F.l2_normalize(F.l2_normalize(x)).data
    np.testing.assert_allclose(once, twice, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4))
def test_unbroadcast_inverts_broadcast(rows, cols):
    grad = np.ones((5, rows, cols))
    reduced = unbroadcast(grad, (rows, cols))
    assert reduced.shape == (rows, cols)
    np.testing.assert_allclose(reduced, 5 * np.ones((rows, cols)))


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=5),
       st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=10 ** 6))
def test_matmul_chain_gradcheck(n, d, seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(n, d)), requires_grad=True)
    b = Tensor(rng.normal(size=(d, n)), requires_grad=True)
    assert gradcheck(lambda a, b: ((a @ b).tanh()).sum(), [a, b])


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=0, max_value=10 ** 6))
def test_bpr_loss_antisymmetry(n, seed):
    """Swapping pos/neg scores mirrors the loss around log(2)... more
    precisely: bpr(p, n) + bpr(n, p) >= 2*log(2) with equality iff p==n."""
    rng = np.random.default_rng(seed)
    pos = Tensor(rng.normal(size=n))
    neg = Tensor(rng.normal(size=n))
    forward = F.bpr_loss(pos, neg).item()
    backward = F.bpr_loss(neg, pos).item()
    assert forward + backward >= 2 * np.log(2.0) - 1e-9
