"""Tests for splitting utilities."""

import numpy as np
import pytest

from repro.data import degree_groups, holdout_split, quantile_groups
from repro.graph import InteractionGraph


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    users = np.repeat(np.arange(40), 10)
    items = rng.integers(0, 60, size=400)
    return InteractionGraph.from_edges(users, items, 40, 60)


class TestHoldoutSplit:
    def test_partition_is_disjoint_and_complete(self, graph):
        rng = np.random.default_rng(1)
        train, test = holdout_split(graph, 0.25, rng)
        total = train.num_interactions + test.nnz
        assert total == graph.num_interactions
        overlap = train.matrix.multiply(test)
        assert overlap.nnz == 0

    def test_each_user_keeps_a_train_item(self, graph):
        rng = np.random.default_rng(2)
        train, _ = holdout_split(graph, 0.9, rng)
        degrees = train.user_degrees()
        active = graph.user_degrees() > 0
        assert (degrees[active] >= 1).all()

    def test_single_interaction_user_never_tested(self):
        graph = InteractionGraph.from_edges(
            np.array([0]), np.array([0]), 1, 2)
        train, test = holdout_split(graph, 0.5, np.random.default_rng(0))
        assert train.num_interactions == 1
        assert test.nnz == 0

    def test_invalid_fraction_raises(self, graph):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                holdout_split(graph, bad, np.random.default_rng(0))


class TestDegreeGroups:
    def test_paper_bucket_labels(self):
        degrees = np.array([5, 15, 25, 35, 45, 120])
        groups = degree_groups(degrees)
        assert list(groups) == ["0-10", "10-20", "20-30", "30-40", "40-50"]
        assert 0 in groups["0-10"]
        assert 5 in groups["40-50"]  # tail absorbed by last bucket

    def test_partition(self):
        degrees = np.random.default_rng(0).integers(0, 100, size=200)
        groups = degree_groups(degrees)
        all_ids = np.concatenate(list(groups.values()))
        assert len(all_ids) == 200
        assert len(set(all_ids.tolist())) == 200


class TestQuantileGroups:
    def test_equal_population(self):
        degrees = np.arange(100)
        groups = quantile_groups(degrees, num_groups=5)
        sizes = [len(v) for v in groups.values()]
        assert sizes == [20] * 5

    def test_ordered_by_degree(self):
        degrees = np.random.default_rng(1).integers(0, 50, size=100)
        groups = quantile_groups(degrees, num_groups=4)
        labels = list(groups)
        max_prev = -1
        for label in labels:
            group_max = degrees[groups[label]].max()
            assert group_max >= max_prev
            max_prev = degrees[groups[label]].min()
