"""Tests for the parallel sweep engine (``repro.api.sweep``).

Acceptance contract of the sweep PR:

* an N-worker sweep over a >= 8-cell grid produces run directories
  bit-identical to the sequential path (everything except wall-clock
  fields — certified through ``run_dir_fingerprint``);
* a cell that crashes mid-fit leaves a valid ``status: failed`` record
  (spec echo + error + traceback) while the rest of the grid completes;
* ``SweepRunner.resume`` re-runs exactly the failed/missing cells and
  never re-executes finished ones;
* run-directory claims are atomic (``os.mkdir``-based), so concurrent
  claimants of one name always get distinct directories.
"""

import json
import os
import shutil
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (ExperimentSpec, RunResult, SweepRunner,
                       aggregate_results, claim_run_dir, expand_grid,
                       read_sweep_manifest, run_dir_fingerprint,
                       run_dir_is_complete, run_sweep)
from repro.data import save_tsv, tiny_dataset

FAST_TRAIN = {"epochs": 2, "batch_size": 128, "eval_every": 2}


def _fast_spec(model="biasmf", dataset="tiny", **overrides):
    base = dict(model=model, dataset=dataset,
                model_config={"embedding_dim": 8},
                train_config=dict(FAST_TRAIN))
    base.update(overrides)
    return ExperimentSpec(**base)


def _crashing_spec(**overrides):
    """A spec whose training raises mid-fit (fault-injection hook)."""
    return _fast_spec(
        train_config={**FAST_TRAIN, "fail_after_epoch": 1}, **overrides)


def _metrics_mtimes(base_dir):
    """metrics.jsonl mtime per cell — proof of (non-)re-execution."""
    out = {}
    for name in os.listdir(base_dir):
        path = os.path.join(base_dir, name, "metrics.jsonl")
        if os.path.exists(path):
            out[name] = os.stat(path).st_mtime_ns
    return out


# --------------------------------------------------------------------- #
# parallel vs sequential parity
# --------------------------------------------------------------------- #

class TestParallelParity:
    def test_eight_cell_grid_parallel_matches_sequential(self, tmp_path):
        """Acceptance: N workers, >= 8 cells, bit-identical run dirs."""
        specs = expand_grid(_fast_spec(),
                            models=["biasmf", "lightgcn"],
                            seeds=[0, 1, 2, 3])
        assert len(specs) == 8
        seq_dir = str(tmp_path / "seq")
        par_dir = str(tmp_path / "par")
        seq = run_sweep(specs, base_dir=seq_dir)
        par = run_sweep(specs, base_dir=par_dir, workers=2)
        assert [r.status for r in par] == ["completed"] * 8
        for a, b in zip(seq, par):
            assert os.path.basename(a.run_dir) == \
                os.path.basename(b.run_dir)
            assert run_dir_fingerprint(a.run_dir) == \
                run_dir_fingerprint(b.run_dir)
            assert a.metrics == b.metrics
            assert a.best_epoch == b.best_epoch

    def test_one_worker_pool_matches_sequential(self, tmp_path):
        specs = expand_grid(_fast_spec(), seeds=[0, 1])
        seq = run_sweep(specs, base_dir=str(tmp_path / "seq"))
        par = run_sweep(specs, base_dir=str(tmp_path / "par"), workers=1)
        for a, b in zip(seq, par):
            assert run_dir_fingerprint(a.run_dir) == \
                run_dir_fingerprint(b.run_dir)

    def test_parallel_results_carry_summary_not_fit(self, tmp_path):
        results = run_sweep([_fast_spec()],
                            base_dir=str(tmp_path / "s"), workers=1)
        assert results[0].fit is None          # like RunResult.load
        assert results[0].metrics
        assert results[0].timing["train_seconds"] > 0

    def test_fingerprint_ignores_wall_clock_only(self, tmp_path):
        """Two runs of one spec differ only in timings -> same print."""
        spec = _fast_spec(probes={"beyond_accuracy": {"k": 5}})
        a = str(tmp_path / "a")
        b = str(tmp_path / "b")
        run_sweep([spec], base_dir=a)
        run_sweep([spec], base_dir=b)
        cell = spec.run_name
        fp_a = run_dir_fingerprint(os.path.join(a, cell))
        fp_b = run_dir_fingerprint(os.path.join(b, cell))
        assert fp_a == fp_b
        with open(os.path.join(a, cell, "timing.json")) as fh:
            t_a = json.load(fh)
        with open(os.path.join(b, cell, "timing.json")) as fh:
            t_b = json.load(fh)
        assert t_a.keys() == t_b.keys()        # same shape, values vary

    def test_fingerprint_differs_across_specs(self, tmp_path):
        base_dir = str(tmp_path / "s")
        results = run_sweep(expand_grid(_fast_spec(), seeds=[0, 1]),
                            base_dir=base_dir)
        assert run_dir_fingerprint(results[0].run_dir) != \
            run_dir_fingerprint(results[1].run_dir)


# --------------------------------------------------------------------- #
# failure isolation
# --------------------------------------------------------------------- #

class TestFailureIsolation:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_mid_fit_crash_is_isolated(self, tmp_path, workers):
        """One injected crash; the rest of the grid completes."""
        specs = [_crashing_spec(seed=9)] + \
            expand_grid(_fast_spec(), seeds=[0, 1])
        base_dir = str(tmp_path / "sweep")
        results = run_sweep(specs, base_dir=base_dir, workers=workers)
        assert [r.status for r in results] == \
            ["failed", "completed", "completed"]
        assert "fail_after_epoch" in results[0].error
        # the crashed cell's run dir is a valid failed record
        failed_dir = results[0].run_dir
        with open(os.path.join(failed_dir, "status.json")) as fh:
            status = json.load(fh)
        assert status["status"] == "failed"
        assert "RuntimeError" in status["error"]
        assert "injected training failure" in status["traceback"]
        with open(os.path.join(failed_dir, "spec.json")) as fh:
            assert ExperimentSpec.from_dict(json.load(fh)) == specs[0]
        assert not run_dir_is_complete(failed_dir)

    def test_failed_result_loads_from_disk(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        results = run_sweep([_crashing_spec()], base_dir=base_dir)
        loaded = RunResult.load(results[0].run_dir)
        assert loaded.failed
        assert loaded.error == results[0].error
        assert loaded.metrics == {}

    def test_missing_dataset_file_fails_cleanly(self, tmp_path):
        spec = _fast_spec(dataset=str(tmp_path / "not-there.tsv"))
        results = run_sweep([spec, _fast_spec()],
                            base_dir=str(tmp_path / "sweep"), workers=2)
        assert [r.status for r in results] == ["failed", "completed"]
        assert "not-there.tsv" in results[0].error

    def test_unparseable_spec_still_persists_failure_record(self,
                                                            tmp_path):
        """run_cell with a spec that never parses must still leave a
        diagnosable failed record in its (pre-claimed) run dir."""
        from repro.api import run_cell
        run_dir = str(tmp_path / "cell")
        os.mkdir(run_dir)
        payload = {**_fast_spec().to_dict(), "typo": 1}
        summary = run_cell(payload, run_dir=run_dir)
        assert summary["status"] == "failed"
        assert "typo" in summary["error"]
        with open(os.path.join(run_dir, "status.json")) as fh:
            status = json.load(fh)
        assert status["status"] == "failed"
        assert "typo" in status["error"]
        with open(os.path.join(run_dir, "spec.json")) as fh:
            assert json.load(fh) == payload     # raw payload echoed
        assert not run_dir_is_complete(run_dir)

    def test_failure_without_base_dir(self):
        results = run_sweep([_crashing_spec(), _fast_spec()])
        assert [r.status for r in results] == ["failed", "completed"]
        assert results[0].run_dir is None
        assert results[1].metrics

    def test_sequential_failure_keeps_live_fit_for_survivors(self):
        results = run_sweep([_crashing_spec(), _fast_spec()])
        assert results[1].fit is not None      # sequential path contract


# --------------------------------------------------------------------- #
# resume
# --------------------------------------------------------------------- #

class TestResume:
    def test_resume_reruns_exactly_failed_and_missing(self, tmp_path):
        """Acceptance: finished cells untouched, broken ones re-run."""
        late_tsv = str(tmp_path / "late.tsv")
        specs = expand_grid(_fast_spec(), seeds=[0, 1, 2]) + \
            [_fast_spec(dataset=late_tsv)]     # crashes: file missing
        base_dir = str(tmp_path / "sweep")
        first = run_sweep(specs, base_dir=base_dir, workers=2)
        assert [r.status for r in first] == \
            ["completed"] * 3 + ["failed"]

        # delete one finished cell entirely ("missing"), then make the
        # crashed cell's dataset appear so its re-run can succeed
        removed = first[1].run_dir
        shutil.rmtree(removed)
        save_tsv(tiny_dataset(seed=3, num_users=40, num_items=30),
                 late_tsv)
        before = _metrics_mtimes(base_dir)

        resumed = SweepRunner.resume(base_dir)
        assert [r.status for r in resumed] == ["completed"] * 4
        after = _metrics_mtimes(base_dir)
        for name in (os.path.basename(first[0].run_dir),
                     os.path.basename(first[2].run_dir)):
            assert before[name] == after[name], name   # not re-executed
        # the missing and the failed cell were re-run
        assert os.path.basename(removed) in after
        assert run_dir_is_complete(removed)
        failed_name = os.path.basename(first[3].run_dir)
        assert run_dir_is_complete(os.path.join(base_dir, failed_name))

    def test_resumed_cell_matches_fresh_run(self, tmp_path):
        """A cell re-run by resume is bit-identical to a fresh run."""
        specs = expand_grid(_fast_spec(), seeds=[0, 1])
        base_dir = str(tmp_path / "sweep")
        first = run_sweep(specs, base_dir=base_dir)
        reference = run_dir_fingerprint(first[1].run_dir)
        shutil.rmtree(first[1].run_dir)
        SweepRunner.resume(base_dir)
        assert run_dir_fingerprint(first[1].run_dir) == reference

    def test_resume_reruns_cell_whose_spec_changed(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        results = run_sweep([_fast_spec()], base_dir=base_dir)
        run_dir = results[0].run_dir
        # tamper: the recorded spec no longer matches the manifest cell
        other = _fast_spec(seed=5)
        other.save(os.path.join(run_dir, "spec.json"))
        before = _metrics_mtimes(base_dir)
        resumed = SweepRunner.resume(base_dir)
        assert resumed[0].status == "completed"
        assert _metrics_mtimes(base_dir) != before     # re-executed
        # and the re-run restored the manifest's spec
        with open(os.path.join(run_dir, "spec.json")) as fh:
            assert ExperimentSpec.from_dict(json.load(fh)) == \
                results[0].spec

    def test_resume_requires_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="sweep.json"):
            SweepRunner.resume(str(tmp_path))

    def test_resume_noop_when_all_valid(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        run_sweep(expand_grid(_fast_spec(), seeds=[0, 1]),
                  base_dir=base_dir)
        before = _metrics_mtimes(base_dir)
        results = SweepRunner.resume(base_dir)
        assert [r.status for r in results] == ["completed"] * 2
        assert _metrics_mtimes(base_dir) == before

    def test_resume_can_override_workers(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        specs = expand_grid(_fast_spec(), seeds=[0, 1])
        first = run_sweep(specs, base_dir=base_dir)
        reference = [run_dir_fingerprint(r.run_dir) for r in first]
        for r in first:
            shutil.rmtree(r.run_dir)
        resumed = SweepRunner.resume(base_dir, workers=2)
        assert [r.status for r in resumed] == ["completed"] * 2
        assert [run_dir_fingerprint(r.run_dir) for r in resumed] == \
            reference


# --------------------------------------------------------------------- #
# atomic run-dir claims
# --------------------------------------------------------------------- #

class TestAtomicClaims:
    def test_concurrent_claimants_get_distinct_dirs(self, tmp_path):
        """The collision-suffix race: N claimants, N distinct dirs."""
        base_dir = str(tmp_path / "sweep")
        with ThreadPoolExecutor(max_workers=8) as pool:
            claims = list(pool.map(
                lambda _: claim_run_dir(base_dir, "cell"), range(8)))
        names = sorted(name for name, _ in claims)
        paths = {path for _, path in claims}
        assert len(paths) == 8                  # nobody shared a dir
        assert names == sorted(
            ["cell"] + [f"cell-{i}" for i in range(2, 9)])
        for _, path in claims:
            assert os.path.isdir(path)

    def test_repeated_sweeps_never_clobber(self, tmp_path):
        """A second sweep into the same base dir claims fresh dirs."""
        base_dir = str(tmp_path / "sweep")
        spec = _fast_spec()
        first = run_sweep([spec], base_dir=base_dir)
        fingerprint = run_dir_fingerprint(first[0].run_dir)
        second = run_sweep([spec], base_dir=base_dir)
        assert second[0].run_dir != first[0].run_dir
        assert os.path.basename(second[0].run_dir) == \
            "biasmf-tiny-seed0-2"
        # the first run's artifact is untouched
        assert run_dir_fingerprint(first[0].run_dir) == fingerprint
        # and the manifest keeps both sweeps' cells (merge, not clobber)
        names = sorted(c["name"]
                       for c in read_sweep_manifest(base_dir)["cells"])
        assert names == ["biasmf-tiny-seed0", "biasmf-tiny-seed0-2"]

    def test_second_sweep_merges_manifest(self, tmp_path):
        """Reusing a base dir must not erase the earlier sweep's cells
        from the manifest (and therefore from resume/aggregation)."""
        base_dir = str(tmp_path / "sweep")
        run_sweep([_fast_spec()], base_dir=base_dir)
        run_sweep([_fast_spec(seed=1)], base_dir=base_dir)
        manifest = read_sweep_manifest(base_dir)
        names = sorted(c["name"] for c in manifest["cells"])
        assert names == ["biasmf-tiny-seed0", "biasmf-tiny-seed1"]
        assert all(c["status"] == "completed"
                   for c in manifest["cells"])
        # aggregation and resume cover the union
        report = aggregate_results(base_dir, write=False)
        assert sorted(r["name"] for r in report.rows) == names
        results = SweepRunner.resume(base_dir)
        assert len(results) == 2
        assert [r.status for r in results] == ["completed"] * 2

    def test_racing_sweep_manifest_keeps_union(self, tmp_path,
                                               monkeypatch):
        """A sweep finishing while another runs must not erase the
        other's manifest cells (read-merge-write at write time)."""
        from repro.api import write_sweep_manifest
        base_dir = str(tmp_path / "sweep")
        runner = SweepRunner([_fast_spec()], base_dir=base_dir)
        other = {"name": "other-cell", "spec": _fast_spec(seed=7).to_dict(),
                 "status": "completed", "error": None}
        original = runner._run_sequential

        def concurrent_finish(*args, **kwargs):
            # a racing sweep rewrites the manifest mid-flight with only
            # its own cell; our final merge must restore the union
            write_sweep_manifest(base_dir, [other], None)
            return original(*args, **kwargs)

        monkeypatch.setattr(runner, "_run_sequential", concurrent_finish)
        runner.run()
        names = sorted(c["name"]
                       for c in read_sweep_manifest(base_dir)["cells"])
        assert names == ["biasmf-tiny-seed0", "other-cell"]

    def test_in_sweep_collisions_get_suffixes(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        spec = _fast_spec()
        results = run_sweep([spec, spec], base_dir=base_dir, workers=2)
        dirs = sorted(os.path.basename(r.run_dir) for r in results)
        assert dirs == ["biasmf-tiny-seed0", "biasmf-tiny-seed0-2"]


# --------------------------------------------------------------------- #
# manifest + aggregation
# --------------------------------------------------------------------- #

class TestManifestAndAggregation:
    def test_manifest_records_cells_and_final_statuses(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        specs = [_crashing_spec(seed=9)] + \
            expand_grid(_fast_spec(), seeds=[0, 1])
        run_sweep(specs, base_dir=base_dir, workers=2)
        manifest = read_sweep_manifest(base_dir)
        assert manifest["schema"] == "sweep/v1"
        assert manifest["workers"] == 2
        assert [c["status"] for c in manifest["cells"]] == \
            ["failed", "completed", "completed"]
        assert "fail_after_epoch" in manifest["cells"][0]["error"]
        for cell in manifest["cells"]:
            assert ExperimentSpec.from_dict(cell["spec"])  # valid echo

    def test_aggregate_table_and_artifacts(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        specs = [_crashing_spec(seed=9)] + \
            expand_grid(_fast_spec(), seeds=[0, 1])
        run_sweep(specs, base_dir=base_dir)
        report = aggregate_results(base_dir)
        assert len(report.rows) == 3
        assert report.metric == "recall@20"
        by_status = {row["status"] for row in report.rows}
        assert by_status == {"failed", "completed"}
        completed = report.completed
        assert len(completed) == 2
        # ranked best-first by the primary metric
        assert completed[0]["recall@20"] >= completed[1]["recall@20"]
        assert len(report.failed) == 1

        # artifacts on disk
        assert os.path.exists(os.path.join(base_dir, "results.csv"))
        with open(os.path.join(base_dir, "leaderboard.md")) as fh:
            text = fh.read()
        assert "Ranked by **recall@20**" in text
        assert "## Failed cells" in text
        assert "RuntimeError" in text

    def test_csv_is_tidy_one_row_per_cell(self, tmp_path):
        import csv as _csv
        base_dir = str(tmp_path / "sweep")
        run_sweep(expand_grid(_fast_spec(), seeds=[0, 1]),
                  base_dir=base_dir)
        with open(os.path.join(base_dir, "results.csv"), newline="") as fh:
            rows = list(_csv.DictReader(fh))
        assert len(rows) == 2
        assert {"name", "model", "dataset", "seed", "status",
                "recall@20"} <= set(rows[0])
        assert rows[0]["status"] == "completed"
        assert float(rows[0]["recall@20"]) > 0

    def test_aggregate_without_manifest_scans_dirs(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        run_sweep(expand_grid(_fast_spec(), seeds=[0, 1]),
                  base_dir=base_dir)
        os.remove(os.path.join(base_dir, "sweep.json"))
        report = aggregate_results(base_dir, write=False)
        assert len(report.rows) == 2
        assert report.artifacts == {}

    def test_run_dir_is_complete_contract(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        spec = _fast_spec()
        results = run_sweep([spec], base_dir=base_dir)
        run_dir = results[0].run_dir
        assert run_dir_is_complete(run_dir)
        assert run_dir_is_complete(run_dir, spec)
        assert not run_dir_is_complete(run_dir, _fast_spec(seed=5))
        assert not run_dir_is_complete(str(tmp_path / "nowhere"))
        # legacy dirs (pre-status-stamping) validate via the best event
        os.remove(os.path.join(run_dir, "status.json"))
        assert run_dir_is_complete(run_dir, spec)
