"""Tests for the functional losses (BPR, InfoNCE, KL, ...)."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, functional as F


def t(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = t((4, 7))
        probs = F.softmax(x).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4))
        assert (probs > 0).all()

    def test_gradcheck(self):
        assert gradcheck(lambda a: (F.softmax(a) ** 2).sum(), [t((3, 4))])

    def test_log_softmax_matches_log_of_softmax(self):
        x = t((3, 5))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data))

    def test_invariant_to_shift(self):
        x = t((2, 4))
        shifted = x + 100.0
        np.testing.assert_allclose(F.softmax(x).data,
                                   F.softmax(shifted).data, atol=1e-12)


class TestNormalization:
    def test_l2_normalize_unit_rows(self):
        x = t((5, 3))
        norms = np.linalg.norm(F.l2_normalize(x).data, axis=1)
        np.testing.assert_allclose(norms, np.ones(5))

    def test_l2_normalize_gradcheck(self):
        assert gradcheck(lambda a: (F.l2_normalize(a) * a).sum(), [t((4, 3))])

    def test_cosine_similarity_range(self):
        a, b = t((4, 6)), t((5, 6), 1)
        sims = F.cosine_similarity_matrix(a, b).data
        assert sims.shape == (4, 5)
        assert (np.abs(sims) <= 1.0 + 1e-10).all()

    def test_cosine_self_similarity_is_one(self):
        a = t((3, 4))
        sims = F.cosine_similarity_matrix(a, a).data
        np.testing.assert_allclose(np.diag(sims), np.ones(3))


class TestBPR:
    def test_perfect_ranking_low_loss(self):
        pos = Tensor(np.full(10, 20.0))
        neg = Tensor(np.full(10, -20.0))
        assert F.bpr_loss(pos, neg).item() < 1e-6

    def test_inverted_ranking_high_loss(self):
        pos = Tensor(np.full(10, -5.0))
        neg = Tensor(np.full(10, 5.0))
        assert F.bpr_loss(pos, neg).item() > 5.0

    def test_equal_scores_log2(self):
        pos = Tensor(np.zeros(4))
        neg = Tensor(np.zeros(4))
        np.testing.assert_allclose(F.bpr_loss(pos, neg).item(), np.log(2.0))

    def test_gradcheck(self):
        assert gradcheck(F.bpr_loss, [t((6,)), t((6,), 1)])


class TestInfoNCE:
    def test_identical_views_low_loss_vs_random(self):
        rng = np.random.default_rng(0)
        view = Tensor(rng.normal(size=(16, 8)))
        other = Tensor(rng.normal(size=(16, 8)))
        aligned = F.infonce_loss(view, view, 0.2).item()
        random = F.infonce_loss(view, other, 0.2).item()
        assert aligned < random

    def test_loss_positive(self):
        assert F.infonce_loss(t((8, 4)), t((8, 4), 1)).item() > 0

    def test_gradcheck(self):
        assert gradcheck(lambda a, b: F.infonce_loss(a, b, 0.5),
                         [t((5, 3)), t((5, 3), 1)])

    def test_temperature_sharpens(self):
        a, b = t((10, 6)), t((10, 6), 1)
        # both valid losses; just check both compute and differ
        hot = F.infonce_loss(a, b, 0.1).item()
        cold = F.infonce_loss(a, b, 0.9).item()
        assert hot != cold


class TestAlignmentUniformity:
    def test_alignment_zero_for_identical(self):
        x = t((6, 4))
        assert F.alignment_loss(x, x).item() == pytest.approx(0.0, abs=1e-12)

    def test_uniformity_lower_for_spread_points(self):
        # antipodal points are maximally uniform vs. collapsed points
        collapsed = Tensor(np.ones((8, 3)) + 1e-3
                           * np.random.default_rng(0).normal(size=(8, 3)))
        spread = Tensor(np.random.default_rng(1).normal(size=(8, 3)))
        assert (F.uniformity_loss(spread).item()
                < F.uniformity_loss(collapsed).item())

    def test_uniformity_gradcheck(self):
        assert gradcheck(lambda a: F.uniformity_loss(a), [t((5, 3))])


class TestGaussianKL:
    def test_standard_normal_zero(self):
        mu = Tensor(np.zeros((4, 3)))
        log_var = Tensor(np.zeros((4, 3)))
        assert F.gaussian_kl(mu, log_var).item() == pytest.approx(0.0)

    def test_positive_otherwise(self):
        assert F.gaussian_kl(t((4, 3)), t((4, 3), 1)).item() > 0

    def test_closed_form(self):
        # KL(N(m, s^2) || N(0,1)) = 0.5*(s^2 + m^2 - 1 - log s^2)
        mu = Tensor(np.array([[1.0]]))
        log_var = Tensor(np.array([[np.log(4.0)]]))
        expected = 0.5 * (4.0 + 1.0 - 1.0 - np.log(4.0))
        assert F.gaussian_kl(mu, log_var).item() == pytest.approx(expected)

    def test_gradcheck(self):
        assert gradcheck(F.gaussian_kl, [t((3, 4)), t((3, 4), 1)])


class TestMiscLosses:
    def test_mse_zero_identical(self):
        x = t((4, 3))
        assert F.mse_loss(x, x.detach()).item() == pytest.approx(0.0)

    def test_mse_gradcheck(self):
        target = np.random.default_rng(2).normal(size=(3, 4))
        assert gradcheck(lambda a: F.mse_loss(a, target), [t((3, 4))])

    def test_bce_with_logits_matches_reference(self):
        logits = t((8,))
        targets = (np.random.default_rng(3).random(8) > 0.5).astype(float)
        got = F.binary_cross_entropy_with_logits(logits, targets).item()
        p = 1 / (1 + np.exp(-logits.data))
        want = -np.mean(targets * np.log(p) + (1 - targets) * np.log(1 - p))
        assert got == pytest.approx(want, rel=1e-8)

    def test_bce_gradcheck(self):
        targets = np.array([1.0, 0.0, 1.0, 0.0])
        assert gradcheck(
            lambda a: F.binary_cross_entropy_with_logits(a, targets),
            [t((4,))])

    def test_l2_regularization(self):
        params = [t((2, 2)), t((3,), 1)]
        expected = sum((p.data ** 2).sum() for p in params)
        assert F.l2_regularization(params).item() == pytest.approx(expected)

    def test_l2_regularization_empty_raises(self):
        with pytest.raises(ValueError):
            F.l2_regularization([])


class TestDropoutAndGumbel:
    def test_dropout_identity_when_eval(self):
        x = t((10, 4))
        rng = np.random.default_rng(0)
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        x = Tensor(np.ones((2000, 4)))
        rng = np.random.default_rng(0)
        out = F.dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_gumbel_sigmoid_in_unit_interval(self):
        logits = t((100,))
        rng = np.random.default_rng(0)
        out = F.gumbel_sigmoid(logits, rng, temperature=0.5)
        assert ((out.data > 0) & (out.data < 1)).all()

    def test_gumbel_sigmoid_follows_logits(self):
        rng = np.random.default_rng(0)
        high = F.gumbel_sigmoid(Tensor(np.full(500, 4.0)), rng).data.mean()
        low = F.gumbel_sigmoid(Tensor(np.full(500, -4.0)), rng).data.mean()
        assert high > 0.8 > 0.2 > low

    def test_gumbel_sigmoid_differentiable(self):
        rng = np.random.default_rng(0)
        noise_fixed = np.random.default_rng(1)

        def fn(a):
            return F.gumbel_sigmoid(a, np.random.default_rng(42), 0.7).sum()

        assert gradcheck(fn, [t((5,))])
