"""White-box tests of model-specific internals across the zoo."""

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.models import build_model
from repro.models.ncl import kmeans
from repro.train import ModelConfig


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=141)


@pytest.fixture(scope="module")
def config():
    return ModelConfig(embedding_dim=16, num_layers=2)


class TestSGLInternals:
    def test_views_resampled_per_epoch(self, dataset, config):
        model = build_model("sgl", dataset, config, seed=0)
        before = [adj.copy() for adj in model._view_adjs]
        model.on_epoch_start(1, np.random.default_rng(0))
        after = model._view_adjs
        changed = any((b != a).nnz > 0 for b, a in zip(before, after))
        assert changed

    def test_views_are_corrupted(self, dataset, config):
        model = build_model("sgl", dataset, config, seed=0)
        full_nnz = model.norm_adj.nnz
        for adj in model._view_adjs:
            assert adj.nnz < full_nnz


class TestNCLInternals:
    def test_kmeans_assignments_valid(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 4))
        centroids, assign = kmeans(points, 5, rng)
        assert centroids.shape == (5, 4)
        assert assign.shape == (50,)
        assert set(np.unique(assign)) <= set(range(5))

    def test_kmeans_fewer_points_than_clusters(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(3, 2))
        centroids, assign = kmeans(points, 10, rng)
        assert centroids.shape[0] == 3

    def test_kmeans_separates_obvious_clusters(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(20, 2)) + 10.0
        b = rng.normal(size=(20, 2)) - 10.0
        _, assign = kmeans(np.vstack([a, b]), 2, rng)
        # all of a in one cluster, all of b in the other
        assert len(set(assign[:20])) == 1
        assert len(set(assign[20:])) == 1
        assert assign[0] != assign[20]

    def test_prototypes_refreshed_on_schedule(self, dataset, config):
        model = build_model("ncl", dataset, config, seed=0)
        model.on_epoch_start(1, np.random.default_rng(0))
        first = model._user_protos.copy()
        # off-schedule epoch: unchanged
        model.on_epoch_start(3, np.random.default_rng(0))
        np.testing.assert_allclose(model._user_protos, first)


class TestHCCFInternals:
    def test_global_embeddings_shapes(self, dataset, config):
        model = build_model("hccf", dataset, config, seed=0)
        users, items = model.propagate()
        g_users, g_items = model._global_embeddings(users, items)
        assert g_users.shape == (dataset.num_users, config.embedding_dim)
        assert g_items.shape == (dataset.num_items, config.embedding_dim)


class TestMHCNInternals:
    def test_three_channels(self, dataset, config):
        model = build_model("mhcn", dataset, config, seed=0)
        assert len(model.channels) == 3
        n = dataset.num_users + dataset.num_items
        for channel in model.channels:
            assert channel.shape == (n, n)

    def test_co_occurrence_blocks_are_block_diagonal(self, dataset,
                                                     config):
        model = build_model("mhcn", dataset, config, seed=0)
        user_channel = model.channels[1].toarray()
        nu = dataset.num_users
        # item-item and cross blocks empty apart from self-loops
        assert np.allclose(user_channel[:nu, nu:], 0.0)
        assert np.allclose(user_channel[nu:, :nu], 0.0)


class TestCGIInternals:
    def test_learnable_edge_logits_start_keep_biased(self, dataset,
                                                     config):
        model = build_model("cgi", dataset, config, seed=0)
        # initialized around +2: views start close to the full graph
        assert model.edge_logits.data.mean() > 1.0

    def test_view_weights_nonnegative(self, dataset, config):
        model = build_model("cgi", dataset, config, seed=0)
        view, keep = model._view()
        assert ((keep.data > 0) & (keep.data < 1)).all()


class TestAutoRecInternals:
    def test_reconstruction_shape(self, dataset, config):
        model = build_model("autorec", dataset, config, seed=0)
        recon = model._reconstruct(model._rows[:5])
        assert recon.shape == (5, dataset.num_items)


class TestSimGCLInternals:
    def test_noised_views_differ(self, dataset, config):
        model = build_model("simgcl", dataset, config, seed=0)
        a = model._noised_propagate()
        b = model._noised_propagate()
        assert not np.allclose(a.data, b.data)
