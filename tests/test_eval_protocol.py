"""Tests for the full-ranking evaluation protocol."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data import InteractionDataset
from repro.eval import evaluate_model, evaluate_scores, rank_items
from repro.graph import InteractionGraph


@pytest.fixture
def dataset():
    train = InteractionGraph.from_edges(
        np.array([0, 0, 1, 1, 2]), np.array([0, 1, 2, 3, 4]), 3, 6)
    test = sp.csr_matrix(
        (np.ones(3), (np.array([0, 1, 2]), np.array([2, 4, 0]))),
        shape=(3, 6))
    return InteractionDataset(name="proto", train=train, test_matrix=test)


class TestRankItems:
    def test_train_items_excluded(self, dataset):
        scores = np.ones((3, 6))
        scores[0] = [9, 8, 7, 6, 5, 4]
        ranked = rank_items(scores, dataset.train.matrix, 0)
        # items 0 and 1 are train positives for user 0: must not appear first
        assert ranked[0] == 2
        assert 0 not in ranked[:4]
        assert 1 not in ranked[:4]

    def test_topk_matches_full_sort(self, dataset):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(3, 6))
        full = rank_items(scores, dataset.train.matrix, 1)
        top3 = rank_items(scores, dataset.train.matrix, 1, k=3)
        np.testing.assert_array_equal(full[:3], top3)


class TestEvaluateScores:
    def test_oracle_scores_give_perfect_recall(self, dataset):
        scores = dataset.test_matrix.toarray() * 10.0
        out = evaluate_scores(scores, dataset, ks=(1, 2))
        assert out["recall@1"] == pytest.approx(1.0)
        assert out["ndcg@1"] == pytest.approx(1.0)

    def test_inverted_scores_give_zero_at_1(self, dataset):
        scores = -dataset.test_matrix.toarray() * 10.0
        out = evaluate_scores(scores, dataset, ks=(1,))
        assert out["recall@1"] == 0.0

    def test_user_subset(self, dataset):
        scores = dataset.test_matrix.toarray() * 10.0
        scores[0] = 0.0  # ruin user 0
        subset = evaluate_scores(scores, dataset, ks=(1,),
                                 users=np.array([1, 2]))
        assert subset["recall@1"] == pytest.approx(1.0)

    def test_custom_test_matrix(self, dataset):
        other = sp.csr_matrix(
            (np.ones(1), (np.array([0]), np.array([5]))), shape=(3, 6))
        scores = np.zeros((3, 6))
        scores[0, 5] = 1.0
        out = evaluate_scores(scores, dataset, ks=(1,), test_matrix=other)
        assert out["recall@1"] == pytest.approx(1.0)

    def test_k_larger_than_items(self, dataset):
        scores = np.random.default_rng(1).normal(size=(3, 6))
        out = evaluate_scores(scores, dataset, ks=(100,))
        assert out["recall@100"] == pytest.approx(1.0)


class TestEvaluateModel:
    def test_wraps_score_all_users(self, dataset):
        class Oracle:
            def score_all_users(self_inner):
                return dataset.test_matrix.toarray() * 5.0

        out = evaluate_model(Oracle(), dataset, ks=(1,))
        assert out["recall@1"] == pytest.approx(1.0)
