"""Tests for fake-edge injection (Fig 3 protocol)."""

import numpy as np
import pytest

from repro.graph import InteractionGraph, inject_fake_edges


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    users = rng.integers(0, 30, size=150)
    items = rng.integers(0, 25, size=150)
    return InteractionGraph.from_edges(users, items, 30, 25)


class TestInjectFakeEdges:
    def test_adds_requested_count(self, graph):
        rng = np.random.default_rng(1)
        noisy, fu, fi = inject_fake_edges(graph, 0.2, rng)
        target = round(0.2 * graph.num_interactions)
        assert len(fu) == target
        assert noisy.num_interactions == graph.num_interactions + target

    def test_fakes_not_in_original(self, graph):
        rng = np.random.default_rng(2)
        _, fu, fi = inject_fake_edges(graph, 0.25, rng)
        original = set(zip(*graph.edges()))
        for pair in zip(fu, fi):
            assert (int(pair[0]), int(pair[1])) not in original

    def test_fakes_unique(self, graph):
        rng = np.random.default_rng(3)
        _, fu, fi = inject_fake_edges(graph, 0.25, rng)
        pairs = list(zip(fu.tolist(), fi.tolist()))
        assert len(pairs) == len(set(pairs))

    def test_zero_ratio_copy(self, graph):
        rng = np.random.default_rng(4)
        noisy, fu, fi = inject_fake_edges(graph, 0.0, rng)
        assert noisy.num_interactions == graph.num_interactions
        assert len(fu) == 0
        # must be a copy, not the same object
        assert noisy is not graph

    def test_negative_ratio_raises(self, graph):
        with pytest.raises(ValueError):
            inject_fake_edges(graph, -0.1, np.random.default_rng(0))

    def test_original_untouched(self, graph):
        before = graph.num_interactions
        inject_fake_edges(graph, 0.2, np.random.default_rng(5))
        assert graph.num_interactions == before
