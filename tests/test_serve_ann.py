"""Tests for the approximate serving backend and snapshot format v3.

Covers the IVF index itself (determinism, coverage guarantees, the
probe cache), the ``backend="exact"|"ann"`` service knob, zero-copy
``mmap`` snapshot loading, v1/v2 -> v3 migration (index rebuilt on the
fly, newer writers rejected), and the stale-index regression: a
``partial_update`` fold-in must never leave ``recommend`` answering
from pre-update probe state.
"""

import glob
import json
import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data import tiny_dataset
from repro.serve import (ANNConfig, AsyncRequestFront, BackpressureError,
                         IVFIndex, RecommenderService,
                         SNAPSHOT_FORMAT_VERSION, load_snapshot,
                         recall_at_k, save_embedding_snapshot,
                         save_snapshot)
from repro.train import ModelConfig

K = 10


def clustered_embeddings(num_users=300, num_items=2000, dim=16,
                         centers=25, seed=0, dtype=np.float32):
    """User/item tables with real cluster structure (IVF's home turf)."""
    rng = np.random.default_rng(seed)
    c = rng.standard_normal((centers, dim)) * 3.0
    item = (c[rng.integers(0, centers, num_items)]
            + rng.standard_normal((num_items, dim)) * 0.4)
    user = (c[rng.integers(0, centers, num_users)]
            + rng.standard_normal((num_users, dim)) * 0.4)
    return user.astype(dtype), item.astype(dtype)


def random_train(num_users, num_items, per_user=5, seed=0):
    """A random seen-items CSR with ``per_user`` positives per user."""
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(num_users), per_user)
    cols = rng.integers(0, num_items, num_users * per_user)
    mat = sp.csr_matrix((np.ones(len(rows)), (rows, cols)),
                        shape=(num_users, num_items))
    mat.data[:] = 1
    mat.sort_indices()
    return mat


def exact_topk(user, item, k, exclusion=None):
    """Reference top-k by full GEMM + explicit masking."""
    scores = user @ item.T
    if exclusion is not None:
        scores = scores.copy()
        coo = exclusion.tocoo()
        scores[coo.row, coo.col] = -np.inf
    return np.argsort(-scores, kind="stable", axis=1)[:, :k]


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=17)


@pytest.fixture(scope="module")
def model_config():
    return ModelConfig(embedding_dim=16, num_layers=2)


@pytest.fixture(scope="module")
def trained(dataset, model_config):
    from repro.models import build_model
    from repro.train import TrainConfig, fit_model
    model = build_model("lightgcn", dataset, model_config, seed=4)
    fit_model(model, dataset, TrainConfig(epochs=2, batch_size=128))
    return model


# --------------------------------------------------------------------- #
# the IVF index itself
# --------------------------------------------------------------------- #

class TestIVFIndex:
    def test_build_is_deterministic(self):
        _, item = clustered_embeddings()
        a = IVFIndex.build(item, ANNConfig(seed=3))
        b = IVFIndex.build(item, ANNConfig(seed=3))
        assert np.array_equal(a.centroids, b.centroids)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.items, b.items)

    def test_members_partition_the_catalog(self):
        _, item = clustered_embeddings()
        index = IVFIndex.build(item)
        assert index.indptr[0] == 0
        assert index.indptr[-1] == len(item)
        assert np.array_equal(np.sort(index.items), np.arange(len(item)))

    def test_tiny_catalog_degrades_to_exact(self):
        # below the candidate floor the index scans everything: scores
        # are bitwise the full GEMM, so recall is 1.0 by construction
        user, item = clustered_embeddings(num_users=40, num_items=60)
        index = IVFIndex.build(item)
        scores = index.candidate_scores(user, item, np.arange(40), k=K)
        assert np.isfinite(scores).all()
        assert np.array_equal(scores, user @ item.T)

    def test_large_catalog_is_approximate(self):
        user, item = clustered_embeddings()
        index = IVFIndex.build(item)
        scores = index.candidate_scores(user, item, np.arange(50), k=K)
        assert np.isinf(scores).any()           # actually pruned
        finite = np.isfinite(scores).sum(axis=1)
        assert (finite >= K).all()              # but never starved

    def test_recall_budget_on_clustered_embeddings(self):
        from repro.serve import DEFAULT_RECALL_BUDGET
        user, item = clustered_embeddings()
        index = IVFIndex.build(item)
        scores = index.candidate_scores(user, item, np.arange(len(user)),
                                        k=20)
        approx = np.argsort(-scores, axis=1)[:, :20]
        exact = exact_topk(user, item, 20)
        assert recall_at_k(approx, exact) >= DEFAULT_RECALL_BUDGET

    def test_seen_counts_widen_the_pool(self):
        user, item = clustered_embeddings(num_users=20)
        index = IVFIndex.build(item)
        seen = np.full(20, 150)
        scores = index.candidate_scores(user, item, np.arange(20), k=K,
                                        seen_counts=seen)
        finite = np.isfinite(scores).sum(axis=1)
        assert (finite >= K + 150).all()

    def test_probe_cache_does_not_change_results(self):
        user, item = clustered_embeddings()
        cold = IVFIndex.build(item)
        warm = IVFIndex.build(item)
        warm.enable_probe_cache(len(user))
        ids = np.arange(len(user))
        reference = cold.candidate_scores(user, item, ids, k=K)
        first = warm.candidate_scores(user, item, ids, k=K)
        second = warm.candidate_scores(user, item, ids, k=K)  # cache hit
        assert np.array_equal(first, reference)
        assert np.array_equal(second, reference)

    def test_invalidate_bumps_generation(self):
        _, item = clustered_embeddings()
        index = IVFIndex.build(item)
        gen = index.generation
        index.invalidate()
        assert index.generation == gen + 1

    def test_recall_at_k_metric(self):
        lists = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall_at_k(lists, lists) == 1.0
        assert recall_at_k(lists, lists + 100) == 0.0
        assert recall_at_k(lists, lists[:, ::-1]) == 1.0  # order-free
        with pytest.raises(ValueError, match="shape"):
            recall_at_k(lists, lists[:, :2])


# --------------------------------------------------------------------- #
# the service backend knob
# --------------------------------------------------------------------- #

class TestServiceBackendKnob:
    def test_invalid_backend_rejected(self, trained, dataset):
        with pytest.raises(ValueError, match="backend"):
            RecommenderService.from_model(trained, dataset,
                                          backend="faiss")

    def test_ann_requires_embeddings(self, dataset, model_config):
        from repro.models import build_model
        ncf = build_model("ncf", dataset, model_config, seed=4)
        with pytest.raises(ValueError, match="ann"):
            RecommenderService.from_model(ncf, dataset, backend="ann")

    def test_ann_on_tiny_catalog_matches_exact(self, trained, dataset):
        # 50 items < the candidate floor: ANN degrades to the exact scan
        with RecommenderService.from_model(trained, dataset) as exact, \
                RecommenderService.from_model(trained, dataset,
                                              backend="ann") as ann:
            assert ann.backend == "ann"
            assert "ann" in ann.stats()
            assert np.array_equal(ann.recommend(k=K), exact.recommend(k=K))

    def test_worker_count_invariance(self, tmp_path):
        user, item = clustered_embeddings()
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item,
                                       train_matrix=random_train(300, 2000))
        with RecommenderService.from_snapshot(path, backend="ann") as one, \
                RecommenderService.from_snapshot(path, backend="ann",
                                                 num_workers=4) as four:
            assert np.array_equal(one.recommend(k=K), four.recommend(k=K))

    def test_ann_excludes_seen_items(self, tmp_path):
        user, item = clustered_embeddings()
        train = random_train(300, 2000, per_user=8)
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item,
                                       train_matrix=train)
        with RecommenderService.from_snapshot(path,
                                              backend="ann") as service:
            lists = service.recommend(k=K)
            for u in range(300):
                seen = set(service.seen_items_of(u))
                assert not seen.intersection(lists[u])

    def test_service_recall_budget(self, tmp_path):
        from repro.serve import DEFAULT_RECALL_BUDGET
        user, item = clustered_embeddings()
        train = random_train(300, 2000, per_user=8)
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item,
                                       train_matrix=train)
        with RecommenderService.from_snapshot(path) as exact, \
                RecommenderService.from_snapshot(path,
                                                 backend="ann") as ann:
            assert recall_at_k(ann.recommend(k=20), exact.recommend(k=20)) \
                >= DEFAULT_RECALL_BUDGET


# --------------------------------------------------------------------- #
# snapshot format v3: stored index, mmap, migration
# --------------------------------------------------------------------- #

class TestSnapshotV3:
    def test_save_stores_index_arrays_and_config(self, tmp_path):
        user, item = clustered_embeddings()
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item)
        snap = load_snapshot(path)
        assert snap.meta["format_version"] == SNAPSHOT_FORMAT_VERSION == 3
        assert snap.has_ann
        assert "ann" in snap.meta
        rebuilt = IVFIndex.build(item, snap.ann_config)
        assert np.array_equal(snap.ann_centroids, rebuilt.centroids)
        assert np.array_equal(snap.ann_items, rebuilt.items)

    def test_include_ann_false_rebuilds_on_demand(self, tmp_path):
        user, item = clustered_embeddings()
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item,
                                       include_ann=False)
        snap = load_snapshot(path)
        assert not snap.has_ann
        index = snap.build_ann_index()      # deterministic rebuild
        assert np.array_equal(index.centroids,
                              IVFIndex.build(item).centroids)

    def test_model_snapshot_carries_index(self, trained, dataset,
                                          tmp_path):
        path = save_snapshot(trained, dataset, str(tmp_path / "m"))
        snap = load_snapshot(path)
        assert snap.has_ann

    def test_custom_scorer_snapshot_has_no_index(self, dataset,
                                                 model_config, tmp_path):
        from repro.models import build_model
        ncf = build_model("ncf", dataset, model_config, seed=4)
        snap = load_snapshot(save_snapshot(ncf, dataset,
                                           str(tmp_path / "ncf")))
        assert not snap.has_ann
        with pytest.raises(ValueError, match="embeddings"):
            snap.build_ann_index()

    def test_save_leaves_no_temp_files(self, trained, dataset, tmp_path):
        save_snapshot(trained, dataset, str(tmp_path / "m"))
        assert not glob.glob(str(tmp_path / "*.tmp*"))

    def test_mmap_load_is_zero_copy_and_bit_identical(self, tmp_path):
        user, item = clustered_embeddings()
        train = random_train(300, 2000)
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item,
                                       train_matrix=train)
        plain = load_snapshot(path)
        mapped = load_snapshot(path, mmap=True)
        assert isinstance(mapped.user_embeddings, np.memmap)
        assert isinstance(mapped.item_embeddings, np.memmap)
        assert isinstance(mapped.ann_centroids, np.memmap)
        assert not mapped.user_embeddings.flags.writeable
        assert np.array_equal(np.asarray(mapped.user_embeddings),
                              plain.user_embeddings)
        assert np.array_equal(np.asarray(mapped.item_embeddings),
                              plain.item_embeddings)
        with RecommenderService.from_snapshot(plain) as a, \
                RecommenderService.from_snapshot(path, mmap=True) as b:
            assert np.array_equal(a.recommend(k=K), b.recommend(k=K))

    def test_mmap_service_matches_for_ann_backend(self, tmp_path):
        user, item = clustered_embeddings()
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item)
        with RecommenderService.from_snapshot(path, backend="ann") as a, \
                RecommenderService.from_snapshot(path, backend="ann",
                                                 mmap=True) as b:
            assert np.array_equal(a.recommend(k=K), b.recommend(k=K))

    def test_mmap_of_compressed_artifact_rejected(self, tmp_path):
        user, item = clustered_embeddings(num_users=50, num_items=80)
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item)
        blob = dict(np.load(path, allow_pickle=False))
        legacy = str(tmp_path / "legacy.npz")
        np.savez_compressed(legacy, **blob)
        with pytest.raises(ValueError, match="mmap"):
            load_snapshot(legacy, mmap=True)
        assert load_snapshot(legacy).has_embeddings  # eager load still fine

    def test_mmap_flag_requires_mapped_snapshot_object(self, tmp_path):
        user, item = clustered_embeddings(num_users=50, num_items=80)
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item)
        snap = load_snapshot(path)                   # not mapped
        with pytest.raises(ValueError, match="mmap"):
            RecommenderService.from_snapshot(snap, mmap=True)

    # ----------------------------------------------------------------- #
    # migration (rolling-deployment contract)
    # ----------------------------------------------------------------- #

    def _as_legacy(self, path, out, version):
        """Rewrite a v3 artifact as a compressed pre-v3 one."""
        blob = dict(np.load(path, allow_pickle=False))
        for name in [n for n in blob if n.startswith("ann::")]:
            del blob[name]
        meta = json.loads(str(blob["meta_json"]))
        meta.pop("ann", None)
        if version is None:
            meta.pop("format_version", None)
        else:
            meta["format_version"] = version
        blob["meta_json"] = np.array(json.dumps(meta))
        np.savez_compressed(out, **blob)
        return out

    @pytest.mark.parametrize("version", [None, 2])
    def test_legacy_artifact_serves_ann_via_rebuild(self, tmp_path,
                                                    version):
        user, item = clustered_embeddings()
        path = save_embedding_snapshot(str(tmp_path / "v3.npz"), user,
                                       item)
        legacy = self._as_legacy(path, str(tmp_path / "old.npz"), version)
        snap = load_snapshot(legacy)
        assert snap.meta["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert not snap.has_ann
        with RecommenderService.from_snapshot(path,
                                              backend="ann") as stored, \
                RecommenderService.from_snapshot(legacy,
                                                 backend="ann") as rebuilt:
            # the on-the-fly rebuild is the same deterministic index the
            # v3 save stored, so the answers match exactly
            assert np.array_equal(stored.recommend(k=K),
                                  rebuilt.recommend(k=K))

    def test_newer_writer_rejected_by_name(self, tmp_path):
        user, item = clustered_embeddings(num_users=30, num_items=40)
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item)
        blob = dict(np.load(path, allow_pickle=False))
        meta = json.loads(str(blob["meta_json"]))
        meta["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        blob["meta_json"] = np.array(json.dumps(meta))
        np.savez(path, **blob)
        with pytest.raises(ValueError,
                           match=f"format_version "
                                 f"{SNAPSHOT_FORMAT_VERSION + 1}"):
            load_snapshot(path)

    def test_embedding_snapshot_validation(self, tmp_path):
        user, item = clustered_embeddings(num_users=30, num_items=40)
        with pytest.raises(ValueError, match="shared"):
            save_embedding_snapshot(str(tmp_path / "bad.npz"), user,
                                    item[:, :-1])
        with pytest.raises(ValueError, match="train matrix"):
            save_embedding_snapshot(str(tmp_path / "bad.npz"), user, item,
                                    train_matrix=sp.csr_matrix((3, 3)))


# --------------------------------------------------------------------- #
# partial_update vs the index (the stale-index regression)
# --------------------------------------------------------------------- #

class TestPartialUpdateInvalidation:
    def _fresh_reference(self, service):
        """An ANN service built from ``service``'s *current* state.

        Its probe cache starts empty, so its answers are by construction
        free of pre-update state — the reference the updated service
        must match.
        """
        index = IVFIndex.build(np.asarray(service._item_emb),
                               service._ann_index.config)
        return RecommenderService(
            num_users=service.num_users, num_items=service.num_items,
            exclusion=service._exclusion,
            user_embeddings=service._user_emb,
            item_embeddings=service._item_emb,
            model_name=service.model_name, backend="ann",
            ann_index=index)

    def test_fold_in_never_serves_stale_probes(self, tmp_path):
        user, item = clustered_embeddings()
        train = random_train(300, 2000, per_user=4)
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item,
                                       train_matrix=train)
        with RecommenderService.from_snapshot(path,
                                              backend="ann") as service:
            users = np.arange(64)
            before = service.recommend(users, k=K)   # warms the cache
            # fold a burst of cross-cluster interactions into user 3 —
            # enough to move its vector into a different probe region
            target = int(before[10, 0])
            moved = np.full(40, 3)
            items = np.arange(target, target + 40) % service.num_items
            service.partial_update(moved, items)
            after = service.recommend(users, k=K)
            with self._fresh_reference(service) as reference:
                assert np.array_equal(after,
                                      reference.recommend(users, k=K))

    def test_updated_item_excluded_immediately(self, tmp_path):
        user, item = clustered_embeddings()
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item,
                                       train_matrix=random_train(300, 2000))
        with RecommenderService.from_snapshot(path,
                                              backend="ann") as service:
            top = service.recommend([7], k=K)[0]
            service.partial_update([7], [int(top[0])])
            assert int(top[0]) not in service.recommend([7], k=K)[0]

    def test_fold_in_bumps_index_generation(self, tmp_path):
        user, item = clustered_embeddings()
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item,
                                       train_matrix=random_train(300, 2000))
        with RecommenderService.from_snapshot(path,
                                              backend="ann") as service:
            gen = service.stats()["ann"]["generation"]
            service.partial_update([1], [5])
            assert service.stats()["ann"]["generation"] == gen + 1
            # exclusion-only updates leave user vectors (and probes) alone
            service.partial_update([1], [6], refresh_embeddings=False)
            assert service.stats()["ann"]["generation"] == gen + 1

    def test_mmap_partial_update_is_copy_on_write(self, tmp_path):
        user, item = clustered_embeddings()
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item,
                                       train_matrix=random_train(300, 2000))
        with RecommenderService.from_snapshot(path, backend="ann",
                                              mmap=True) as service:
            service.partial_update([2], [9])
            # the mutation landed on a private copy ...
            assert not isinstance(service._user_emb, np.memmap)
        # ... and the artifact on disk is untouched
        assert np.array_equal(
            np.asarray(load_snapshot(path, mmap=True).user_embeddings),
            user)


# --------------------------------------------------------------------- #
# the async request front
# --------------------------------------------------------------------- #

class TestAsyncRequestFront:
    def test_batches_match_direct_answers(self, tmp_path):
        user, item = clustered_embeddings()
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item,
                                       train_matrix=random_train(300, 2000))
        with RecommenderService.from_snapshot(path,
                                              backend="ann") as service:
            direct = service.recommend(np.arange(60), k=K)
            with AsyncRequestFront(service, window_ms=1.0, k=K) as front:
                futures = [front.submit([i, i + 1])
                           for i in range(0, 60, 2)]
                got = np.concatenate([f.result(timeout=30)
                                      for f in futures])
                assert np.array_equal(got, direct)
                assert front.pending_users == 0
                # empty submits resolve immediately
                assert front.submit([]).result().shape == (0, K)

    def test_backpressure_and_close(self, tmp_path):
        user, item = clustered_embeddings(num_users=50, num_items=200)
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item)
        with RecommenderService.from_snapshot(path) as service:
            front = AsyncRequestFront(service, window_ms=200.0,
                                      max_pending_users=10, k=5)
            try:
                with pytest.raises(BackpressureError):
                    for _ in range(4):
                        front.submit(np.arange(4))
            finally:
                front.close()
            # requests accepted before close were still answered
            with pytest.raises(RuntimeError, match="closed"):
                front.submit([0])

    def test_propagates_service_errors(self, tmp_path):
        user, item = clustered_embeddings(num_users=50, num_items=200)
        path = save_embedding_snapshot(str(tmp_path / "c.npz"), user, item)
        with RecommenderService.from_snapshot(path) as service:
            with AsyncRequestFront(service, window_ms=0.0, k=5) as front:
                future = front.submit([10_000])      # out of range
                with pytest.raises(ValueError, match="out of range"):
                    future.result(timeout=30)
                assert front.pending_users == 0
