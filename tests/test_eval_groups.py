"""Tests for the degree-group (Table V) evaluation protocol."""

import numpy as np
import pytest

from repro.data import tiny_dataset
from repro.eval import evaluate_item_groups, evaluate_user_groups


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(seed=11, num_users=80, num_items=60,
                        mean_degree=10.0)


@pytest.fixture(scope="module")
def oracle_scores(dataset):
    return dataset.test_matrix.toarray() * 10.0


class TestUserGroups:
    def test_five_groups(self, dataset, oracle_scores):
        out = evaluate_user_groups(oracle_scores, dataset, num_groups=5)
        assert len(out) == 5

    def test_oracle_perfect_everywhere(self, dataset, oracle_scores):
        out = evaluate_user_groups(oracle_scores, dataset, num_groups=3,
                                   ks=(40,))
        for metrics in out.values():
            if metrics:
                assert metrics["recall@40"] == pytest.approx(1.0)

    def test_group_isolation(self, dataset):
        """Breaking scores for sparse users only hurts the sparse group."""
        scores = dataset.test_matrix.toarray() * 10.0
        degrees = dataset.train.user_degrees()
        sparse_users = np.argsort(degrees)[: dataset.num_users // 5]
        scores[sparse_users] = 0.0
        out = evaluate_user_groups(scores, dataset, num_groups=5, ks=(40,))
        labels = list(out)
        first = out[labels[0]]
        last = out[labels[-1]]
        if first and last:
            assert first["recall@40"] < last["recall@40"]


class TestItemGroups:
    def test_five_groups(self, dataset, oracle_scores):
        out = evaluate_item_groups(oracle_scores, dataset, num_groups=5)
        assert len(out) == 5

    def test_restricted_positives_only(self, dataset, oracle_scores):
        out = evaluate_item_groups(oracle_scores, dataset, num_groups=3,
                                   ks=(40,))
        # oracle still perfect when positives are restricted per group
        for metrics in out.values():
            if metrics:
                assert metrics["recall@40"] == pytest.approx(1.0)
