"""Tests for the mixhop encoder (paper Sec III-C)."""

import numpy as np
import pytest

from repro.autograd import Tensor, spmm
from repro.core import MixhopEncoder, MixhopLayer
from repro.data import tiny_dataset
from repro.eval import mean_average_distance
from repro.graph import symmetric_normalize
from repro.models import build_model, light_gcn_propagate
from repro.train import ModelConfig


@pytest.fixture(scope="module")
def setup():
    ds = tiny_dataset(seed=31)
    adj = symmetric_normalize(ds.train.bipartite_adjacency(),
                              add_self_loops=True)
    rng = np.random.default_rng(0)
    ego = Tensor(rng.normal(size=(ds.train.num_nodes, 18)),
                 requires_grad=True)
    return ds, adj, ego


class TestMixhopLayer:
    def test_output_shape_preserved(self, setup):
        _, adj, ego = setup
        layer = MixhopLayer(18, (0, 1, 2), np.random.default_rng(1))
        out = layer(ego, lambda h: spmm(adj, h))
        assert out.shape == ego.shape

    def test_widths_sum_to_dim(self):
        layer = MixhopLayer(16, (0, 1, 2), np.random.default_rng(2))
        assert sum(layer.widths) == 16

    def test_hop0_frozen_when_requested(self, setup):
        _, adj, ego = setup
        layer = MixhopLayer(18, (0, 1, 2), np.random.default_rng(3),
                            freeze_hop0=True)
        assert not layer.w_hop0.requires_grad
        np.testing.assert_allclose(layer.w_hop0.data, 0.0)
        # Eq 12: first-layer output block for hop 0 is zero before the
        # activation, so after LeakyReLU it stays zero
        out = layer(ego, lambda h: spmm(adj, h))
        np.testing.assert_allclose(out.data[:, :layer.widths[0]], 0.0)

    def test_gradients_flow_to_hop_weights(self, setup):
        _, adj, ego = setup
        layer = MixhopLayer(18, (0, 1, 2), np.random.default_rng(4),
                            freeze_hop0=False)
        out = layer(ego, lambda h: spmm(adj, h)).sum()
        out.backward()
        for hop in (0, 1, 2):
            weight = getattr(layer, f"w_hop{hop}")
            assert weight.grad is not None
            assert np.abs(weight.grad).sum() > 0

    def test_single_hop_reduces_to_vanilla_gnn(self, setup):
        """Paper: 'If M = 1, the mix-hop GNN reduces to a vanilla GNN'."""
        _, adj, ego = setup
        layer = MixhopLayer(18, (1,), np.random.default_rng(5))
        out = layer(ego, lambda h: spmm(adj, h))
        expected = spmm(adj, ego).data @ layer.w_hop1.data
        # LeakyReLU(0.5)
        expected = np.where(expected > 0, expected, 0.5 * expected)
        np.testing.assert_allclose(out.data, expected)


class TestMixhopEncoder:
    def test_shape(self, setup):
        _, adj, ego = setup
        enc = MixhopEncoder(18, 2, (0, 1, 2), np.random.default_rng(6))
        out = enc(ego, lambda h: spmm(adj, h))
        assert out.shape == ego.shape

    def test_needs_hops(self):
        with pytest.raises(ValueError):
            MixhopEncoder(16, 2, (), np.random.default_rng(0))

    def test_mitigates_oversmoothing_vs_vanilla(self, setup):
        """The paper's Table III claim: mixhop keeps MAD higher than a
        vanilla GCN at equal depth."""
        ds, adj, _ = setup
        rng = np.random.default_rng(7)
        ego_data = rng.normal(size=(ds.train.num_nodes, 18))
        depth = 6  # deep enough for vanilla propagation to smooth
        vanilla_adj = symmetric_normalize(ds.train.bipartite_adjacency(),
                                          add_self_loops=False)
        vanilla = light_gcn_propagate(vanilla_adj, Tensor(ego_data), depth)
        enc = MixhopEncoder(18, depth, (0, 1, 2), np.random.default_rng(8))
        mixed = enc(Tensor(ego_data), lambda h: spmm(adj, h))
        assert mean_average_distance(mixed.data) > \
            mean_average_distance(vanilla.data)

    def test_trainable_end_to_end(self, setup):
        _, adj, ego = setup
        enc = MixhopEncoder(18, 2, (0, 1, 2), np.random.default_rng(9))
        loss = (enc(ego, lambda h: spmm(adj, h)) ** 2).sum()
        loss.backward()
        trainable = [p for p in enc.parameters() if p.requires_grad]
        assert trainable
        assert all(p.grad is not None for p in trainable)
