"""End-to-end tests of the unified observability layer (``repro.obs``).

Acceptance contract of the observability PR:

* a 2-epoch traced run with ``train_workers=2`` writes a schema-valid
  Chrome-format ``trace.json`` whose spans come from **at least two
  processes** — the parent's epoch/window spans plus the spawn workers'
  ``train.stale_batch`` spans, merged exactly once at pool shutdown
  (span ids stay globally unique across the merge);
* crash and early-stop paths also merge worker spans exactly once (the
  idempotent pool ``close()`` is the single drain point);
* sweep traces compose the same way: sequential cells' spans land in
  the parent buffer directly, parallel cells ship theirs through the
  result payload and are absorbed only at collection — either way each
  cell's ``experiment.run`` span appears exactly once in the sweep's
  merged ``trace.json``;
* tracing is observability-only: a traced run's
  ``run_dir_fingerprint`` equals the untraced run's;
* ``metrics.jsonl`` streams crash-safely (epoch events written +
  fsynced as they happen survive a mid-fit crash) and ``status.json``
  carries ``last_heartbeat`` / ``epoch`` through every lifecycle state,
  including terminal ones.
"""

import collections
import json
import os

import pytest

from repro.api import (Experiment, ExperimentSpec, run_dir_fingerprint,
                       run_sweep)
from repro.api.experiment import run_cell
from repro.api.rundir import read_status
from repro.obs import validate_chrome_trace

FAST = {"epochs": 2, "batch_size": 128, "eval_every": 2, "verbose": False}
MODEL_CFG = {"embedding_dim": 8, "num_layers": 2}


def _spec(model="lightgcn", **train_overrides):
    return ExperimentSpec(model=model, dataset="tiny",
                          model_config=dict(MODEL_CFG),
                          train_config={**FAST, **train_overrides})


def _load_trace(path):
    with open(path) as handle:
        payload = json.load(handle)
    assert validate_chrome_trace(payload) == []
    return payload


def _spans(payload, name=None):
    events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    if name is not None:
        events = [e for e in events if e["name"] == name]
    return events


def _assert_span_ids_unique(payload):
    """Globally unique span ids == every span merged exactly once."""
    ids = [(e["pid"], e["args"]["span_id"]) for e in _spans(payload)
           if "span_id" in e.get("args", {})]
    dupes = [k for k, n in collections.Counter(ids).items() if n > 1]
    assert not dupes, f"spans merged more than once: {dupes}"


# --------------------------------------------------------------------- #
# cross-process trace merge: training pool
# --------------------------------------------------------------------- #

class TestTrainWorkerTraceMerge:
    def test_traced_parallel_run_spans_two_processes(self, tmp_path):
        """Acceptance: trace.json merges spans from >= 2 pids."""
        run_dir = str(tmp_path / "run")
        Experiment(_spec(trace=True, propagate_every=2,
                         train_workers=2)).run(run_dir=run_dir)
        payload = _load_trace(os.path.join(run_dir, "trace.json"))

        pids = {e["pid"] for e in _spans(payload)}
        assert len(pids) >= 2

        parent_pid = next(e["pid"] for e in _spans(payload,
                                                   "experiment.run"))
        worker_spans = _spans(payload, "train.stale_batch")
        assert worker_spans, "no worker spans were merged"
        assert all(e["pid"] != parent_pid for e in worker_spans)
        # worker processes announce themselves by label
        labels = {e["args"]["name"]
                  for e in payload["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "process_name"}
        assert any(l.startswith("train-worker-") for l in labels)
        _assert_span_ids_unique(payload)

    def test_worker_batches_appear_exactly_once(self, tmp_path):
        """Each (worker, seq) batch span shows up once after the merge."""
        run_dir = str(tmp_path / "run")
        Experiment(_spec(trace=True, propagate_every=2,
                         train_workers=2)).run(run_dir=run_dir)
        payload = _load_trace(os.path.join(run_dir, "trace.json"))
        keys = [(e["pid"], e["args"]["span_id"])
                for e in _spans(payload, "train.stale_batch")]
        assert keys
        assert len(keys) == len(set(keys))

    def test_crash_path_still_merges_worker_spans_once(self, tmp_path):
        """A mid-fit crash drains the pool exactly once (run_cell)."""
        spec = _spec(trace=True, propagate_every=2, train_workers=2,
                     fail_after_epoch=1)
        run_dir = str(tmp_path / "run")
        result = run_cell(spec.to_dict(), run_dir=run_dir)
        assert result["status"] == "failed"
        events = result["trace_events"]
        assert events  # partial trace travels with the failure summary
        batch_keys = [(e["pid"], e["args"]["span_id"])
                      for e in events
                      if e.get("name") == "train.stale_batch"]
        assert batch_keys
        assert len(batch_keys) == len(set(batch_keys))

    def test_early_stop_path_merges_once(self, tmp_path):
        """Early stopping closes the pool through the same single
        drain point as the normal path."""
        run_dir = str(tmp_path / "run")
        Experiment(_spec(trace=True, propagate_every=2, train_workers=2,
                         epochs=6, eval_every=1,
                         early_stop_patience=1)).run(run_dir=run_dir)
        payload = _load_trace(os.path.join(run_dir, "trace.json"))
        keys = [(e["pid"], e["args"]["span_id"])
                for e in _spans(payload, "train.stale_batch")]
        assert keys
        assert len(keys) == len(set(keys))
        _assert_span_ids_unique(payload)


# --------------------------------------------------------------------- #
# cross-process trace merge: sweep cells
# --------------------------------------------------------------------- #

class TestSweepTraceMerge:
    def test_parallel_sweep_merges_each_cell_once(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        specs = [ExperimentSpec(model="biasmf", dataset="tiny", seed=s,
                                model_config=dict(MODEL_CFG),
                                train_config={**FAST, "trace": True})
                 for s in (0, 1)]
        results = run_sweep(specs, base_dir=base_dir, workers=2)
        assert [r.status for r in results] == ["completed"] * 2
        payload = _load_trace(os.path.join(base_dir, "trace.json"))
        runs = _spans(payload, "experiment.run")
        assert len(runs) == 2  # one per cell, never duplicated
        # cells ran in spawned worker processes, parent ran the sweep
        parent_pid = next(e["pid"] for e in _spans(payload,
                                                   "sweep.claim"))
        assert all(e["pid"] != parent_pid for e in runs)
        _assert_span_ids_unique(payload)

    def test_sequential_sweep_merges_each_cell_once(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        specs = [ExperimentSpec(model="biasmf", dataset="tiny", seed=s,
                                model_config=dict(MODEL_CFG),
                                train_config={**FAST, "trace": True})
                 for s in (0, 1)]
        results = run_sweep(specs, base_dir=base_dir)
        assert [r.status for r in results] == ["completed"] * 2
        payload = _load_trace(os.path.join(base_dir, "trace.json"))
        runs = _spans(payload, "experiment.run")
        assert len(runs) == 2
        # in-process cells share the sweep's pid
        parent_pid = next(e["pid"] for e in _spans(payload,
                                                   "sweep.claim"))
        assert all(e["pid"] == parent_pid for e in runs)
        _assert_span_ids_unique(payload)

    def test_untraced_sweep_writes_no_trace(self, tmp_path):
        base_dir = str(tmp_path / "sweep")
        specs = [ExperimentSpec(model="biasmf", dataset="tiny", seed=0,
                                model_config=dict(MODEL_CFG),
                                train_config=dict(FAST))]
        run_sweep(specs, base_dir=base_dir)
        assert not os.path.exists(os.path.join(base_dir, "trace.json"))


# --------------------------------------------------------------------- #
# observability never changes the math
# --------------------------------------------------------------------- #

class TestTraceIsObservabilityOnly:
    def test_traced_run_fingerprint_matches_untraced(self, tmp_path):
        plain_dir = str(tmp_path / "plain")
        traced_dir = str(tmp_path / "traced")
        Experiment(_spec()).run(run_dir=plain_dir)
        Experiment(_spec(trace=True)).run(run_dir=traced_dir)
        assert run_dir_fingerprint(plain_dir) == \
            run_dir_fingerprint(traced_dir)
        # ... even though only the traced dir has the trace artifact
        assert os.path.exists(os.path.join(traced_dir, "trace.json"))
        assert not os.path.exists(os.path.join(plain_dir, "trace.json"))

    def test_run_result_carries_trace_events(self, tmp_path):
        result = Experiment(_spec(trace=True)).run(
            run_dir=str(tmp_path / "run"))
        names = {e["name"] for e in result.trace_events}
        assert {"experiment.run", "experiment.dataset",
                "experiment.model", "train.epoch"} <= names
        untraced = Experiment(_spec()).run()
        assert untraced.trace_events is None


# --------------------------------------------------------------------- #
# crash-safe metrics stream + heartbeats
# --------------------------------------------------------------------- #

class TestMetricsStreamAndHeartbeat:
    def test_metrics_jsonl_survives_crash(self, tmp_path):
        """Epoch 1's streamed record outlives the epoch-2 crash."""
        run_dir = str(tmp_path / "run")
        result = run_cell(_spec("biasmf",
                                fail_after_epoch=1).to_dict(),
                          run_dir=run_dir)
        assert result["status"] == "failed"
        path = os.path.join(run_dir, "metrics.jsonl")
        assert os.path.exists(path)
        with open(path) as handle:
            records = [json.loads(line) for line in handle]
        epochs = [r for r in records if r.get("event") == "epoch"]
        assert [r["epoch"] for r in epochs] == [1]
        assert "loss" in epochs[0]

    def test_failed_status_keeps_last_heartbeat(self, tmp_path):
        run_dir = str(tmp_path / "run")
        run_cell(_spec("biasmf", fail_after_epoch=1).to_dict(),
                 run_dir=run_dir)
        status = read_status(run_dir)
        assert status["status"] == "failed"
        assert status["epoch"] == 1  # last epoch that proved liveness
        assert status["last_heartbeat"] > 0

    def test_completed_status_keeps_last_heartbeat(self, tmp_path):
        run_dir = str(tmp_path / "run")
        Experiment(_spec("biasmf")).run(run_dir=run_dir)
        status = read_status(run_dir)
        assert status["status"] == "completed"
        assert status["epoch"] == FAST["epochs"]
        assert status["last_heartbeat"] > 0

    def test_completed_run_rewrites_canonical_stream(self, tmp_path):
        """On success the canonical writer replaces the streamed file:
        one record per epoch plus the terminal ``best`` record."""
        run_dir = str(tmp_path / "run")
        Experiment(_spec("biasmf")).run(run_dir=run_dir)
        with open(os.path.join(run_dir, "metrics.jsonl")) as handle:
            records = [json.loads(line) for line in handle]
        assert [r["event"] for r in records] == \
            ["epoch"] * FAST["epochs"] + ["best"]

    def test_run_dir_gets_metrics_json_snapshot(self, tmp_path):
        """The registry snapshot (counters/gauges/histograms) lands in
        the run dir alongside the per-epoch stream."""
        run_dir = str(tmp_path / "run")
        Experiment(_spec("biasmf")).run(run_dir=run_dir)
        with open(os.path.join(run_dir, "metrics.json")) as handle:
            snapshot = json.load(handle)
        names = set(snapshot["metrics"])
        assert {"train.epochs", "train.loss",
                "train.epoch_seconds"} <= names
