"""Chaos/leak tests for multi-process serving over one mmap'd snapshot.

The zero-copy claim, verified with real processes and ``/proc``:

* N serving processes that memory-map the same snapshot and fault in
  every page of the embedding tables report a *shared* resident
  footprint — the summed proportional set size (Pss) of their snapshot
  mappings stays ~1x the table bytes, not Nx (each mapped page's Pss is
  split across its sharers, so private copies would sum to Nx).
* SIGKILLing one serving process mid-flight leaves no stale temp/index
  files next to the snapshot and no new ``/dev/shm`` segments, and the
  surviving processes keep answering.

Follows the ``/dev/shm/psm_*`` leak-check discipline of
``test_train_parallel.py``; Pss accounting needs ``/proc/<pid>/smaps``
(skipped where the kernel doesn't provide it).
"""

import glob
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.serve import RecommenderService, save_embedding_snapshot

pytestmark = pytest.mark.chaos

NUM_PROCS = 3
NUM_USERS, NUM_ITEMS, DIM = 40_000, 2_000, 64   # ~10.7 MB of tables


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


# the serving child: map the snapshot, fault every table page, serve,
# then answer request flags until told to stop
_CHILD = """
import os, sys, time
import numpy as np
from repro.serve import RecommenderService, load_snapshot

snapshot, workdir, ident = sys.argv[1], sys.argv[2], sys.argv[3]
snap = load_snapshot(snapshot, mmap=True)
# fault in every page of both tables so Rss reflects the full mapping
checksum = float(np.asarray(snap.user_embeddings).sum()
                 + np.asarray(snap.item_embeddings).sum())
service = RecommenderService.from_snapshot(snap, backend="ann")
lists = service.recommend(np.arange(64), k=10)
np.save(os.path.join(workdir, f"first-{ident}.npy"), lists)
with open(os.path.join(workdir, f"ready-{ident}"), "w") as fh:
    fh.write(str(os.getpid()))
stop = os.path.join(workdir, "stop")
req = os.path.join(workdir, "req")
answered = False
while not os.path.exists(stop):
    if os.path.exists(req) and not answered:
        np.save(os.path.join(workdir, f"answer-{ident}.npy"),
                service.recommend(np.arange(64), k=10))
        answered = True
    time.sleep(0.02)
"""


def _pss_of_mapping(pid, needle):
    """Sum the Pss (KiB) of ``pid``'s mappings whose path contains needle.

    Returns None when smaps is unavailable (permission, exited, or no
    procfs) — callers skip the assertion rather than fail.
    """
    try:
        with open(f"/proc/{pid}/smaps") as fh:
            lines = fh.readlines()
    except OSError:
        return None
    total, in_block = 0, False
    for line in lines:
        if "-" in line.split(" ", 1)[0] and ":" not in line.split(" ")[0]:
            in_block = needle in line
        elif in_block and line.startswith("Pss:"):
            total += int(line.split()[1])
    return total


def _wait_for(paths, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(os.path.exists(p) for p in paths):
            return True
        time.sleep(0.05)
    return False


@pytest.mark.skipif(not os.path.exists("/proc/self/smaps"),
                    reason="needs /proc smaps accounting")
def test_mmap_serving_shares_tables_and_survives_sigkill(tmp_path):
    rng = np.random.default_rng(0)
    user = rng.standard_normal((NUM_USERS, DIM)).astype(np.float32)
    item = rng.standard_normal((NUM_ITEMS, DIM)).astype(np.float32)
    path = save_embedding_snapshot(str(tmp_path / "shared.npz"), user,
                                   item)
    table_bytes = user.nbytes + item.nbytes

    shm_before = _shm_segments()
    env = dict(os.environ)
    env["PYTHONPATH"] = ("src" + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else "src")
    workdir = str(tmp_path)
    procs = [subprocess.Popen(
        [sys.executable, "-c", _CHILD, path, workdir, str(i)], env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        for i in range(NUM_PROCS)]
    try:
        ready = [os.path.join(workdir, f"ready-{i}")
                 for i in range(NUM_PROCS)]
        assert _wait_for(ready), "serving children never came up"

        # every child answered, and identically (shared state, one truth)
        first = [np.load(os.path.join(workdir, f"first-{i}.npy"))
                 for i in range(NUM_PROCS)]
        for lists in first[1:]:
            assert np.array_equal(lists, first[0])

        # --- the zero-copy claim -------------------------------------- #
        pss = [_pss_of_mapping(p.pid, "shared.npz") for p in procs]
        if all(v is not None for v in pss):
            total_kib = sum(pss)
            # private copies would put this at ~NUM_PROCS x the tables;
            # shared pages split their Pss, so the sum stays ~1x.  1.5x
            # headroom absorbs page-rounding and the small CSR/meta
            assert total_kib * 1024 < 1.5 * table_bytes, (
                f"summed Pss {total_kib} KiB for {NUM_PROCS} processes "
                f"looks unshared (tables are {table_bytes // 1024} KiB)")

        # --- SIGKILL one server mid-flight ---------------------------- #
        victim = procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)

        # survivors still answer requests
        with open(os.path.join(workdir, "req"), "w") as fh:
            fh.write("1")
        answers = [os.path.join(workdir, f"answer-{i}.npy")
                   for i in range(1, NUM_PROCS)]
        assert _wait_for(answers), "survivors stopped answering"
        for p in answers:
            assert np.array_equal(np.load(p), first[0])
    finally:
        with open(os.path.join(workdir, "stop"), "w") as fh:
            fh.write("1")
        for p in procs:
            try:
                p.wait(timeout=30)
            except subprocess.TimeoutExpired:
                p.kill()
                p.wait(timeout=10)

    # no stale temp/index files next to the snapshot, no shm leaks: the
    # SIGKILLed server held only read-only mappings and its exit drops
    # them with the process
    assert not glob.glob(str(tmp_path / "*.tmp*"))
    leftovers = {os.path.basename(f) for f in glob.glob(str(tmp_path / "*"))}
    assert not {f for f in leftovers if f.endswith(".lock")
                or f.startswith("index-")}
    assert _shm_segments() <= shm_before


def test_crashed_save_leaves_recoverable_state(tmp_path):
    """A save that dies mid-write never corrupts the published artifact."""
    rng = np.random.default_rng(1)
    user = rng.standard_normal((200, 8)).astype(np.float32)
    item = rng.standard_normal((300, 8)).astype(np.float32)
    path = save_embedding_snapshot(str(tmp_path / "live.npz"), user, item)
    # simulate the torn write a crash would leave behind: a half-written
    # temp file next to the live artifact
    with open(path + ".tmp.npz", "wb") as fh:
        fh.write(b"PK\x03\x04 torn")
    # the published artifact still loads and serves
    with RecommenderService.from_snapshot(path, backend="ann",
                                          mmap=True) as service:
        assert service.recommend([0], k=5).shape == (1, 5)
    # and a fresh save of the same path replaces the torn temp file
    save_embedding_snapshot(path, user, item)
    assert not glob.glob(str(tmp_path / "*.tmp*"))
