"""Tests for adjacency normalization."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (InteractionGraph, adjacency_power_apply,
                         normalized_edge_weights, row_normalize,
                         symmetric_normalize)


@pytest.fixture
def adjacency():
    graph = InteractionGraph.from_edges(
        np.array([0, 0, 1, 2]), np.array([0, 1, 1, 2]), 3, 3)
    return graph.bipartite_adjacency()


class TestSymmetricNormalize:
    def test_matches_dense_formula(self, adjacency):
        norm = symmetric_normalize(adjacency, add_self_loops=True)
        dense = adjacency.toarray() + np.eye(6)
        deg = dense.sum(axis=1)
        expected = dense / np.sqrt(np.outer(deg, deg))
        np.testing.assert_allclose(norm.toarray(), expected)

    def test_no_self_loops_variant(self, adjacency):
        norm = symmetric_normalize(adjacency, add_self_loops=False)
        assert np.allclose(norm.toarray().diagonal(), 0.0)

    def test_symmetry_preserved(self, adjacency):
        norm = symmetric_normalize(adjacency)
        np.testing.assert_allclose(norm.toarray(), norm.toarray().T)

    def test_isolated_node_row_zero(self):
        adj = sp.csr_matrix((3, 3))
        adj[0, 1] = adj[1, 0] = 1.0
        norm = symmetric_normalize(adj.tocsr(), add_self_loops=False)
        np.testing.assert_allclose(norm.toarray()[2], np.zeros(3))

    def test_spectral_radius_bounded(self, adjacency):
        norm = symmetric_normalize(adjacency, add_self_loops=True)
        eigvals = np.linalg.eigvalsh(norm.toarray())
        assert np.abs(eigvals).max() <= 1.0 + 1e-10


class TestRowNormalize:
    def test_rows_sum_to_one(self, adjacency):
        norm = row_normalize(adjacency)
        sums = np.asarray(norm.sum(axis=1)).ravel()
        occupied = np.asarray(adjacency.sum(axis=1)).ravel() > 0
        np.testing.assert_allclose(sums[occupied], 1.0)

    def test_empty_rows_stay_zero(self):
        adj = sp.csr_matrix((2, 2))
        norm = row_normalize(adj)
        assert norm.nnz == 0


class TestNormalizedEdgeWeights:
    def test_matches_symmetric_normalization(self):
        rows = np.array([0, 1, 2])
        cols = np.array([3, 3, 4])
        weights = np.array([1.0, 1.0, 1.0])
        normed = normalized_edge_weights(rows, cols, weights, 5)
        # build the symmetric matrix and compare entries
        full = sp.csr_matrix(
            (np.concatenate([weights, weights]),
             (np.concatenate([rows, cols]), np.concatenate([cols, rows]))),
            shape=(5, 5))
        reference = symmetric_normalize(full, add_self_loops=False)
        for idx in range(3):
            assert normed[idx] == pytest.approx(
                reference[rows[idx], cols[idx]])

    def test_weighted_degrees(self):
        rows = np.array([0])
        cols = np.array([1])
        weights = np.array([4.0])
        # degree of both endpoints is 4 -> w/sqrt(16) = 1.0
        assert normalized_edge_weights(rows, cols, weights, 2)[0] == \
            pytest.approx(1.0)

    def test_zero_weight_edges(self):
        rows = np.array([0, 1])
        cols = np.array([1, 0])
        weights = np.array([0.0, 0.0])
        normed = normalized_edge_weights(rows, cols, weights, 2)
        np.testing.assert_allclose(normed, 0.0)


class TestPowerApply:
    def test_matches_matrix_power(self, adjacency):
        norm = symmetric_normalize(adjacency)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(6, 3))
        for power in range(4):
            iterated = adjacency_power_apply(norm, x, power)
            direct = np.linalg.matrix_power(norm.toarray(), power) @ x
            np.testing.assert_allclose(iterated, direct, atol=1e-12)

    def test_negative_power_raises(self, adjacency):
        norm = symmetric_normalize(adjacency)
        with pytest.raises(ValueError):
            adjacency_power_apply(norm, np.ones((6, 1)), -1)
