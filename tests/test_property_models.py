"""Property-based tests (hypothesis) over model-level invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, functional as F
from repro.core.gib import pool_gaussian_parameters
from repro.core.sampling import sample_view
from repro.core.augmentor import CandidateEdges


class TestContrastiveProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=10 ** 6))
    def test_decomposed_r1_equals_infonce(self, n, d, seed):
        """negative_weight=1 must reduce exactly to InfoNCE."""
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=(n, d)))
        b = Tensor(rng.normal(size=(n, d)))
        full = F.decomposed_infonce_loss(a, b, 0.5, 1.0).item()
        reference = F.infonce_loss(a, b, 0.5).item()
        assert abs(full - reference) < 1e-10

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=0, max_value=10 ** 6))
    def test_alignment_term_minimized_by_identical_views(self, n, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=(n, 4)))
        other = Tensor(rng.normal(size=(n, 4)))
        aligned = F.decomposed_infonce_loss(a, a, 0.5, 0.0).item()
        misaligned = F.decomposed_infonce_loss(a, other, 0.5, 0.0).item()
        assert aligned <= misaligned + 1e-9


class TestGIBProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=10 ** 6))
    def test_pooling_is_permutation_invariant(self, n, k_views, seed):
        rng = np.random.default_rng(seed)
        views = [Tensor(rng.normal(size=(n, 8))) for _ in range(k_views)]
        mu_a, lv_a = pool_gaussian_parameters(views)
        mu_b, lv_b = pool_gaussian_parameters(list(reversed(views)))
        np.testing.assert_allclose(mu_a.data, mu_b.data, atol=1e-12)
        np.testing.assert_allclose(lv_a.data, lv_b.data, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=10 ** 6))
    def test_kl_nonnegative(self, n, seed):
        rng = np.random.default_rng(seed)
        mu = Tensor(rng.normal(size=(n, 4)))
        log_var = Tensor(rng.normal(size=(n, 4)))
        assert F.gaussian_kl(mu, log_var).item() >= -1e-10


class TestSamplingProperties:
    @st.composite
    @staticmethod
    def candidates_case(draw):
        n_users = draw(st.integers(min_value=2, max_value=8))
        n_items = draw(st.integers(min_value=2, max_value=8))
        n_edges = draw(st.integers(min_value=1, max_value=20))
        seed = draw(st.integers(min_value=0, max_value=10 ** 6))
        rng = np.random.default_rng(seed)
        users = rng.integers(0, n_users, size=n_edges)
        items = rng.integers(0, n_items, size=n_edges) + n_users
        observed = rng.random(n_edges) < 0.8
        cands = CandidateEdges(user_nodes=users, item_nodes=items,
                               observed=observed)
        return cands, n_users + n_items, seed

    @settings(max_examples=25, deadline=None)
    @given(candidates_case(),
           st.floats(min_value=0.0, max_value=0.95))
    def test_sampled_view_never_empty_and_weights_valid(self, case,
                                                        threshold):
        cands, num_nodes, seed = case
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=len(cands)))
        view = sample_view(logits, cands, num_nodes, rng,
                           threshold=threshold)
        assert view.keep_mask.sum() >= 1
        assert np.isfinite(view.weights.data).all()
        assert (view.weights.data >= 0).all()
        # symmetric COO: both directions present, equal weights
        half = len(view.rows) // 2
        np.testing.assert_array_equal(view.rows[:half], view.cols[half:])
        np.testing.assert_allclose(view.weights.data[:half],
                                   view.weights.data[half:])
