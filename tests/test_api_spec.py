"""Tests for the declarative experiment spec (``repro.api.spec``).

The satellite contract: every ``ExperimentSpec`` serializes to a plain
dict and back losslessly for all registered models, and unknown keys
fail with a message naming the bad field.
"""

import json

import pytest

from repro.api import ArtifactSpec, EvalSpec, ExperimentSpec
from repro.models import available_models

ALL_MODELS = available_models()


class TestRoundTrip:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_every_registered_model_round_trips(self, model):
        spec = ExperimentSpec(
            model=model,
            dataset="gowalla",
            seed=3,
            model_config={"embedding_dim": 16, "num_layers": 2,
                          "mixhop_hops": [0, 1]},
            train_config={"epochs": 4, "batch_size": 128,
                          "eval_ks": [10, 20]},
            eval={"ks": [10, 20], "metrics": ["recall", "ndcg", "mrr"]},
            probes={"user_groups": {"num_groups": 3}},
            artifacts={"snapshot": "snap.npz"},
        )
        payload = spec.to_dict()
        # the dict is JSON-plain (a spec file must be writable as-is)
        restored = ExperimentSpec.from_dict(json.loads(json.dumps(payload)))
        assert restored == spec
        assert restored.to_dict() == payload

    def test_defaults_round_trip(self):
        spec = ExperimentSpec(model="lightgcn", dataset="tiny")
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = ExperimentSpec(model="sgl", dataset="amazon",
                              train_config={"epochs": 2})
        path = spec.save(str(tmp_path / "spec.json"))
        assert ExperimentSpec.from_file(path) == spec

    def test_tuple_overrides_normalize_to_lists(self):
        # constructed-with-tuples specs equal their JSON round trip
        spec = ExperimentSpec(model="lightgcn", dataset="tiny",
                              train_config={"eval_ks": (10, 20)})
        assert spec.train_config["eval_ks"] == [10, 20]
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_probe_list_shorthand(self):
        spec = ExperimentSpec(model="lightgcn", dataset="tiny",
                              probes=["user_groups", "item_groups"])
        assert spec.probes == {"user_groups": {}, "item_groups": {}}


class TestStrictParsing:
    def test_unknown_top_level_key_names_field(self):
        with pytest.raises(ValueError, match="optimizer"):
            ExperimentSpec.from_dict({"model": "lightgcn",
                                      "dataset": "tiny",
                                      "optimizer": "adam"})

    def test_unknown_eval_key_names_field(self):
        with pytest.raises(ValueError, match="cutoffs"):
            ExperimentSpec.from_dict({"model": "lightgcn",
                                      "dataset": "tiny",
                                      "eval": {"cutoffs": [20]}})

    def test_unknown_artifact_key_names_field(self):
        with pytest.raises(ValueError, match="ckpt"):
            ExperimentSpec.from_dict({"model": "lightgcn",
                                      "dataset": "tiny",
                                      "artifacts": {"ckpt": "x.npz"}})

    def test_unknown_model_config_key_names_field(self):
        with pytest.raises(ValueError,
                           match="embeding_dim.*model_config"):
            ExperimentSpec(model="lightgcn", dataset="tiny",
                           model_config={"embeding_dim": 16})

    def test_unknown_train_config_key_names_field(self):
        with pytest.raises(ValueError, match="epoch.*train_config"):
            ExperimentSpec(model="lightgcn", dataset="tiny",
                           train_config={"epoch": 3})

    def test_unknown_model_name(self):
        with pytest.raises(ValueError, match="unknown model 'gpt4'"):
            ExperimentSpec(model="gpt4", dataset="tiny")

    def test_unknown_probe_name(self):
        with pytest.raises(ValueError, match="unknown probe"):
            ExperimentSpec(model="lightgcn", dataset="tiny",
                           probes=["nope"])

    def test_dataset_name_typo_fails_at_construction(self):
        # a bare word that is neither registered nor an existing file
        # must not survive until mid-sweep resolution
        with pytest.raises(ValueError, match="unknown dataset 'gowala'"):
            ExperimentSpec(model="lightgcn", dataset="gowala")

    def test_path_shaped_dataset_may_not_exist_yet(self):
        ExperimentSpec(model="lightgcn", dataset="not/yet/there.tsv")
        ExperimentSpec(model="lightgcn", dataset="future-dump.tsv")

    def test_unknown_metric_name(self):
        with pytest.raises(ValueError, match="unknown metric 'auc'"):
            ExperimentSpec(model="lightgcn", dataset="tiny",
                           eval={"metrics": ["auc"]})

    def test_missing_required_fields(self):
        with pytest.raises(ValueError, match="model is required"):
            ExperimentSpec(model="", dataset="tiny")
        with pytest.raises(ValueError, match="dataset is required"):
            ExperimentSpec(model="lightgcn", dataset="")

    def test_non_dict_payload(self):
        with pytest.raises(TypeError, match="must be a dict"):
            ExperimentSpec.from_dict(["model"])


class TestResolution:
    def test_resolved_configs_apply_overrides(self):
        spec = ExperimentSpec(model="lightgcn", dataset="tiny",
                              model_config={"embedding_dim": 16},
                              train_config={"epochs": 7},
                              eval={"ks": [5], "metrics": ["recall"],
                                    "chunk_size": 13})
        model_config = spec.resolved_model_config()
        assert model_config.embedding_dim == 16
        assert model_config.num_layers == 2  # library default preserved
        train_config = spec.resolved_train_config()
        assert train_config.epochs == 7
        # the eval block wires the trainer's evaluation protocol
        assert train_config.eval_ks == (5,)
        assert train_config.eval_metrics == ("recall",)
        assert train_config.eval_chunk_size == 13

    def test_explicit_train_eval_fields_win_over_eval_block(self):
        spec = ExperimentSpec(model="lightgcn", dataset="tiny",
                              train_config={"eval_ks": [40]},
                              eval={"ks": [5]})
        assert spec.resolved_train_config().eval_ks == (40,)

    def test_run_name(self):
        spec = ExperimentSpec(model="lightgcn", dataset="tiny", seed=2)
        assert spec.run_name == "lightgcn-tiny-seed2"
        assert spec.with_overrides(name="custom").run_name == "custom"
        path_spec = ExperimentSpec(model="lightgcn",
                                   dataset="/data/edges.tsv")
        assert path_spec.run_name == "lightgcn-edges-seed0"

    def test_run_name_from_path_dataset(self, tmp_path):
        # dataset paths need not exist at spec-construction time
        spec = ExperimentSpec(model="biasmf",
                              dataset=str(tmp_path / "later.tsv"))
        assert spec.run_name.startswith("biasmf-later")
