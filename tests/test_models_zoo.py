"""Parametrized sanity tests across the full model zoo.

Each registered model must: build, expose parameters, compute a finite
scalar loss with gradients, produce correctly-shaped score matrices, and
improve over untrained scores after a short fit.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.eval import evaluate_scores
from repro.models import MODEL_REGISTRY, available_models, build_model
from repro.train import ModelConfig, TrainConfig, fit_model

ALL_MODELS = available_models()


@pytest.fixture(scope="module")
def zoo_dataset():
    from repro.data import tiny_dataset
    return tiny_dataset(seed=17)


@pytest.fixture(scope="module")
def model_config():
    return ModelConfig(embedding_dim=16, num_layers=2)


class TestRegistry:
    def test_expected_zoo(self):
        expected = {"biasmf", "ncf", "autorec", "gcmc", "pinsage", "ngcf",
                    "lightgcn", "gccf", "disengcn", "dgcf", "mhcn", "stgcn",
                    "slrec", "sgl", "dgcl", "hccf", "cgi", "ncl",
                    "graphaug", "simgcl"}
        assert set(ALL_MODELS) == expected

    def test_unknown_model_raises(self, zoo_dataset):
        with pytest.raises(KeyError):
            build_model("svdpp", zoo_dataset)

    def test_double_registration_raises(self):
        with pytest.raises(KeyError):
            MODEL_REGISTRY.register("lightgcn")(object)


@pytest.mark.parametrize("name", ALL_MODELS)
class TestEveryModel:
    def test_loss_finite_and_backward(self, name, zoo_dataset, model_config):
        model = build_model(name, zoo_dataset, model_config, seed=0)
        rng = np.random.default_rng(0)
        users = rng.integers(0, zoo_dataset.num_users, size=32)
        pos = np.array([zoo_dataset.train_items_of(u)[0] for u in users])
        neg = rng.integers(0, zoo_dataset.num_items, size=32)
        loss = model.loss(users, pos, neg)
        assert np.isfinite(loss.item())
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.requires_grad]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)

    def test_score_matrix_shape(self, name, zoo_dataset, model_config):
        model = build_model(name, zoo_dataset, model_config, seed=0)
        scores = model.score_all_users()
        assert scores.shape == (zoo_dataset.num_users,
                                zoo_dataset.num_items)
        assert np.isfinite(scores).all()

    def test_node_embeddings_shape(self, name, zoo_dataset, model_config):
        model = build_model(name, zoo_dataset, model_config, seed=0)
        emb = model.node_embeddings()
        assert emb.shape[0] == zoo_dataset.num_users + zoo_dataset.num_items
        assert np.isfinite(emb).all()

    def test_short_training_beats_random(self, name, zoo_dataset,
                                         model_config):
        # recall@5 on the 50-item tiny catalogue: random scores ~0.07
        model = build_model(name, zoo_dataset, model_config, seed=0)
        cfg = TrainConfig(epochs=15, batch_size=128, eval_every=5,
                          eval_ks=(5,), eval_metrics=("recall",),
                          early_stop_metric="recall@5")
        result = fit_model(model, zoo_dataset, cfg, seed=0)
        rng = np.random.default_rng(99)
        random_scores = rng.normal(size=(zoo_dataset.num_users,
                                         zoo_dataset.num_items))
        baseline = evaluate_scores(random_scores, zoo_dataset, ks=(5,),
                                   metrics=("recall",))
        assert result.best_metrics["recall@5"] > baseline["recall@5"]

    def test_deterministic_build(self, name, zoo_dataset, model_config):
        a = build_model(name, zoo_dataset, model_config, seed=5)
        b = build_model(name, zoo_dataset, model_config, seed=5)
        np.testing.assert_allclose(a.user_emb.weight.data,
                                   b.user_emb.weight.data)
