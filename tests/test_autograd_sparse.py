"""Tests for sparse matmul primitives (gradients to dense AND edge weights)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import (Tensor, coo_from_scipy, gradcheck, spmm,
                            weighted_spmm)


def dense_tensor(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestSpmm:
    def test_forward_matches_dense(self):
        matrix = sp.random(6, 4, density=0.5, random_state=0, format="csr")
        x = dense_tensor((4, 3))
        out = spmm(matrix, x)
        np.testing.assert_allclose(out.data, matrix.toarray() @ x.data)

    def test_gradcheck(self):
        matrix = sp.random(5, 4, density=0.6, random_state=1, format="csr")
        assert gradcheck(lambda x: spmm(matrix, x).tanh().sum(),
                         [dense_tensor((4, 2))])

    def test_chained_propagation(self):
        # A(A(AX)) — the iterated power application used by mixhop
        matrix = sp.random(4, 4, density=0.7, random_state=2, format="csr")

        def fn(x):
            h = x
            for _ in range(3):
                h = spmm(matrix, h)
            return h.sum()

        assert gradcheck(fn, [dense_tensor((4, 2))])

    def test_empty_rows_ok(self):
        matrix = sp.csr_matrix((3, 3))
        x = dense_tensor((3, 2))
        out = spmm(matrix, x)
        np.testing.assert_allclose(out.data, np.zeros((3, 2)))


class TestWeightedSpmm:
    def _pattern(self):
        rows = np.array([0, 0, 1, 2, 3])
        cols = np.array([1, 2, 0, 3, 2])
        return rows, cols, (4, 4)

    def test_forward_matches_dense(self):
        rows, cols, shape = self._pattern()
        w = dense_tensor((5,), 3)
        x = dense_tensor((4, 2), 4)
        out = weighted_spmm(rows, cols, w, shape, x)
        dense = np.zeros(shape)
        dense[rows, cols] = w.data
        np.testing.assert_allclose(out.data, dense @ x.data)

    def test_grad_to_both_operands(self):
        rows, cols, shape = self._pattern()
        assert gradcheck(
            lambda w, x: weighted_spmm(rows, cols, w, shape, x)
            .sigmoid().sum(),
            [dense_tensor((5,), 5), dense_tensor((4, 3), 6)])

    def test_grad_weights_only(self):
        rows, cols, shape = self._pattern()
        x = Tensor(np.random.default_rng(7).normal(size=(4, 2)))
        assert gradcheck(
            lambda w: (weighted_spmm(rows, cols, w, shape, x) ** 2).sum(),
            [dense_tensor((5,), 8)])

    def test_duplicate_coordinates_sum(self):
        # scipy sums duplicate COO entries; gradient must follow suit
        rows = np.array([0, 0])
        cols = np.array([1, 1])
        w = dense_tensor((2,), 9)
        x = dense_tensor((2, 1), 10)
        out = weighted_spmm(rows, cols, w, (2, 2), x)
        expected = (w.data[0] + w.data[1]) * x.data[1]
        np.testing.assert_allclose(out.data[0], expected)
        assert gradcheck(
            lambda w, x: weighted_spmm(rows, cols, w, (2, 2), x).sum(),
            [w, x])

    def test_rejects_bad_values_shape(self):
        rows, cols, shape = self._pattern()
        with pytest.raises(ValueError):
            weighted_spmm(rows, cols, dense_tensor((5, 1)), shape,
                          dense_tensor((4, 2)))


class TestCooFromScipy:
    def test_roundtrip(self):
        matrix = sp.random(5, 6, density=0.4, random_state=3, format="csr")
        rows, cols, vals, shape = coo_from_scipy(matrix)
        rebuilt = sp.csr_matrix((vals, (rows, cols)), shape=shape)
        np.testing.assert_allclose(rebuilt.toarray(), matrix.toarray())
